"""Translation of a diagram/block model into RBDs and Markov chains.

Section 4 of the paper: "each MG diagram is modeled by a serial RBD
which consists of all the MG blocks in the diagram.  Each block is then
modeled by a Markov chain.  The Markov chain may have a sub RBD,
depending on if the corresponding block has a subdiagram.  The overall
model is a hierarchy of RBDs and Markov chains."

Composition rules implemented here (DESIGN.md §5):

* A diagram is a series RBD; its availability is the product of the
  availabilities of its blocks (independent component failures).
* A leaf block's availability comes from its generated CTMC.
* A block with a subdiagram and no redundancy contributes the
  subdiagram's availability, repeated in series ``quantity`` times.
* A block with a subdiagram **and** redundancy aggregates the
  subdiagram into effective block parameters (series failure rates sum;
  time/probability parameters combine rate-weighted), then generates
  the redundant chain over the aggregate — this is how "Storage 1,
  RAID5"-style blocks are modeled.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Union

import numpy as np

from ..errors import SpecError
from ..markov.chain import MarkovChain

from ..markov.mttf import absorbing_variant
from ..markov.rewards import crossing_frequency
from ..num import (
    DEFAULT_OPTIONS,
    STIFFNESS_LIMIT,
    SolverOptions,
    as_operator,
    as_options,
    solve_steady,
    transient_grid,
)
from ..rbd.blocks import Leaf, Series
from .block import DiagramBlockModel, MGBlock, MGDiagram
from .generator import classify_model_type, generate_block_chain
from .parameters import BlockParameters, GlobalParameters


def aggregate_subdiagram(
    diagram: MGDiagram,
    global_parameters: GlobalParameters,
    name: Optional[str] = None,
) -> BlockParameters:
    """Collapse a subdiagram into effective single-unit block parameters.

    The subassembly fails when any constituent fails (series), so
    permanent and transient rates sum over ``quantity`` weighted units;
    duration and probability parameters combine weighted by each
    block's contribution to the permanent failure rate, so the
    aggregate preserves the expected repair behaviour of the mix.
    Nested subdiagrams aggregate recursively.
    """
    flattened: List[BlockParameters] = []
    for block in diagram:
        if block.has_subdiagram:
            inner = aggregate_subdiagram(
                block.subdiagram, global_parameters, name=block.name
            )
            # The inner aggregate is one logical unit; replicate it for
            # the block's own quantity (series).
            flattened.append(
                inner.with_changes(
                    quantity=block.parameters.quantity,
                    min_required=block.parameters.quantity,
                )
            )
        else:
            flattened.append(block.parameters)

    total_permanent = 0.0
    total_transient_fit = 0.0
    weights: List[float] = []
    for parameters in flattened:
        contribution = parameters.quantity * parameters.permanent_rate
        total_permanent += contribution
        total_transient_fit += parameters.quantity * parameters.transient_fit
        weights.append(contribution)
    weight_total = sum(weights)
    if weight_total <= 0.0:
        # Nothing in the subassembly ever fails permanently; weight
        # evenly so duration parameters stay defined.
        weights = [1.0] * len(flattened)
        weight_total = float(len(flattened))

    def weighted(extract: Callable[[BlockParameters], float]) -> float:
        return (
            sum(w * extract(p) for w, p in zip(weights, flattened))
            / weight_total
        )

    mtbf_hours = float("inf") if total_permanent == 0 else 1.0 / total_permanent
    return BlockParameters(
        name=name or diagram.name,
        quantity=1,
        min_required=1,
        mtbf_hours=mtbf_hours,
        transient_fit=total_transient_fit,
        diagnosis_minutes=weighted(lambda p: p.diagnosis_minutes),
        corrective_minutes=weighted(lambda p: p.corrective_minutes),
        verification_minutes=weighted(lambda p: p.verification_minutes),
        service_response_hours=weighted(lambda p: p.service_response_hours),
        p_correct_diagnosis=weighted(lambda p: p.p_correct_diagnosis),
        description=f"aggregate of diagram {diagram.name!r}",
    )


@dataclass(frozen=True)
class ChainSolve:
    """The solver output for one generated block chain.

    This is the expensive, context-free part of a block solution: it
    depends only on the effective parameters, the globals, and the
    solver method — never on where in the hierarchy the block sits.
    That makes it the unit of caching for :mod:`repro.engine`.
    """

    chain: MarkovChain
    model_type: int
    availability: float
    failure_frequency: float
    steady_state: Dict[str, float]
    backend: str = "dense-direct"
    representation: str = "dense"
    n_states: int = 0
    nnz: int = 0


#: Signature of a pluggable chain solver; :func:`translate` accepts one
#: so callers (the evaluation engine) can memoize the per-block solves.
#: The third argument is the canonicalised :class:`~repro.num.SolverOptions`.
ChainSolver = Callable[
    [BlockParameters, GlobalParameters, SolverOptions], ChainSolve
]


def solve_block_chain(
    effective: BlockParameters,
    global_parameters: GlobalParameters,
    method: Union[str, SolverOptions] = "direct",
) -> ChainSolve:
    """Generate and solve the CTMC for one block's effective parameters."""
    options = as_options(method)
    chain = generate_block_chain(effective, global_parameters)
    op = as_operator(chain, representation=options.representation)
    pi_vector = solve_steady(op, options)
    pi = dict(zip(chain.state_names, pi_vector.tolist()))
    availability = sum(
        pi[state.name] * (1.0 if state.is_up else 0.0) for state in chain
    )
    frequency = crossing_frequency(chain, pi, up_to_down=True)
    return ChainSolve(
        chain=chain,
        model_type=classify_model_type(effective),
        availability=availability,
        failure_frequency=frequency,
        steady_state=pi,
        backend=options.steady_method,
        representation=op.representation,
        n_states=chain.n_states,
        nnz=op.nnz,
    )


@dataclass
class BlockSolution:
    """Solution artifacts for one block in the hierarchy.

    ``chain`` is None for pass-through blocks whose availability comes
    entirely from a subdiagram; ``effective`` carries the aggregated
    parameters actually used for chain generation (identical to the
    block's own parameters for leaf blocks).
    """

    path: str
    level: int
    block: MGBlock
    effective: BlockParameters
    model_type: Optional[int]
    chain: Optional[MarkovChain]
    availability: float
    failure_frequency: float
    steady_state: Dict[str, float] = field(default_factory=dict)
    children: List["BlockSolution"] = field(default_factory=list)
    options: SolverOptions = DEFAULT_OPTIONS

    @property
    def name(self) -> str:
        return self.block.name

    def _matrices(self):
        """Cached (operator, up indicator, Q_UU, up indices)."""
        cached = getattr(self, "_matrix_cache", None)
        if cached is None:
            op = as_operator(
                self.chain,
                representation=self.options.representation,
                validate=False,
            )
            indicator = (self.chain.reward_vector() > 0).astype(float)
            up_index = [
                i for i, value in enumerate(indicator) if value > 0
            ]
            q_uu = op.dense()[np.ix_(up_index, up_index)]
            cached = (op, indicator, q_uu, up_index)
            self._matrix_cache = cached
        return cached

    def _uniformization_points(self, op, times: Sequence[float]) -> List[int]:
        """Grid indices the shared uniformization path should evaluate.

        Sparse operators use the matrix-free shared grid whenever the
        Poisson truncation stays tractable; dense (small) chains keep
        the historic ``expm`` evaluation, which is exact and faster for
        them.  The split is decided per time point so single-point calls
        take the same branch as any grid containing that point.
        """
        if op.representation != "sparse":
            return []
        lam = op.uniformization_rate()
        return [
            i for i, t in enumerate(times) if lam * float(t) <= STIFFNESS_LIMIT
        ]

    def point_availability_grid(
        self, times: Sequence[float]
    ) -> List[float]:
        """Instantaneous availability A(t) at every grid point.

        Chain-backed blocks evaluate the whole grid from one shared
        uniformization power sequence when the operator is sparse (see
        :func:`repro.num.transient_grid`); results are identical to
        calling :meth:`point_availability` per point.
        """
        times = [float(t) for t in times]
        if self.chain is not None:
            op, indicator, _q_uu, _up = self._matrices()
            p0 = self.chain.initial_distribution()
            results: List[Optional[float]] = [None] * len(times)
            shared = self._uniformization_points(op, times)
            if shared:
                grid = transient_grid(
                    op,
                    [times[i] for i in shared],
                    p0=p0,
                    tol=self.options.uniformization_tol,
                )
                for i, probabilities in zip(shared, grid):
                    results[i] = float(
                        np.clip(probabilities @ indicator, 0.0, 1.0)
                    )
            rest = [i for i in range(len(times)) if results[i] is None]
            if rest:
                from scipy.linalg import expm

                q = op.dense()
                for i in rest:
                    results[i] = float(
                        np.clip(p0 @ expm(q * times[i]) @ indicator, 0.0, 1.0)
                    )
            return results  # type: ignore[return-value]
        grids = [child.point_availability_grid(times) for child in self.children]
        quantity = self.block.parameters.quantity
        combined = []
        for i in range(len(times)):
            value = 1.0
            for grid in grids:
                value *= grid[i]
            combined.append(value ** quantity)
        return combined

    def reliability_grid(self, times: Sequence[float]) -> List[float]:
        """Mission reliability R(t) at every grid point.

        Sparse chains build the absorbing variant once and share a
        single uniformization power sequence across the grid; dense
        chains keep the exact ``expm(Q_UU t)`` evaluation.
        """
        times = [float(t) for t in times]
        if self.chain is not None:
            op, _indicator, q_uu, up_index = self._matrices()
            if len(up_index) == self.chain.n_states:
                return [1.0] * len(times)
            start = self.chain.index(self.chain.state_names[0])
            row = up_index.index(start)
            results: List[Optional[float]] = [None] * len(times)
            shared = self._uniformization_points(op, times)
            if shared:
                absorbing = absorbing_variant(self.chain)
                absorbing_op = as_operator(
                    absorbing, representation="sparse", validate=False
                )
                p0 = absorbing.initial_distribution()
                grid = transient_grid(
                    absorbing_op,
                    [times[i] for i in shared],
                    p0=p0,
                    tol=self.options.uniformization_tol,
                )
                for i, probabilities in zip(shared, grid):
                    results[i] = float(
                        np.clip(probabilities[up_index].sum(), 0.0, 1.0)
                    )
            rest = [i for i in range(len(times)) if results[i] is None]
            if rest:
                from scipy.linalg import expm

                for i in rest:
                    results[i] = float(
                        np.clip(expm(q_uu * times[i])[row, :].sum(), 0.0, 1.0)
                    )
            return results  # type: ignore[return-value]
        grids = [child.reliability_grid(times) for child in self.children]
        quantity = self.block.parameters.quantity
        combined = []
        for i in range(len(times)):
            value = 1.0
            for grid in grids:
                value *= grid[i]
            combined.append(value ** quantity)
        return combined

    def point_availability(self, t: float) -> float:
        """Instantaneous availability A(t), starting from all-up."""
        return self.point_availability_grid([t])[0]

    def reliability(self, t: float) -> float:
        """Mission reliability R(t): no failure of this block by t."""
        return self.reliability_grid([t])[0]


@dataclass
class SystemSolution:
    """The solved hierarchy for a diagram/block model."""

    model: DiagramBlockModel
    blocks: List[BlockSolution]
    by_path: Dict[str, BlockSolution]
    availability: float
    failure_frequency: float
    options: SolverOptions = DEFAULT_OPTIONS

    def block(self, path: str) -> BlockSolution:
        try:
            return self.by_path[path]
        except KeyError:
            raise SpecError(f"no solved block at path {path!r}") from None

    def top_level(self) -> List[BlockSolution]:
        """Solutions for the root diagram's blocks."""
        return list(self.blocks)

    def point_availability(self, t: float) -> float:
        value = 1.0
        for solution in self.blocks:
            value *= solution.point_availability(t)
        return value

    def reliability(self, t: float) -> float:
        value = 1.0
        for solution in self.blocks:
            value *= solution.reliability(t)
        return value

    def point_availability_grid(self, times: Sequence[float]) -> List[float]:
        """A(t) at every grid point, sharing per-block power sequences."""
        times = [float(t) for t in times]
        grids = [
            solution.point_availability_grid(times)
            for solution in self.blocks
        ]
        results = []
        for i in range(len(times)):
            value = 1.0
            for grid in grids:
                value *= grid[i]
            results.append(value)
        return results

    def reliability_grid(self, times: Sequence[float]) -> List[float]:
        """R(t) at every grid point, sharing per-block power sequences."""
        times = [float(t) for t in times]
        grids = [
            solution.reliability_grid(times) for solution in self.blocks
        ]
        results = []
        for i in range(len(times)):
            value = 1.0
            for grid in grids:
                value *= grid[i]
            results.append(value)
        return results


def translate(
    model: DiagramBlockModel,
    method: Union[str, SolverOptions] = "direct",
    chain_solver: Optional[ChainSolver] = None,
) -> SystemSolution:
    """Translate and solve a diagram/block model.

    Args:
        model: The MG specification tree.
        method: A steady-state backend name ("direct", "gth", "power",
            "sparse-direct", "sparse-iterative") or a full
            :class:`~repro.num.SolverOptions` value — exposed so the
            validation benchmarks can cross-check paths.
        chain_solver: Optional replacement for
            :func:`solve_block_chain`; the evaluation engine passes a
            memoizing wrapper here so structurally identical blocks are
            solved once.
    """
    model.validate()
    options = as_options(method)
    g = model.global_parameters
    solver = chain_solver or solve_block_chain
    by_path: Dict[str, BlockSolution] = {}
    top = [
        _solve_block(block, f"{model.root.name}/{block.name}", 1, g, by_path,
                     options, solver)
        for block in model.root
    ]
    availability = 1.0
    for solution in top:
        availability *= _block_contribution(solution)
    frequency = _series_failure_frequency(top)
    return SystemSolution(
        model=model,
        blocks=top,
        by_path=by_path,
        availability=availability,
        failure_frequency=frequency,
        options=options,
    )


#: Backwards-friendly alias: translating *is* solving in MG.
solve_model = translate


def _block_contribution(solution: BlockSolution) -> float:
    """Availability contribution of a block, accounting for quantity.

    For chain-backed blocks the chain already models all N units; for
    pass-through blocks the subdiagram availability is raised to the
    block quantity (identical subassemblies in series).
    """
    if solution.chain is not None:
        return solution.availability
    return solution.availability ** solution.block.parameters.quantity


def _solve_block(
    block: MGBlock,
    path: str,
    level: int,
    g: GlobalParameters,
    by_path: Dict[str, BlockSolution],
    options: SolverOptions,
    solver: ChainSolver = solve_block_chain,
) -> BlockSolution:
    children: List[BlockSolution] = []
    if block.has_subdiagram:
        children = [
            _solve_block(
                child, f"{path}/{child.name}", level + 1, g, by_path,
                options, solver
            )
            for child in block.subdiagram
        ]

    if block.has_subdiagram and not block.parameters.is_redundant:
        # Pass-through: availability is the subdiagram's series product.
        availability = 1.0
        for child in children:
            availability *= _block_contribution(child)
        frequency = _series_failure_frequency(children)
        solution = BlockSolution(
            path=path,
            level=level,
            block=block,
            effective=block.parameters,
            model_type=None,
            chain=None,
            availability=availability,
            failure_frequency=frequency,
            children=children,
            options=options,
        )
    else:
        if block.has_subdiagram:
            aggregate = aggregate_subdiagram(
                block.subdiagram, g, name=block.name
            )
            effective = aggregate.with_changes(
                name=block.parameters.name,
                quantity=block.parameters.quantity,
                min_required=block.parameters.min_required,
                p_latent_fault=block.parameters.p_latent_fault,
                mttdlf_hours=block.parameters.mttdlf_hours,
                recovery=block.parameters.recovery,
                ar_time_minutes=block.parameters.ar_time_minutes,
                p_spf=block.parameters.p_spf,
                spf_recovery_minutes=block.parameters.spf_recovery_minutes,
                repair=block.parameters.repair,
                reintegration_minutes=block.parameters.reintegration_minutes,
            )
        else:
            effective = block.parameters
        solved = solver(effective, g, options)
        solution = BlockSolution(
            path=path,
            level=level,
            block=block,
            effective=effective,
            model_type=solved.model_type,
            chain=solved.chain,
            availability=solved.availability,
            failure_frequency=solved.failure_frequency,
            steady_state=solved.steady_state,
            children=children,
            options=options,
        )
    by_path[path] = solution
    return solution


def _series_failure_frequency(solutions: List[BlockSolution]) -> float:
    """System failure frequency of independent blocks in series.

    The system crosses up -> down when block i fails while every other
    block is up: ``sum_i f_i * prod_{j != i} A_j`` (with quantities
    folded into each block's contribution).
    """
    contributions = [
        _block_contribution(solution) for solution in solutions
    ]
    frequencies = []
    for solution in solutions:
        if solution.chain is not None:
            frequencies.append(solution.failure_frequency)
        else:
            quantity = solution.block.parameters.quantity
            base_availability = solution.availability
            # q identical subassemblies in series: f = q * f_sub * A_sub^(q-1)
            frequencies.append(
                quantity
                * solution.failure_frequency
                * base_availability ** (quantity - 1)
            )
    total = 0.0
    for i, frequency in enumerate(frequencies):
        others = 1.0
        for j, availability in enumerate(contributions):
            if j != i:
                others *= availability
        total += frequency * others
    return total


def diagram_rbd(model: DiagramBlockModel) -> Series:
    """The root diagram as an explicit series RBD of named leaves.

    Leaf names are block paths; feed availabilities via the ``values``
    mapping (the GMB hierarchy API uses this to splice MG output into
    hand-drawn diagrams).
    """
    leaves = [
        Leaf(f"{model.root.name}/{block.name}") for block in model.root
    ]
    return Series(model.root.name, leaves)
