"""Translation of a diagram/block model into RBDs and Markov chains.

Section 4 of the paper: "each MG diagram is modeled by a serial RBD
which consists of all the MG blocks in the diagram.  Each block is then
modeled by a Markov chain.  The Markov chain may have a sub RBD,
depending on if the corresponding block has a subdiagram.  The overall
model is a hierarchy of RBDs and Markov chains."

Composition rules implemented here (DESIGN.md §5):

* A diagram is a series RBD; its availability is the product of the
  availabilities of its blocks (independent component failures).
* A leaf block's availability comes from its generated CTMC.
* A block with a subdiagram and no redundancy contributes the
  subdiagram's availability, repeated in series ``quantity`` times.
* A block with a subdiagram **and** redundancy aggregates the
  subdiagram into effective block parameters (series failure rates sum;
  time/probability parameters combine rate-weighted), then generates
  the redundant chain over the aggregate — this is how "Storage 1,
  RAID5"-style blocks are modeled.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np

from ..errors import SpecError
from ..markov.chain import MarkovChain

from ..markov.rewards import (
    failure_frequency as chain_failure_frequency,
    steady_state_availability,
)
from ..markov.steady_state import steady_state
from ..rbd.blocks import Leaf, Series
from .block import DiagramBlockModel, MGBlock, MGDiagram
from .generator import classify_model_type, generate_block_chain
from .parameters import BlockParameters, GlobalParameters


def aggregate_subdiagram(
    diagram: MGDiagram,
    global_parameters: GlobalParameters,
    name: Optional[str] = None,
) -> BlockParameters:
    """Collapse a subdiagram into effective single-unit block parameters.

    The subassembly fails when any constituent fails (series), so
    permanent and transient rates sum over ``quantity`` weighted units;
    duration and probability parameters combine weighted by each
    block's contribution to the permanent failure rate, so the
    aggregate preserves the expected repair behaviour of the mix.
    Nested subdiagrams aggregate recursively.
    """
    flattened: List[BlockParameters] = []
    for block in diagram:
        if block.has_subdiagram:
            inner = aggregate_subdiagram(
                block.subdiagram, global_parameters, name=block.name
            )
            # The inner aggregate is one logical unit; replicate it for
            # the block's own quantity (series).
            flattened.append(
                inner.with_changes(
                    quantity=block.parameters.quantity,
                    min_required=block.parameters.quantity,
                )
            )
        else:
            flattened.append(block.parameters)

    total_permanent = 0.0
    total_transient_fit = 0.0
    weights: List[float] = []
    for parameters in flattened:
        contribution = parameters.quantity * parameters.permanent_rate
        total_permanent += contribution
        total_transient_fit += parameters.quantity * parameters.transient_fit
        weights.append(contribution)
    weight_total = sum(weights)
    if weight_total <= 0.0:
        # Nothing in the subassembly ever fails permanently; weight
        # evenly so duration parameters stay defined.
        weights = [1.0] * len(flattened)
        weight_total = float(len(flattened))

    def weighted(extract: Callable[[BlockParameters], float]) -> float:
        return (
            sum(w * extract(p) for w, p in zip(weights, flattened))
            / weight_total
        )

    mtbf_hours = float("inf") if total_permanent == 0 else 1.0 / total_permanent
    return BlockParameters(
        name=name or diagram.name,
        quantity=1,
        min_required=1,
        mtbf_hours=mtbf_hours,
        transient_fit=total_transient_fit,
        diagnosis_minutes=weighted(lambda p: p.diagnosis_minutes),
        corrective_minutes=weighted(lambda p: p.corrective_minutes),
        verification_minutes=weighted(lambda p: p.verification_minutes),
        service_response_hours=weighted(lambda p: p.service_response_hours),
        p_correct_diagnosis=weighted(lambda p: p.p_correct_diagnosis),
        description=f"aggregate of diagram {diagram.name!r}",
    )


@dataclass(frozen=True)
class ChainSolve:
    """The solver output for one generated block chain.

    This is the expensive, context-free part of a block solution: it
    depends only on the effective parameters, the globals, and the
    solver method — never on where in the hierarchy the block sits.
    That makes it the unit of caching for :mod:`repro.engine`.
    """

    chain: MarkovChain
    model_type: int
    availability: float
    failure_frequency: float
    steady_state: Dict[str, float]


#: Signature of a pluggable chain solver; :func:`translate` accepts one
#: so callers (the evaluation engine) can memoize the per-block solves.
ChainSolver = Callable[
    [BlockParameters, GlobalParameters, str], ChainSolve
]


def solve_block_chain(
    effective: BlockParameters,
    global_parameters: GlobalParameters,
    method: str = "direct",
) -> ChainSolve:
    """Generate and solve the CTMC for one block's effective parameters."""
    chain = generate_block_chain(effective, global_parameters)
    pi = steady_state(chain, method=method)
    availability = sum(
        pi[state.name] * (1.0 if state.is_up else 0.0) for state in chain
    )
    frequency = chain_failure_frequency(chain, method=method)
    return ChainSolve(
        chain=chain,
        model_type=classify_model_type(effective),
        availability=availability,
        failure_frequency=frequency,
        steady_state=pi,
    )


@dataclass
class BlockSolution:
    """Solution artifacts for one block in the hierarchy.

    ``chain`` is None for pass-through blocks whose availability comes
    entirely from a subdiagram; ``effective`` carries the aggregated
    parameters actually used for chain generation (identical to the
    block's own parameters for leaf blocks).
    """

    path: str
    level: int
    block: MGBlock
    effective: BlockParameters
    model_type: Optional[int]
    chain: Optional[MarkovChain]
    availability: float
    failure_frequency: float
    steady_state: Dict[str, float] = field(default_factory=dict)
    children: List["BlockSolution"] = field(default_factory=list)

    @property
    def name(self) -> str:
        return self.block.name

    def _matrices(self):
        """Cached (Q, up indicator, Q_UU) for fast transient evaluation."""
        cached = getattr(self, "_matrix_cache", None)
        if cached is None:
            q = self.chain.generator_matrix()
            indicator = (self.chain.reward_vector() > 0).astype(float)
            up_index = [
                i for i, value in enumerate(indicator) if value > 0
            ]
            q_uu = q[np.ix_(up_index, up_index)]
            cached = (q, indicator, q_uu, up_index)
            self._matrix_cache = cached
        return cached

    def point_availability(self, t: float) -> float:
        """Instantaneous availability A(t), starting from all-up."""
        if self.chain is not None:
            from scipy.linalg import expm

            q, indicator, _q_uu, _up = self._matrices()
            p0 = self.chain.initial_distribution()
            value = float(
                np.clip(p0 @ expm(q * t) @ indicator, 0.0, 1.0)
            )
            # Redundant aggregate: the chain already covers the subtree.
            return value
        value = 1.0
        for child in self.children:
            value *= child.point_availability(t)
        return value ** self.block.parameters.quantity

    def reliability(self, t: float) -> float:
        """Mission reliability R(t): no failure of this block by t."""
        if self.chain is not None:
            from scipy.linalg import expm

            _q, _indicator, q_uu, up_index = self._matrices()
            if len(up_index) == self.chain.n_states:
                return 1.0
            start = self.chain.index(self.chain.state_names[0])
            row = up_index.index(start)
            value = float(
                np.clip(expm(q_uu * t)[row, :].sum(), 0.0, 1.0)
            )
            return value
        value = 1.0
        for child in self.children:
            value *= child.reliability(t)
        return value ** self.block.parameters.quantity


@dataclass
class SystemSolution:
    """The solved hierarchy for a diagram/block model."""

    model: DiagramBlockModel
    blocks: List[BlockSolution]
    by_path: Dict[str, BlockSolution]
    availability: float
    failure_frequency: float

    def block(self, path: str) -> BlockSolution:
        try:
            return self.by_path[path]
        except KeyError:
            raise SpecError(f"no solved block at path {path!r}") from None

    def top_level(self) -> List[BlockSolution]:
        """Solutions for the root diagram's blocks."""
        return list(self.blocks)

    def point_availability(self, t: float) -> float:
        value = 1.0
        for solution in self.blocks:
            value *= solution.point_availability(t)
        return value

    def reliability(self, t: float) -> float:
        value = 1.0
        for solution in self.blocks:
            value *= solution.reliability(t)
        return value


def translate(
    model: DiagramBlockModel,
    method: str = "direct",
    chain_solver: Optional[ChainSolver] = None,
) -> SystemSolution:
    """Translate and solve a diagram/block model.

    Args:
        model: The MG specification tree.
        method: Steady-state solver ("direct", "gth" or "power") —
            exposed so the validation benchmarks can cross-check paths.
        chain_solver: Optional replacement for
            :func:`solve_block_chain`; the evaluation engine passes a
            memoizing wrapper here so structurally identical blocks are
            solved once.
    """
    model.validate()
    g = model.global_parameters
    solver = chain_solver or solve_block_chain
    by_path: Dict[str, BlockSolution] = {}
    top = [
        _solve_block(block, f"{model.root.name}/{block.name}", 1, g, by_path,
                     method, solver)
        for block in model.root
    ]
    availability = 1.0
    for solution in top:
        availability *= _block_contribution(solution)
    frequency = _series_failure_frequency(top)
    return SystemSolution(
        model=model,
        blocks=top,
        by_path=by_path,
        availability=availability,
        failure_frequency=frequency,
    )


#: Backwards-friendly alias: translating *is* solving in MG.
solve_model = translate


def _block_contribution(solution: BlockSolution) -> float:
    """Availability contribution of a block, accounting for quantity.

    For chain-backed blocks the chain already models all N units; for
    pass-through blocks the subdiagram availability is raised to the
    block quantity (identical subassemblies in series).
    """
    if solution.chain is not None:
        return solution.availability
    return solution.availability ** solution.block.parameters.quantity


def _solve_block(
    block: MGBlock,
    path: str,
    level: int,
    g: GlobalParameters,
    by_path: Dict[str, BlockSolution],
    method: str,
    solver: ChainSolver = solve_block_chain,
) -> BlockSolution:
    children: List[BlockSolution] = []
    if block.has_subdiagram:
        children = [
            _solve_block(
                child, f"{path}/{child.name}", level + 1, g, by_path,
                method, solver
            )
            for child in block.subdiagram
        ]

    if block.has_subdiagram and not block.parameters.is_redundant:
        # Pass-through: availability is the subdiagram's series product.
        availability = 1.0
        for child in children:
            availability *= _block_contribution(child)
        frequency = _series_failure_frequency(children)
        solution = BlockSolution(
            path=path,
            level=level,
            block=block,
            effective=block.parameters,
            model_type=None,
            chain=None,
            availability=availability,
            failure_frequency=frequency,
            children=children,
        )
    else:
        if block.has_subdiagram:
            aggregate = aggregate_subdiagram(
                block.subdiagram, g, name=block.name
            )
            effective = aggregate.with_changes(
                name=block.parameters.name,
                quantity=block.parameters.quantity,
                min_required=block.parameters.min_required,
                p_latent_fault=block.parameters.p_latent_fault,
                mttdlf_hours=block.parameters.mttdlf_hours,
                recovery=block.parameters.recovery,
                ar_time_minutes=block.parameters.ar_time_minutes,
                p_spf=block.parameters.p_spf,
                spf_recovery_minutes=block.parameters.spf_recovery_minutes,
                repair=block.parameters.repair,
                reintegration_minutes=block.parameters.reintegration_minutes,
            )
        else:
            effective = block.parameters
        solved = solver(effective, g, method)
        solution = BlockSolution(
            path=path,
            level=level,
            block=block,
            effective=effective,
            model_type=solved.model_type,
            chain=solved.chain,
            availability=solved.availability,
            failure_frequency=solved.failure_frequency,
            steady_state=solved.steady_state,
            children=children,
        )
    by_path[path] = solution
    return solution


def _series_failure_frequency(solutions: List[BlockSolution]) -> float:
    """System failure frequency of independent blocks in series.

    The system crosses up -> down when block i fails while every other
    block is up: ``sum_i f_i * prod_{j != i} A_j`` (with quantities
    folded into each block's contribution).
    """
    contributions = [
        _block_contribution(solution) for solution in solutions
    ]
    frequencies = []
    for solution in solutions:
        if solution.chain is not None:
            frequencies.append(solution.failure_frequency)
        else:
            quantity = solution.block.parameters.quantity
            base_availability = solution.availability
            # q identical subassemblies in series: f = q * f_sub * A_sub^(q-1)
            frequencies.append(
                quantity
                * solution.failure_frequency
                * base_availability ** (quantity - 1)
            )
    total = 0.0
    for i, frequency in enumerate(frequencies):
        others = 1.0
        for j, availability in enumerate(contributions):
            if j != i:
                others *= availability
        total += frequency * others
    return total


def diagram_rbd(model: DiagramBlockModel) -> Series:
    """The root diagram as an explicit series RBD of named leaves.

    Leaf names are block paths; feed availabilities via the ``values``
    mapping (the GMB hierarchy API uses this to splice MG output into
    hand-drawn diagrams).
    """
    leaves = [
        Leaf(f"{model.root.name}/{block.name}") for block in model.root
    ]
    return Series(model.root.name, leaves)
