"""System-level RAS measures (Section 4's output list).

RAScad reports steady-state availability / failure / recovery rates,
interval availability over ``(0, T)``, and for the reliability model:
MTTF, reliability at ``T``, interval failure rate, and hazard rate.
This module computes all of them from a solved hierarchy.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..errors import SolverError
from ..units import MINUTES_PER_YEAR, availability_to_yearly_downtime_minutes
from .translator import SystemSolution


@dataclass(frozen=True)
class SystemMeasures:
    """The full measure set for one solved model.

    Attributes:
        availability: Steady-state availability.
        yearly_downtime_minutes: Expected downtime minutes per year.
        failure_frequency: Steady-state system failures per hour.
        failures_per_year: The same, per year.
        mean_time_between_interruptions: 1 / failure frequency (hours).
        mean_downtime_hours: Expected downtime per interruption (hours).
        mission_time_hours: The T the interval measures refer to.
        interval_availability: Expected up fraction of (0, T).
        reliability_at_mission: P(no system failure by T).
        mttf_hours: Mean time to first system failure.
        interval_failure_rate: Exponential-equivalent rate over (0, T).
    """

    availability: float
    yearly_downtime_minutes: float
    failure_frequency: float
    failures_per_year: float
    mean_time_between_interruptions: float
    mean_downtime_hours: float
    mission_time_hours: float
    interval_availability: float
    reliability_at_mission: float
    mttf_hours: float
    interval_failure_rate: float


def compute_measures(
    solution: SystemSolution,
    mission_time_hours: Optional[float] = None,
    grid_points: int = 65,
) -> SystemMeasures:
    """Evaluate the paper's measure list for a solved model.

    Args:
        solution: Output of :func:`repro.core.translate`.
        mission_time_hours: Interval horizon T; defaults to the model's
            global Mission Time parameter.
        grid_points: Simpson-rule resolution for the interval integrals
            (must be odd; even values are bumped by one).
    """
    mission = (
        mission_time_hours
        if mission_time_hours is not None
        else solution.model.global_parameters.mission_time_hours
    )
    if mission <= 0:
        raise SolverError(f"mission time must be positive, got {mission}")

    availability = solution.availability
    frequency = solution.failure_frequency
    downtime_fraction = max(0.0, 1.0 - availability)
    mean_downtime = (
        downtime_fraction / frequency if frequency > 0 else 0.0
    )

    interval = _interval_availability(solution, mission, grid_points)
    reliability = solution.reliability(mission)
    mttf = system_mttf(solution)
    if reliability <= 0.0:
        interval_rate = float("inf")
    else:
        interval_rate = -math.log(reliability) / mission

    return SystemMeasures(
        availability=availability,
        yearly_downtime_minutes=availability_to_yearly_downtime_minutes(
            availability
        ),
        failure_frequency=frequency,
        failures_per_year=frequency * MINUTES_PER_YEAR / 60.0,
        mean_time_between_interruptions=(
            1.0 / frequency if frequency > 0 else float("inf")
        ),
        mean_downtime_hours=mean_downtime,
        mission_time_hours=mission,
        interval_availability=interval,
        reliability_at_mission=reliability,
        mttf_hours=mttf,
        interval_failure_rate=interval_rate,
    )


def _interval_availability(
    solution: SystemSolution, horizon: float, grid_points: int
) -> float:
    """Simpson integration of the system point availability.

    For independent blocks the expected product equals the product of
    expectations at each instant, so the system point availability is
    the product of block point availabilities, integrated over (0, T).
    """
    if grid_points % 2 == 0:
        grid_points += 1
    if grid_points < 3:
        grid_points = 3
    times = np.linspace(0.0, horizon, grid_points)
    # One grid call per block: sparse chains share a single
    # uniformization power sequence across the whole grid instead of
    # re-running the transient solve per time point.
    values = np.array(solution.point_availability_grid(times))
    from scipy.integrate import simpson

    integral = float(simpson(values, x=times))
    return min(max(integral / horizon, 0.0), 1.0)


def system_mttf(
    solution: SystemSolution,
    tolerance: float = 1e-6,
    max_doublings: int = 60,
) -> float:
    """Mean time to first system failure: ``integral of R_sys(t) dt``.

    ``R_sys`` is the product of block reliabilities.  Integrated on
    doubling intervals with Simpson's rule until the running tail
    contribution falls below ``tolerance`` of the accumulated value.
    """
    if solution.failure_frequency == 0.0:
        # Nothing in the model can take the system down.
        return float("inf")
    # Initial scale: the inverse of the system failure frequency is a
    # good guess for where R starts to roll off.
    scale = 1.0 / solution.failure_frequency
    total = 0.0
    left = 0.0
    width = scale / 8.0
    from scipy.integrate import simpson

    for _round in range(max_doublings):
        times = np.linspace(left, left + width, 17)
        values = np.array(solution.reliability_grid(times))
        segment = float(simpson(values, x=times))
        total += segment
        left += width
        if values[-1] < 1e-9:
            break
        if segment < tolerance * max(total, 1e-300) and values[-1] < 0.5:
            break
        width *= 2.0
    else:
        raise SolverError(
            "system MTTF integration did not converge; the system may be "
            "effectively unfailable at this horizon"
        )
    return total
