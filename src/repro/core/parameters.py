"""The MG engineering language: block and global parameters.

These dataclasses carry exactly the parameter list Section 3 of the
paper attaches to each MG block and to the Global Parameter Bar.  Units
follow the paper's GUI labels (hours for MTBF/Tresp, FIT for transient
rates, minutes for MTTR parts and recovery/reintegration times); derived
properties expose everything in the library's canonical hours /
per-hour units.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace
from ..errors import ParameterError
from ..units import fit_to_rate, minutes, mtbf_to_rate


class Scenario(enum.Enum):
    """Whether an automatic-recovery or repair event interrupts service.

    ``TRANSPARENT`` — no downtime is associated with the event (e.g. an
    N+1 power supply failing over, or a hot-pluggable FRU with dynamic
    reconfiguration).  ``NONTRANSPARENT`` — the event incurs downtime
    (e.g. recovery by reboot, or a cold-swap repair).
    """

    TRANSPARENT = "transparent"
    NONTRANSPARENT = "nontransparent"

    @classmethod
    def parse(cls, value: "str | Scenario") -> "Scenario":
        if isinstance(value, cls):
            return value
        try:
            return cls(str(value).strip().lower())
        except ValueError:
            raise ParameterError(
                f"scenario must be 'transparent' or 'nontransparent', "
                f"got {value!r}"
            ) from None


@dataclass(frozen=True)
class BlockParameters:
    """Parameters of one MG block (one component type).

    Attributes mirror the paper's parameter list:

    * ``name`` / ``part_number`` / ``description`` — identification.
    * ``quantity`` (N) / ``min_required`` (K) — redundancy; all redundant
      units are assumed symmetric with equal failure rates.
    * ``mtbf_hours`` — mean time between permanent faults, per unit.
    * ``transient_fit`` — transient fault rate in FIT, per unit.
    * ``diagnosis_minutes`` / ``corrective_minutes`` /
      ``verification_minutes`` — the three MTTR parts.
    * ``service_response_hours`` (Tresp) — time to wait for service.
    * ``p_correct_diagnosis`` (Pcd) — models imperfect repair.

    Redundancy-only parameters (meaningful when N > K):

    * ``p_latent_fault`` (Plf) and ``mttdlf_hours`` (MTTDLF).
    * ``recovery`` scenario, ``ar_time_minutes`` (AR/Failover Time),
      ``p_spf`` (Pspf), ``spf_recovery_minutes`` (Tspf).
    * ``repair`` scenario and ``reintegration_minutes``.
    """

    name: str
    quantity: int = 1
    min_required: int = 1
    mtbf_hours: float = 1.0e6
    transient_fit: float = 0.0
    diagnosis_minutes: float = 30.0
    corrective_minutes: float = 30.0
    verification_minutes: float = 30.0
    service_response_hours: float = 4.0
    p_correct_diagnosis: float = 0.99
    part_number: str = ""
    description: str = ""
    # Redundancy-only parameters.
    p_latent_fault: float = 0.0
    mttdlf_hours: float = 24.0
    recovery: Scenario = Scenario.TRANSPARENT
    ar_time_minutes: float = 5.0
    p_spf: float = 0.0
    spf_recovery_minutes: float = 30.0
    repair: Scenario = Scenario.TRANSPARENT
    reintegration_minutes: float = 10.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ParameterError("block name must be non-empty")
        if self.quantity < 1 or int(self.quantity) != self.quantity:
            raise ParameterError(
                f"{self.name}: quantity must be a positive integer, "
                f"got {self.quantity}"
            )
        if not 1 <= self.min_required <= self.quantity:
            raise ParameterError(
                f"{self.name}: minimum required quantity must satisfy "
                f"1 <= K <= N, got K={self.min_required}, N={self.quantity}"
            )
        if self.mtbf_hours <= 0:
            raise ParameterError(
                f"{self.name}: MTBF must be positive, got {self.mtbf_hours}"
            )
        if self.transient_fit < 0:
            raise ParameterError(
                f"{self.name}: transient FIT must be non-negative, "
                f"got {self.transient_fit}"
            )
        for label, value in (
            ("diagnosis time", self.diagnosis_minutes),
            ("corrective action time", self.corrective_minutes),
            ("verification time", self.verification_minutes),
        ):
            if value < 0:
                raise ParameterError(
                    f"{self.name}: {label} must be non-negative, got {value}"
                )
        if self.mttr_minutes_total() <= 0:
            raise ParameterError(
                f"{self.name}: total MTTR (diagnosis + corrective + "
                "verification) must be positive"
            )
        if self.service_response_hours < 0:
            raise ParameterError(
                f"{self.name}: service response time must be non-negative, "
                f"got {self.service_response_hours}"
            )
        for label, value in (
            ("Pcd", self.p_correct_diagnosis),
            ("Plf", self.p_latent_fault),
            ("Pspf", self.p_spf),
        ):
            if not 0.0 <= value <= 1.0:
                raise ParameterError(
                    f"{self.name}: {label} must lie in [0, 1], got {value}"
                )
        if self.mttdlf_hours <= 0:
            raise ParameterError(
                f"{self.name}: MTTDLF must be positive, got {self.mttdlf_hours}"
            )
        if self.ar_time_minutes <= 0:
            raise ParameterError(
                f"{self.name}: AR/failover time must be positive, "
                f"got {self.ar_time_minutes}"
            )
        if self.spf_recovery_minutes <= 0:
            raise ParameterError(
                f"{self.name}: SPF recovery time must be positive, "
                f"got {self.spf_recovery_minutes}"
            )
        if self.reintegration_minutes <= 0:
            raise ParameterError(
                f"{self.name}: reintegration time must be positive, "
                f"got {self.reintegration_minutes}"
            )
        # Scenario fields accept strings for spec-file convenience.
        object.__setattr__(self, "recovery", Scenario.parse(self.recovery))
        object.__setattr__(self, "repair", Scenario.parse(self.repair))

    # ------------------------------------------------------------------
    # derived quantities (canonical units)
    # ------------------------------------------------------------------
    def mttr_minutes_total(self) -> float:
        """Total MTTR in minutes (sum of the three MTTR parts)."""
        return (
            self.diagnosis_minutes
            + self.corrective_minutes
            + self.verification_minutes
        )

    @property
    def mttr_hours(self) -> float:
        """Total MTTR in hours."""
        return minutes(self.mttr_minutes_total())

    @property
    def permanent_rate(self) -> float:
        """Permanent fault rate per unit, per hour (1/MTBF)."""
        return mtbf_to_rate(self.mtbf_hours)

    @property
    def transient_rate(self) -> float:
        """Transient fault rate per unit, per hour (from FIT)."""
        return fit_to_rate(self.transient_fit)

    @property
    def is_redundant(self) -> bool:
        """True when N > K (spare units exist)."""
        return self.quantity > self.min_required

    @property
    def redundancy_depth(self) -> int:
        """Number of unit failures the block tolerates (N - K)."""
        return self.quantity - self.min_required

    @property
    def ar_time_hours(self) -> float:
        return minutes(self.ar_time_minutes)

    @property
    def spf_recovery_hours(self) -> float:
        return minutes(self.spf_recovery_minutes)

    @property
    def reintegration_hours(self) -> float:
        return minutes(self.reintegration_minutes)

    def with_changes(self, **changes: object) -> "BlockParameters":
        """A copy with selected fields replaced (parametric analysis)."""
        try:
            return replace(self, **changes)
        except TypeError as exc:
            raise ParameterError(f"{self.name}: {exc}") from exc


@dataclass(frozen=True)
class GlobalParameters:
    """The Global Parameter Bar: values applied to every block.

    * ``reboot_minutes`` (Tboot) — system reboot time.
    * ``mttm_hours`` (MTTM) — mean time to maintenance (service
      restriction time before a deferred service call).
    * ``mttrfid_hours`` (MTTRFID) — mean time to repair from incorrect
      diagnosis.
    * ``mission_time_hours`` — the T used for interval availability and
      reliability measures.
    """

    reboot_minutes: float = 10.0
    mttm_hours: float = 48.0
    mttrfid_hours: float = 8.0
    mission_time_hours: float = 8760.0

    def __post_init__(self) -> None:
        if self.reboot_minutes <= 0:
            raise ParameterError(
                f"reboot time must be positive, got {self.reboot_minutes}"
            )
        if self.mttm_hours < 0:
            raise ParameterError(
                f"MTTM must be non-negative, got {self.mttm_hours}"
            )
        if self.mttrfid_hours <= 0:
            raise ParameterError(
                f"MTTRFID must be positive, got {self.mttrfid_hours}"
            )
        if self.mission_time_hours <= 0:
            raise ParameterError(
                f"mission time must be positive, got {self.mission_time_hours}"
            )

    @property
    def reboot_hours(self) -> float:
        return minutes(self.reboot_minutes)

    def with_changes(self, **changes: object) -> "GlobalParameters":
        """A copy with selected fields replaced (parametric analysis)."""
        try:
            return replace(self, **changes)
        except TypeError as exc:
            raise ParameterError(f"global parameters: {exc}") from exc
