"""Semi-Markov variants of generated models.

MG generates CTMCs: every duration is implicitly exponential.  Real
reboots are nearly deterministic and hands-on repairs are classically
lognormal.  Does the exponential assumption bias the results?

This module builds the *semi-Markov* variant of a generated chain —
same structure, same branch probabilities, same mean durations, but
realistic sojourn shapes chosen by state kind:

* ``reboot`` / ``ar`` / ``transient-ar`` / ``reint`` — deterministic
  (scripted restart sequences),
* ``repair`` / ``logistic`` / ``service-error`` / ``spf`` — lognormal
  with a configurable coefficient of variation (human-paced work),
* everything else (fault waiting times) — exponential.

The punchline the A8 benchmark asserts: **steady-state availability is
exactly unchanged** (the semi-Markov ratio formula depends only on
sojourn means), while transient measures do shift — so RAScad's
exponential assumption is harmless for the headline number and matters
only for mission-time measures.
"""

from __future__ import annotations

from typing import Mapping, Optional

from ..errors import ModelError
from ..markov.chain import MarkovChain
from ..semimarkov.distributions import (
    Deterministic,
    Distribution,
    Exponential,
    Lognormal,
)
from ..semimarkov.process import SemiMarkovProcess

#: Default sojourn shape per generator state kind.
DETERMINISTIC_KINDS = frozenset(
    {"reboot", "ar", "transient-ar", "reint"}
)
LOGNORMAL_KINDS = frozenset(
    {"repair", "logistic", "service-error", "spf"}
)


def _shaped_distribution(
    kind: str, mean: float, repair_cv: float
) -> Distribution:
    if mean <= 0:
        raise ModelError(f"state of kind {kind!r} has non-positive mean")
    if kind in DETERMINISTIC_KINDS:
        return Deterministic(mean)
    if kind in LOGNORMAL_KINDS:
        return Lognormal.from_mean_cv(mean, repair_cv)
    return Exponential.from_mean(mean)


def semi_markov_variant(
    chain: MarkovChain,
    repair_cv: float = 1.0,
    name: Optional[str] = None,
) -> SemiMarkovProcess:
    """The realistic-sojourn semi-Markov twin of a generated chain.

    Branch probabilities come from the chain's embedded jump
    probabilities; each state's sojourn keeps the chain's mean holding
    time ``1/exit_rate`` but takes the shape its ``kind`` metadata
    implies.  States without kind metadata stay exponential.

    Args:
        chain: A chain produced by :func:`repro.core.generate_block_chain`
            (or any chain with ``kind`` metadata).
        repair_cv: Coefficient of variation for the lognormal
            (human-paced) sojourns; 1.0 mimics the exponential spread,
            smaller is more predictable crews.
    """
    if repair_cv <= 0:
        raise ModelError(f"repair CV must be positive, got {repair_cv}")
    process = SemiMarkovProcess(name or f"{chain.name}#smp-variant")
    for state in chain:
        process.add_state(state.name, reward=state.reward, meta=state.meta)
    for state in chain:
        exit_rate = chain.exit_rate(state.name)
        if exit_rate == 0.0:
            continue
        kind = str(state.meta.get("kind", ""))
        sojourn = _shaped_distribution(kind, 1.0 / exit_rate, repair_cv)
        for transition in chain.transitions():
            if transition.source != state.name:
                continue
            process.add_transition(
                state.name,
                transition.target,
                transition.rate / exit_rate,
                sojourn,
            )
    process.validate()
    return process


def exponential_assumption_gap(
    chain: MarkovChain,
    horizon: float,
    repair_cv: float = 1.0,
    max_stages: int = 16,
) -> Mapping[str, float]:
    """Quantify what the exponential assumption changes.

    Returns the steady-state availability of both variants (equal by
    construction) and the point availability A(horizon) of each — the
    transient number is where distribution shape can show up.
    """
    from ..markov.rewards import steady_state_availability
    from ..markov.transient import transient_probabilities
    from ..semimarkov.phase_type import smp_transient_availability
    from ..semimarkov.steady_state import semi_markov_availability

    variant = semi_markov_variant(chain, repair_cv=repair_cv)
    exponential_steady = steady_state_availability(chain)
    variant_steady = semi_markov_availability(variant)

    probabilities = transient_probabilities(chain, horizon)
    indicator = (chain.reward_vector() > 0).astype(float)
    exponential_point = float(probabilities @ indicator)
    variant_point = smp_transient_availability(
        variant, horizon, max_stages=max_stages
    )
    return {
        "steady_exponential": exponential_steady,
        "steady_variant": variant_steady,
        "point_exponential": exponential_point,
        "point_variant": variant_point,
        "transient_gap": abs(exponential_point - variant_point),
    }
