"""repro — a reproduction of "Automatic Generation of Availability
Models in RAScad" (Tang, Zhu, Andrada; DSN 2002).

The package mirrors RAScad's architecture:

* :mod:`repro.core` — the Model Generator (MG): engineering-language
  specs translated automatically into RBD/Markov hierarchies.
* :mod:`repro.gmb` — the Graphical Model Builder substrate: general
  Markov, semi-Markov and RBD modeling for experts.
* :mod:`repro.markov`, :mod:`repro.semimarkov`, :mod:`repro.rbd` — the
  mathematical engines underneath.
* :mod:`repro.spec`, :mod:`repro.database`, :mod:`repro.library` — the
  spec format, component catalog, and product model library.
* :mod:`repro.analysis`, :mod:`repro.render` — parametric analysis and
  documentation generation.
* :mod:`repro.validation` — the SHARPE/MEADEP/field-data validation
  substitutes used by the reproduction benchmarks.

Quickstart::

    from repro import datacenter_model, translate, compute_measures

    solution = translate(datacenter_model())
    measures = compute_measures(solution)
    print(measures.availability, measures.yearly_downtime_minutes)
"""

from .errors import (
    RascadError,
    SpecError,
    ParameterError,
    ModelError,
    SolverError,
    DatabaseError,
    EngineError,
)
from .units import (
    availability_to_yearly_downtime_minutes,
    fit_to_rate,
    mtbf_to_rate,
    nines,
)
from .core import (
    Scenario,
    BlockParameters,
    GlobalParameters,
    MGBlock,
    MGDiagram,
    DiagramBlockModel,
    classify_model_type,
    generate_block_chain,
    translate,
    solve_model,
    SystemSolution,
    BlockSolution,
    SystemMeasures,
    compute_measures,
)
from .markov import MarkovChain, steady_state, steady_state_availability
from .semimarkov import SemiMarkovProcess
from .rbd import series, parallel, k_of_n, NetworkRBD
from .gmb import MarkovBuilder, SemiMarkovBuilder, HierarchicalModel
from .spec import parse_spec, load_spec, model_to_spec, save_spec
from .database import PartsDatabase, PartRecord, builtin_database
from .library import (
    datacenter_model,
    e10000_model,
    workgroup_model,
    ClusterParameters,
    cluster_chain,
    cluster_availability,
)
from .render import model_report, render_model_tree, chain_to_dot
from .engine import (
    Engine,
    EngineStats,
    SolveCache,
    block_digest,
    chain_digest,
    get_default_engine,
    model_digest,
    set_default_engine,
)

__version__ = "1.1.0"

__all__ = [
    "RascadError",
    "SpecError",
    "ParameterError",
    "ModelError",
    "SolverError",
    "DatabaseError",
    "EngineError",
    "availability_to_yearly_downtime_minutes",
    "fit_to_rate",
    "mtbf_to_rate",
    "nines",
    "Scenario",
    "BlockParameters",
    "GlobalParameters",
    "MGBlock",
    "MGDiagram",
    "DiagramBlockModel",
    "classify_model_type",
    "generate_block_chain",
    "translate",
    "solve_model",
    "SystemSolution",
    "BlockSolution",
    "SystemMeasures",
    "compute_measures",
    "MarkovChain",
    "steady_state",
    "steady_state_availability",
    "SemiMarkovProcess",
    "series",
    "parallel",
    "k_of_n",
    "NetworkRBD",
    "MarkovBuilder",
    "SemiMarkovBuilder",
    "HierarchicalModel",
    "parse_spec",
    "load_spec",
    "model_to_spec",
    "save_spec",
    "PartsDatabase",
    "PartRecord",
    "builtin_database",
    "datacenter_model",
    "e10000_model",
    "workgroup_model",
    "ClusterParameters",
    "cluster_chain",
    "cluster_availability",
    "model_report",
    "render_model_tree",
    "chain_to_dot",
    "Engine",
    "EngineStats",
    "SolveCache",
    "block_digest",
    "chain_digest",
    "model_digest",
    "get_default_engine",
    "set_default_engine",
    "__version__",
]
