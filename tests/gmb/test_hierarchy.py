"""Tests for hierarchical GMB composition."""

import pytest

from repro.core import translate
from repro.errors import ModelError
from repro.gmb import HierarchicalModel, MarkovBuilder, SemiMarkovBuilder
from repro.library import workgroup_model
from repro.markov import steady_state_availability
from repro.rbd import Leaf, parallel, series
from repro.semimarkov import Deterministic, Exponential


def chain(availability_target=0.9):
    mu = 1.0
    lam = mu * (1 - availability_target) / availability_target
    return (
        MarkovBuilder("leafchain")
        .up("Ok")
        .down("Down")
        .arc("Ok", "Down", lam)
        .arc("Down", "Ok", mu)
        .build()
    )


class TestBinding:
    def test_bind_chain(self):
        structure = series(Leaf("a"), Leaf("b"))
        model = HierarchicalModel(structure)
        model.bind("a", chain(0.9)).bind("b", 0.8)
        assert model.availability() == pytest.approx(0.72, rel=1e-9)

    def test_bind_semi_markov(self):
        smp = (
            SemiMarkovBuilder()
            .up("Up")
            .down("Down")
            .arc("Up", "Down", 1.0, Exponential.from_mean(9.0))
            .arc("Down", "Up", 1.0, Deterministic(1.0))
            .build()
        )
        model = HierarchicalModel(series(Leaf("x")))
        model.bind("x", smp)
        assert model.availability() == pytest.approx(0.9)

    def test_bind_nested_rbd(self):
        inner = parallel(0.9, 0.9)
        model = HierarchicalModel(series(Leaf("x")))
        model.bind("x", inner)
        assert model.availability() == pytest.approx(1 - 0.01)

    def test_bind_mg_solution(self):
        # "The combined use of MG models and GMB models."
        solution = translate(workgroup_model())
        structure = series(Leaf("server"), Leaf("network", 0.9999))
        model = HierarchicalModel(structure)
        model.bind("server", solution)
        expected = solution.availability * 0.9999
        assert model.availability() == pytest.approx(expected, rel=1e-12)

    def test_unknown_leaf_rejected(self):
        model = HierarchicalModel(series(Leaf("a")))
        with pytest.raises(ModelError, match="no leaf"):
            model.bind("zzz", 0.9)

    def test_out_of_range_float_rejected(self):
        model = HierarchicalModel(series(Leaf("a")))
        model.bind("a", 1.5)
        with pytest.raises(ModelError, match=r"\[0, 1\]"):
            model.availability()

    def test_unsupported_type_rejected(self):
        model = HierarchicalModel(series(Leaf("a")))
        model.bind("a", object())
        with pytest.raises(ModelError, match="unsupported"):
            model.availability()

    def test_unbound_leaf_with_default_probability(self):
        model = HierarchicalModel(series(Leaf("a", 0.95), Leaf("b")))
        model.bind("b", chain(0.9))
        expected = 0.95 * steady_state_availability(chain(0.9))
        assert model.availability() == pytest.approx(expected, rel=1e-9)
