"""Tests for the GMB fluent builders."""

import pytest

from repro.errors import ModelError
from repro.gmb import MarkovBuilder, SemiMarkovBuilder
from repro.markov import steady_state_availability
from repro.semimarkov import Deterministic, Exponential, semi_markov_availability


class TestMarkovBuilder:
    def test_fluent_chain(self):
        chain = (
            MarkovBuilder("m")
            .up("Ok")
            .down("Down")
            .arc("Ok", "Down", 0.1)
            .arc("Down", "Ok", 0.9)
            .build()
        )
        assert steady_state_availability(chain) == pytest.approx(0.9)

    def test_build_validates(self):
        builder = MarkovBuilder().down("OnlyDown")
        with pytest.raises(ModelError):
            builder.build()

    def test_custom_rewards(self):
        chain = (
            MarkovBuilder()
            .up("Full")
            .up("Degraded", reward=0.5)
            .arc("Full", "Degraded", 1.0)
            .arc("Degraded", "Full", 1.0)
            .build()
        )
        assert chain.state("Degraded").reward == 0.5

    def test_arc_labels(self):
        chain = (
            MarkovBuilder()
            .up("A")
            .down("B")
            .arc("A", "B", 1.0, label="fails")
            .arc("B", "A", 1.0)
            .build()
        )
        (first, _) = chain.transitions()
        assert first.label == "fails"


class TestSemiMarkovBuilder:
    def test_fluent_process(self):
        process = (
            SemiMarkovBuilder("s")
            .up("Up")
            .down("Down")
            .arc("Up", "Down", 1.0, Exponential.from_mean(99.0))
            .arc("Down", "Up", 1.0, Deterministic(1.0))
            .build()
        )
        assert semi_markov_availability(process) == pytest.approx(0.99)

    def test_build_validates_branch_sums(self):
        builder = (
            SemiMarkovBuilder()
            .up("A")
            .down("B")
            .arc("A", "B", 0.5, Deterministic(1.0))
            .arc("B", "A", 1.0, Deterministic(1.0))
        )
        with pytest.raises(ModelError, match="sum"):
            builder.build()
