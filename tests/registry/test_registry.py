"""The model registry: publish, digests, gating, refs, rollback."""

import json

import pytest

from repro.engine import Engine
from repro.library import workgroup_model
from repro.registry import (
    LATEST_TAG,
    ModelNotFoundError,
    ModelRegistry,
    RefError,
    RegistryError,
    RegistryStore,
    RegressionError,
    VersionNotFoundError,
    looks_like_digest,
    parse_ref,
    spec_digest,
)
from repro.spec import model_to_spec, parse_spec

OS = "Operating System"


def fresh_registry(**kwargs):
    return ModelRegistry(RegistryStore(":memory:"), **kwargs)


def workgroup_spec():
    return model_to_spec(workgroup_model())


def degraded_spec(mtbf=3_000.0):
    spec = workgroup_spec()
    for block in spec["diagram"]["blocks"]:
        if block["name"] == OS:
            block["mtbf_hours"] = mtbf
    return spec


class TestRefs:
    def test_bare_name(self):
        assert parse_ref("wg") == ("wg", None)

    def test_name_at_tag(self):
        assert parse_ref("wg@prod") == ("wg", "prod")

    def test_trailing_at_rejected(self):
        with pytest.raises(RefError):
            parse_ref("wg@")

    def test_bad_name_rejected(self):
        with pytest.raises(RefError):
            parse_ref("bad name@prod")

    def test_digest_heuristic(self):
        assert looks_like_digest("a1b2c3d4")
        assert not looks_like_digest("a1b2c3")  # too short
        assert not looks_like_digest("production")  # not hex


class TestDigest:
    def test_digest_is_content_addressed(self):
        model = parse_spec(workgroup_spec())
        again = parse_spec(json.loads(json.dumps(workgroup_spec())))
        assert spec_digest(model) == spec_digest(again)

    def test_digest_changes_with_content(self):
        base = parse_spec(workgroup_spec())
        changed = parse_spec(degraded_spec())
        assert spec_digest(base) != spec_digest(changed)


class TestPublish:
    def test_publish_creates_and_tags_latest(self):
        registry = fresh_registry()
        result = registry.publish(workgroup_spec(), "wg")
        assert result.created
        assert result.gate is None
        assert registry.store.tag_digest("wg", LATEST_TAG) == (
            result.version.digest
        )

    def test_republish_same_content_is_idempotent(self):
        registry = fresh_registry()
        first = registry.publish(workgroup_spec(), "wg")
        second = registry.publish(workgroup_spec(), "wg")
        assert first.created and not second.created
        assert first.version.digest == second.version.digest
        assert registry.counts() == {
            "models": 1, "versions": 1, "tags": 1,
        }

    def test_lineage_parent_and_diff(self):
        registry = fresh_registry()
        registry.publish(workgroup_spec(), "wg")
        result = registry.publish(degraded_spec(), "wg")
        parent = registry.store.tag_digest("wg", LATEST_TAG)
        assert result.version.parent_digest is not None
        assert parent == result.version.digest
        (entry,) = result.version.diff
        assert entry["kind"] == "changed"
        assert entry["field"] == "mtbf_hours"
        assert entry["old"] == 30_000.0
        assert entry["new"] == 3_000.0

    def test_stored_spec_returned_verbatim(self):
        registry = fresh_registry()
        spec = workgroup_spec()
        registry.publish(spec, "wg", tag="prod")
        resolved = registry.resolve_spec("wg@prod")
        assert resolved == json.loads(json.dumps(spec))

    def test_evaluation_recorded_at_publish(self):
        registry = fresh_registry()
        result = registry.publish(workgroup_spec(), "wg")
        evaluation = result.version.evaluation
        assert evaluation is not None
        assert 0.99 < evaluation["availability"] < 1.0
        assert evaluation["yearly_downtime_minutes"] > 0
        assert evaluation["mttf_hours"] > 0

    def test_invalid_name_rejected(self):
        registry = fresh_registry()
        with pytest.raises(RefError):
            registry.publish(workgroup_spec(), "no spaces allowed")

    def test_engine_backed_evaluation_matches_bare(self):
        bare = fresh_registry().publish(workgroup_spec(), "wg")
        backed = fresh_registry(engine=Engine()).publish(
            workgroup_spec(), "wg"
        )
        assert bare.version.evaluation == backed.version.evaluation


class TestGate:
    def test_regression_rejected_with_details(self):
        registry = fresh_registry()
        registry.publish(workgroup_spec(), "wg", tag="prod")
        with pytest.raises(RegressionError) as excinfo:
            registry.publish(degraded_spec(), "wg", tag="prod")
        details = excinfo.value.details
        assert details["tag"] == "prod"
        assert details["downtime_delta_minutes"] > details[
            "threshold_minutes"
        ]
        assert details["baseline_digest"] != details["candidate_digest"]
        # prod still points at the baseline.
        assert registry.store.tag_digest("wg", "prod") == (
            details["baseline_digest"]
        )

    def test_force_overrides_and_records(self):
        registry = fresh_registry()
        registry.publish(workgroup_spec(), "wg", tag="prod")
        result = registry.publish(
            degraded_spec(), "wg", tag="prod", force=True
        )
        assert result.gate["forced"] is True
        assert registry.store.tag_digest("wg", "prod") == (
            result.version.digest
        )

    def test_wide_threshold_admits_the_regression(self):
        registry = fresh_registry()
        registry.publish(workgroup_spec(), "wg", tag="prod")
        result = registry.publish(
            degraded_spec(), "wg", tag="prod", threshold=10_000.0
        )
        assert result.gate["forced"] is False

    def test_improvement_passes_the_gate(self):
        registry = fresh_registry()
        registry.publish(degraded_spec(), "wg", tag="prod")
        result = registry.publish(
            workgroup_spec(), "wg", tag="prod"
        )
        assert result.gate["downtime_delta_minutes"] < 0

    def test_latest_tag_is_never_gated(self):
        registry = fresh_registry()
        registry.publish(workgroup_spec(), "wg", tag=LATEST_TAG)
        registry.publish(degraded_spec(), "wg", tag=LATEST_TAG)

    def test_check_is_a_dry_run(self):
        registry = fresh_registry()
        registry.publish(workgroup_spec(), "wg", tag="prod")
        verdict = registry.check(degraded_spec(), "wg", "prod")
        assert verdict["would_reject"] is True
        assert registry.counts()["versions"] == 1  # nothing written

    def test_check_passes_when_tag_unheld(self):
        registry = fresh_registry()
        registry.publish(workgroup_spec(), "wg")
        verdict = registry.check(degraded_spec(), "wg", "prod")
        assert verdict["would_reject"] is False
        assert verdict["baseline_digest"] is None


class TestResolve:
    def test_bare_name_resolves_latest(self):
        registry = fresh_registry()
        registry.publish(workgroup_spec(), "wg")
        newest = registry.publish(degraded_spec(), "wg")
        assert registry.resolve("wg").digest == newest.version.digest

    def test_tag_wins_over_digest_heuristic(self):
        registry = fresh_registry()
        result = registry.publish(workgroup_spec(), "wg")
        # A tag that looks like a digest still resolves as a tag.
        registry.move_tag("wg", "deadbeef", result.version.digest[:12])
        assert registry.resolve("wg@deadbeef").digest == (
            result.version.digest
        )

    def test_digest_prefix_resolves(self):
        registry = fresh_registry()
        result = registry.publish(workgroup_spec(), "wg")
        prefix = result.version.digest[:12]
        assert registry.resolve(f"wg@{prefix}").digest == (
            result.version.digest
        )

    def test_unknown_model(self):
        with pytest.raises(ModelNotFoundError):
            fresh_registry().resolve("ghost")

    def test_unknown_tag_lists_known_tags(self):
        registry = fresh_registry()
        registry.publish(workgroup_spec(), "wg", tag="prod")
        with pytest.raises(VersionNotFoundError) as excinfo:
            registry.resolve("wg@staging")
        assert "prod" in str(excinfo.value)

    def test_unknown_digest_prefix(self):
        registry = fresh_registry()
        registry.publish(workgroup_spec(), "wg")
        with pytest.raises(VersionNotFoundError):
            registry.resolve("wg@0123456789abcdef")


class TestTagsAndRollback:
    def test_move_tag_returns_previous(self):
        registry = fresh_registry()
        first = registry.publish(workgroup_spec(), "wg", tag="prod")
        second = registry.publish(
            degraded_spec(), "wg", tag="prod", force=True
        )
        previous, digest = registry.move_tag(
            "wg", "prod", first.version.digest[:12]
        )
        assert previous == second.version.digest
        assert digest == first.version.digest

    def test_rollback_restores_previous_holder(self):
        registry = fresh_registry()
        first = registry.publish(workgroup_spec(), "wg", tag="prod")
        second = registry.publish(
            degraded_spec(), "wg", tag="prod", force=True
        )
        rolled_from, rolled_to = registry.rollback("wg", "prod")
        assert rolled_from == second.version.digest
        assert rolled_to == first.version.digest
        assert registry.store.tag_digest("wg", "prod") == (
            first.version.digest
        )

    def test_rollback_without_history_is_an_error(self):
        registry = fresh_registry()
        registry.publish(workgroup_spec(), "wg", tag="prod")
        with pytest.raises(RegistryError):
            registry.rollback("wg", "prod")

    def test_rollback_of_unset_tag_is_an_error(self):
        registry = fresh_registry()
        registry.publish(workgroup_spec(), "wg")
        with pytest.raises(RegistryError):
            registry.rollback("wg", "prod")


class TestSeeding:
    def test_seed_publishes_the_library_without_solving(self):
        engine = Engine()
        registry = fresh_registry(engine=engine)
        created = registry.seed_library()
        assert created == 3
        assert registry.names() == ["datacenter", "e10000", "workgroup"]
        # Lazy evaluation: seeding performed zero solves.
        assert engine.stats.snapshot().system_solves == 0
        for row in registry.list_models():
            assert row["tags"].keys() == {LATEST_TAG}

    def test_seeding_is_idempotent(self):
        registry = fresh_registry()
        assert registry.seed_library() == 3
        assert registry.seed_library() == 0
        assert registry.counts()["versions"] == 3

    def test_lazy_evaluation_backfills_once(self):
        registry = fresh_registry()
        registry.seed_library()
        digest = registry.store.tag_digest("workgroup", LATEST_TAG)
        row = registry.store.version_row("workgroup", digest)
        assert row["evaluation"] is None
        evaluation = registry.evaluation_for("workgroup", digest)
        assert evaluation["yearly_downtime_minutes"] > 0
        row = registry.store.version_row("workgroup", digest)
        assert row["evaluation"] == evaluation


class TestPersistence:
    def test_registry_survives_reopen(self, tmp_path):
        path = tmp_path / "registry.sqlite3"
        first = ModelRegistry(RegistryStore(path))
        published = first.publish(workgroup_spec(), "wg", tag="prod")
        first.close()
        second = ModelRegistry(RegistryStore(path))
        assert second.resolve("wg@prod").digest == (
            published.version.digest
        )
        assert second.resolve_spec("wg@prod") == json.loads(
            json.dumps(workgroup_spec())
        )
        second.close()

    def test_counters_flow_through_stats(self):
        engine = Engine()
        registry = fresh_registry(engine=engine)
        registry.publish(workgroup_spec(), "wg", tag="prod")
        registry.resolve("wg@prod")
        with pytest.raises(RegressionError):
            registry.publish(degraded_spec(), "wg", tag="prod")
        counters = engine.stats.snapshot().counters
        assert counters["registry_publishes"] == 1
        assert counters["registry_resolves"] == 1
        assert counters["registry_regressions_blocked"] == 1
