"""Tests for the component parts database."""

import pytest

from repro.database import PartRecord, PartsDatabase, builtin_database
from repro.errors import DatabaseError


class TestPartRecord:
    def test_valid_record(self):
        record = PartRecord(part_number="X-1", mtbf_hours=1e5)
        assert record.mtbf_hours == 1e5

    def test_empty_part_number_rejected(self):
        with pytest.raises(DatabaseError):
            PartRecord(part_number="")

    def test_bad_mtbf_rejected(self):
        with pytest.raises(DatabaseError, match="MTBF"):
            PartRecord(part_number="X", mtbf_hours=0.0)

    def test_negative_fit_rejected(self):
        with pytest.raises(DatabaseError, match="FIT"):
            PartRecord(part_number="X", transient_fit=-1.0)

    def test_as_block_fields(self):
        record = PartRecord(
            part_number="X", mtbf_hours=5.0, transient_fit=7.0,
            diagnosis_minutes=1.0, corrective_minutes=2.0,
            verification_minutes=3.0, description="thing",
        )
        fields = record.as_block_fields()
        assert fields["mtbf_hours"] == 5.0
        assert fields["description"] == "thing"
        assert "part_number" not in fields


class TestPartsDatabase:
    def test_add_and_lookup(self):
        db = PartsDatabase()
        db.add(PartRecord(part_number="X-1"))
        assert db.lookup("X-1").part_number == "X-1"

    def test_duplicate_rejected(self):
        db = PartsDatabase()
        db.add(PartRecord(part_number="X-1"))
        with pytest.raises(DatabaseError, match="duplicate"):
            db.add(PartRecord(part_number="X-1"))

    def test_unknown_lookup_rejected(self):
        with pytest.raises(DatabaseError, match="unknown part"):
            PartsDatabase().lookup("X-1")

    def test_contains_and_len(self):
        db = PartsDatabase()
        db.add(PartRecord(part_number="A"))
        assert "A" in db and "B" not in db
        assert len(db) == 1

    def test_iteration_sorted(self):
        db = PartsDatabase()
        db.add(PartRecord(part_number="B"))
        db.add(PartRecord(part_number="A"))
        assert [r.part_number for r in db] == ["A", "B"]


class TestPersistence:
    def test_json_round_trip(self):
        db = builtin_database()
        restored = PartsDatabase.from_json(db.to_json())
        assert len(restored) == len(db)
        assert restored.lookup("CPU-400") == db.lookup("CPU-400")

    def test_save_and_load(self, tmp_path):
        path = tmp_path / "parts.json"
        builtin_database().save(path)
        restored = PartsDatabase.load(path)
        assert "HDD-36G" in restored

    def test_invalid_json_rejected(self):
        with pytest.raises(DatabaseError, match="invalid"):
            PartsDatabase.from_json("{bad")

    def test_non_list_rejected(self):
        with pytest.raises(DatabaseError, match="list"):
            PartsDatabase.from_json("{}")

    def test_bad_entry_rejected(self):
        with pytest.raises(DatabaseError):
            PartsDatabase.from_json('[{"bogus_field": 1}]')


class TestBuiltinCatalog:
    def test_has_figure2_part_classes(self):
        db = builtin_database()
        for part in ("SYSBD-01", "CPU-400", "MEM-1G", "PSU-650",
                     "FAN-92", "HDD-36G", "IOB-PCI"):
            assert part in db

    def test_disks_are_least_reliable_class(self):
        db = builtin_database()
        disk = db.lookup("HDD-36G")
        others = [r for r in db if r.part_number != "HDD-36G"]
        assert disk.mtbf_hours <= min(r.mtbf_hours for r in others)

    def test_returns_fresh_copies(self):
        a = builtin_database()
        b = builtin_database()
        a.add(PartRecord(part_number="LOCAL-1"))
        assert "LOCAL-1" not in b


class TestCost:
    def test_cost_defaults_to_unpriced(self):
        record = PartRecord(part_number="X-1", mtbf_hours=1e5)
        assert record.cost == 0.0

    def test_negative_cost_rejected(self):
        with pytest.raises(DatabaseError, match="cost"):
            PartRecord(part_number="X-1", cost=-1.0)

    def test_cost_survives_json_round_trip(self):
        db = PartsDatabase()
        db.add(PartRecord(part_number="X-1", cost=123.5))
        reread = PartsDatabase.from_json(db.to_json())
        assert reread.lookup("X-1").cost == 123.5

    def test_cost_not_a_block_field(self):
        record = PartRecord(part_number="X-1", cost=9.0)
        assert "cost" not in record.as_block_fields()

    def test_builtin_parts_are_priced(self):
        assert all(record.cost > 0 for record in builtin_database())


class TestModelCost:
    def test_rollup_is_quantity_times_unit_cost(self):
        from repro.database import model_cost
        from repro.library import workgroup_model

        db = builtin_database()
        model = workgroup_model()
        expected = sum(
            block.parameters.quantity
            * db.lookup(block.parameters.part_number).cost
            for _level, _path, block in model.walk()
            if block.parameters.part_number
        )
        assert model_cost(model, db) == expected == 19460.0

    def test_unpriced_and_unnumbered_blocks_are_free(self):
        from repro.core import (
            BlockParameters, DiagramBlockModel, MGBlock, MGDiagram,
        )
        from repro.database import model_cost

        db = PartsDatabase()
        db.add(PartRecord(part_number="FREE-1"))  # cost defaults 0.0
        root = MGDiagram("sys", [
            MGBlock(BlockParameters(
                name="a", part_number="FREE-1", quantity=3,
            )),
            MGBlock(BlockParameters(name="b")),
        ])
        assert model_cost(DiagramBlockModel(root), db) == 0.0

    def test_unknown_part_number_rejected(self):
        from repro.core import (
            BlockParameters, DiagramBlockModel, MGBlock, MGDiagram,
        )
        from repro.database import model_cost

        root = MGDiagram("sys", [
            MGBlock(BlockParameters(name="a", part_number="NOPE-1")),
        ])
        with pytest.raises(DatabaseError, match="NOPE-1"):
            model_cost(DiagramBlockModel(root), PartsDatabase())
