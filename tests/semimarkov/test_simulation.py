"""Tests for Monte Carlo evaluation of semi-Markov processes."""

import pytest

from repro.errors import ModelError, SolverError
from repro.gmb import MarkovBuilder
from repro.markov import mean_time_to_failure
from repro.semimarkov import (
    Deterministic,
    Exponential,
    SemiMarkovProcess,
    semi_markov_availability,
    simulate_interval_availability,
    simulate_time_to_failure,
)


def alternating(up_mean=10.0, down_mean=1.0) -> SemiMarkovProcess:
    process = SemiMarkovProcess("alt")
    process.add_state("Up")
    process.add_state("Down", reward=0.0)
    process.add_transition("Up", "Down", 1.0, Exponential.from_mean(up_mean))
    process.add_transition("Down", "Up", 1.0, Deterministic(down_mean))
    return process


class TestAvailabilitySimulation:
    def test_converges_to_analytic(self):
        process = alternating(9.0, 1.0)
        result = simulate_interval_availability(
            process, horizon=5_000.0, replications=100, seed=0
        )
        analytic = semi_markov_availability(process)
        assert result.contains(analytic)
        assert result.half_width < 0.01

    def test_deterministic_seeding(self):
        process = alternating()
        a = simulate_interval_availability(process, 100.0, 20, seed=5)
        b = simulate_interval_availability(process, 100.0, 20, seed=5)
        assert a.mean == b.mean

    def test_different_seeds_differ(self):
        process = alternating()
        a = simulate_interval_availability(process, 100.0, 20, seed=5)
        b = simulate_interval_availability(process, 100.0, 20, seed=6)
        assert a.mean != b.mean

    def test_absorbing_up_state_counts_as_up_forever(self):
        process = SemiMarkovProcess()
        process.add_state("Transient", reward=0.0)
        process.add_state("Final", reward=1.0)
        process.add_transition(
            "Transient", "Final", 1.0, Deterministic(1.0)
        )
        result = simulate_interval_availability(
            process, horizon=10.0, replications=5, seed=0
        )
        assert result.mean == pytest.approx(0.9)

    def test_bad_horizon_rejected(self):
        with pytest.raises(SolverError):
            simulate_interval_availability(alternating(), horizon=0.0)

    def test_unsupported_confidence_rejected(self):
        with pytest.raises(SolverError, match="confidence"):
            simulate_interval_availability(
                alternating(), 10.0, 10, seed=0, confidence=0.5
            )

    def test_result_interval_accessors(self):
        result = simulate_interval_availability(
            alternating(), 500.0, 30, seed=1
        )
        assert result.low <= result.mean <= result.high
        assert result.replications == 30


class TestTimeToFailureSimulation:
    def test_matches_ctmc_mttf(self):
        chain = (
            MarkovBuilder("standby")
            .up("Both")
            .up("One")
            .down("None")
            .arc("Both", "One", 0.05)
            .arc("One", "None", 0.05)
            .arc("One", "Both", 1.0)
            .arc("None", "One", 1.0)
            .build()
        )
        process = SemiMarkovProcess.from_markov_chain(chain)
        result = simulate_time_to_failure(
            process, replications=400, seed=3
        )
        assert result.contains(mean_time_to_failure(chain))

    def test_requires_a_down_state(self):
        process = SemiMarkovProcess()
        process.add_state("A")
        process.add_state("B")
        process.add_transition("A", "B", 1.0, Deterministic(1.0))
        process.add_transition("B", "A", 1.0, Deterministic(1.0))
        with pytest.raises(ModelError, match="no down state"):
            simulate_time_to_failure(process)

    def test_down_start_rejected(self):
        with pytest.raises(ModelError, match="already down"):
            simulate_time_to_failure(alternating(), start="Down")

    def test_deterministic_ttf(self):
        process = SemiMarkovProcess()
        process.add_state("Up")
        process.add_state("Down", reward=0.0)
        process.add_transition("Up", "Down", 1.0, Deterministic(7.0))
        process.add_transition("Down", "Up", 1.0, Deterministic(1.0))
        result = simulate_time_to_failure(process, replications=10, seed=0)
        assert result.mean == pytest.approx(7.0)
        assert result.half_width == pytest.approx(0.0)
