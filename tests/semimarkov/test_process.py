"""Tests for the semi-Markov process structure."""

import numpy as np
import pytest

from repro.errors import ModelError
from repro.gmb import MarkovBuilder
from repro.semimarkov import (
    Deterministic,
    Exponential,
    SemiMarkovProcess,
)


def alternating(up_mean=10.0, down_mean=1.0) -> SemiMarkovProcess:
    process = SemiMarkovProcess("alt")
    process.add_state("Up", reward=1.0)
    process.add_state("Down", reward=0.0)
    process.add_transition("Up", "Down", 1.0, Exponential.from_mean(up_mean))
    process.add_transition("Down", "Up", 1.0, Deterministic(down_mean))
    return process


class TestConstruction:
    def test_duplicate_state_rejected(self):
        process = SemiMarkovProcess()
        process.add_state("A")
        with pytest.raises(ModelError, match="duplicate"):
            process.add_state("A")

    def test_unknown_states_rejected(self):
        process = SemiMarkovProcess()
        process.add_state("A")
        with pytest.raises(ModelError, match="unknown target"):
            process.add_transition("A", "B", 1.0, Deterministic(1.0))
        with pytest.raises(ModelError, match="unknown source"):
            process.add_transition("B", "A", 1.0, Deterministic(1.0))

    def test_bad_probability_rejected(self):
        process = alternating()
        with pytest.raises(ModelError, match="probability"):
            process.add_transition("Up", "Down", 1.5, Deterministic(1.0))

    def test_zero_probability_dropped(self):
        process = alternating()
        process.add_transition("Up", "Down", 0.0, Deterministic(1.0))
        assert len(process.kernel("Up")) == 1

    def test_validate_checks_branch_sums(self):
        process = SemiMarkovProcess()
        process.add_state("A")
        process.add_state("B", reward=0.0)
        process.add_transition("A", "B", 0.4, Deterministic(1.0))
        process.add_transition("B", "A", 1.0, Deterministic(1.0))
        with pytest.raises(ModelError, match="sum to"):
            process.validate()

    def test_validate_allows_absorbing(self):
        process = SemiMarkovProcess()
        process.add_state("A")
        process.add_state("B", reward=0.0)
        process.add_transition("A", "B", 1.0, Deterministic(1.0))
        process.validate()
        assert process.is_absorbing("B")


class TestDerivedQuantities:
    def test_embedded_matrix(self):
        process = alternating()
        p = process.embedded_matrix()
        np.testing.assert_allclose(p, [[0, 1], [1, 0]])

    def test_absorbing_rows_self_loop(self):
        process = SemiMarkovProcess()
        process.add_state("A")
        process.add_state("B", reward=0.0)
        process.add_transition("A", "B", 1.0, Deterministic(1.0))
        p = process.embedded_matrix()
        assert p[1, 1] == 1.0

    def test_mean_sojourns(self):
        process = alternating(up_mean=12.0, down_mean=2.0)
        np.testing.assert_allclose(process.mean_sojourns(), [12.0, 2.0])

    def test_mixed_destination_sojourn(self):
        process = SemiMarkovProcess()
        process.add_state("A")
        process.add_state("B", reward=0.0)
        process.add_state("C", reward=0.0)
        process.add_transition("A", "B", 0.25, Deterministic(4.0))
        process.add_transition("A", "C", 0.75, Deterministic(8.0))
        process.add_transition("B", "A", 1.0, Deterministic(1.0))
        process.add_transition("C", "A", 1.0, Deterministic(1.0))
        assert process.mean_sojourns()[0] == pytest.approx(
            0.25 * 4.0 + 0.75 * 8.0
        )

    def test_up_down_partition(self):
        process = alternating()
        assert process.up_states() == ["Up"]
        assert process.down_states() == ["Down"]


class TestEmbedding:
    def test_from_markov_chain_preserves_structure(self):
        chain = (
            MarkovBuilder("pair")
            .up("Ok")
            .down("Down")
            .arc("Ok", "Down", 0.1)
            .arc("Down", "Ok", 0.5)
            .build()
        )
        process = SemiMarkovProcess.from_markov_chain(chain)
        assert process.state_names == ["Ok", "Down"]
        (entry,) = process.kernel("Ok")
        assert entry.target == "Down"
        assert entry.probability == pytest.approx(1.0)
        assert entry.distribution.mean() == pytest.approx(10.0)

    def test_branching_probabilities(self):
        chain = (
            MarkovBuilder("branch")
            .up("A")
            .down("B")
            .down("C")
            .arc("A", "B", 3.0)
            .arc("A", "C", 1.0)
            .arc("B", "A", 1.0)
            .arc("C", "A", 1.0)
            .build()
        )
        process = SemiMarkovProcess.from_markov_chain(chain)
        targets = {e.target: e.probability for e in process.kernel("A")}
        assert targets["B"] == pytest.approx(0.75)
        assert targets["C"] == pytest.approx(0.25)
