"""Tests for phase-type fitting and semi-Markov expansion."""

import pytest

from repro.errors import SolverError
from repro.markov import steady_state_availability, transient_probabilities
from repro.semimarkov import (
    Deterministic,
    Erlang,
    Exponential,
    Lognormal,
    SemiMarkovProcess,
    Uniform,
    expand_to_ctmc,
    fit_distribution,
    fit_phase_type,
    semi_markov_availability,
    simulate_interval_availability,
    smp_transient_availability,
)


class TestMomentMatching:
    @pytest.mark.parametrize("cv2", [1.0, 4.0, 16.0, 0.6, 0.3, 0.08])
    def test_mean_and_variance_matched_exactly(self, cv2):
        mean = 7.3
        fit = fit_phase_type(mean, cv2)
        assert fit.mean() == pytest.approx(mean, rel=1e-10)
        assert fit.variance() == pytest.approx(cv2 * mean * mean, rel=1e-9)

    def test_exponential_is_single_stage(self):
        fit = fit_phase_type(5.0, 1.0)
        assert fit.total_stages == 1
        assert fit.branches[0].rate == pytest.approx(0.2)

    def test_high_variance_is_hyperexponential(self):
        fit = fit_phase_type(5.0, 9.0)
        assert len(fit.branches) == 2
        assert all(branch.stages == 1 for branch in fit.branches)

    def test_low_variance_is_erlang_mixture(self):
        fit = fit_phase_type(5.0, 0.25)
        stage_counts = sorted(branch.stages for branch in fit.branches)
        assert stage_counts in ([3, 4], [4])

    def test_point_mass_capped_at_max_stages(self):
        fit = fit_phase_type(5.0, 0.0, max_stages=16)
        assert fit.total_stages == 16
        assert fit.mean() == pytest.approx(5.0)

    def test_bad_inputs_rejected(self):
        with pytest.raises(SolverError):
            fit_phase_type(0.0, 1.0)
        with pytest.raises(SolverError):
            fit_phase_type(1.0, -0.5)
        with pytest.raises(SolverError):
            fit_phase_type(1.0, 1.0, max_stages=0)

    @pytest.mark.parametrize("dist", [
        Exponential(0.4),
        Deterministic(2.0),
        Uniform(1.0, 3.0),
        Lognormal.from_mean_cv(4.0, 1.5),
        Erlang.from_mean(6.0, 4),
    ], ids=lambda d: type(d).__name__)
    def test_fit_distribution_matches_moments(self, dist):
        fit = fit_distribution(dist, max_stages=64)
        assert fit.mean() == pytest.approx(dist.mean(), rel=1e-9)
        if dist.cv_squared() >= 1.0 / 64:
            assert fit.variance() == pytest.approx(
                dist.variance(), rel=1e-8, abs=1e-12
            )


def alternating(down_dist):
    process = SemiMarkovProcess("alt")
    process.add_state("Up")
    process.add_state("Down", reward=0.0)
    process.add_transition("Up", "Down", 1.0, Exponential.from_mean(19.0))
    process.add_transition("Down", "Up", 1.0, down_dist)
    return process


class TestExpansion:
    def test_exponential_kernel_expands_to_itself_structurally(self):
        process = alternating(Exponential.from_mean(1.0))
        chain = expand_to_ctmc(process)
        assert chain.n_states == 2  # one stage per state

    def test_steady_state_exact_for_any_fit(self):
        # The ratio formula depends only on means, which PH preserves.
        for down in (Deterministic(1.0), Lognormal.from_mean_cv(1.0, 2.0),
                     Uniform(0.5, 1.5)):
            process = alternating(down)
            chain = expand_to_ctmc(process, max_stages=16)
            assert steady_state_availability(chain) == pytest.approx(
                semi_markov_availability(process), rel=1e-9
            )

    def test_stage_rewards_inherited(self):
        process = alternating(Deterministic(1.0))
        chain = expand_to_ctmc(process, max_stages=8)
        for state in chain:
            expected = 1.0 if state.meta["smp_state"] == "Up" else 0.0
            assert state.reward == expected

    def test_absorbing_states_preserved(self):
        process = SemiMarkovProcess("ttf")
        process.add_state("Up")
        process.add_state("Dead", reward=0.0)
        process.add_transition("Up", "Dead", 1.0, Deterministic(4.0))
        chain = expand_to_ctmc(process, max_stages=8)
        assert chain.exit_rate("Dead") == 0.0

    def test_expanded_chain_validates(self):
        process = alternating(Lognormal.from_mean_cv(1.0, 1.4))
        expand_to_ctmc(process, max_stages=12).validate()


class TestTransientAvailability:
    def test_exact_for_exponential_kernel(self):
        process = alternating(Exponential.from_mean(1.0))
        chain = expand_to_ctmc(process)
        for t in (0.5, 3.0, 10.0):
            direct = transient_probabilities(chain, t)
            value = smp_transient_availability(process, t)
            assert value == pytest.approx(float(direct[0]), rel=1e-9)

    def test_at_time_zero_fully_up(self):
        process = alternating(Deterministic(1.0))
        assert smp_transient_availability(process, 0.0) == pytest.approx(1.0)

    def test_deterministic_downtime_against_closed_form(self):
        # With Down = exactly 1h, the system is down at t iff the last
        # failure happened within (t-1, t); for small t the first-cycle
        # term dominates: P(down at 0.5) = P(T < 0.5) = 1 - e^(-0.5/19).
        import math

        process = alternating(Deterministic(1.0))
        value = smp_transient_availability(process, 0.5, max_stages=64)
        assert value == pytest.approx(math.exp(-0.5 / 19.0), rel=1e-3)

    def test_converges_to_steady_state(self):
        process = alternating(Deterministic(1.0))
        value = smp_transient_availability(process, 400.0, max_stages=16)
        assert value == pytest.approx(
            semi_markov_availability(process), rel=1e-6
        )

    def test_interval_consistency_with_monte_carlo(self):
        # Average the PH point availability over a horizon and compare
        # with the Monte Carlo interval availability.
        import numpy as np

        process = alternating(Lognormal.from_mean_cv(1.0, 1.2))
        horizon = 40.0
        times = np.linspace(0.0, horizon, 33)
        values = [
            smp_transient_availability(process, float(t), max_stages=16)
            for t in times
        ]
        from scipy.integrate import simpson

        ph_interval = float(simpson(values, x=times)) / horizon
        mc = simulate_interval_availability(
            process, horizon=horizon, replications=300, seed=3
        )
        assert mc.contains(ph_interval)
