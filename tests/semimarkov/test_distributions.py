"""Tests for sojourn-time distributions."""

import math

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.semimarkov import (
    Deterministic,
    Erlang,
    Exponential,
    Lognormal,
    Uniform,
    Weibull,
)

ALL = [
    Exponential(0.5),
    Deterministic(3.0),
    Uniform(1.0, 5.0),
    Weibull(2.0, 4.0),
    Lognormal(0.1, 0.5),
    Erlang(3, 1.5),
]


@pytest.mark.parametrize("dist", ALL, ids=lambda d: type(d).__name__)
class TestCommonContract:
    def test_samples_are_non_negative(self, dist):
        rng = np.random.default_rng(0)
        for _ in range(200):
            assert dist.sample(rng) >= 0.0

    def test_sample_mean_converges(self, dist):
        rng = np.random.default_rng(1)
        samples = np.array([dist.sample(rng) for _ in range(20_000)])
        assert samples.mean() == pytest.approx(dist.mean(), rel=0.05)

    def test_mean_is_positive(self, dist):
        assert dist.mean() > 0


class TestExponential:
    def test_mean(self):
        assert Exponential(4.0).mean() == pytest.approx(0.25)

    def test_from_mean(self):
        assert Exponential.from_mean(8.0).rate == pytest.approx(0.125)

    def test_invalid_rate(self):
        with pytest.raises(ParameterError):
            Exponential(0.0)
        with pytest.raises(ParameterError):
            Exponential.from_mean(-2.0)


class TestDeterministic:
    def test_sample_is_exact(self):
        rng = np.random.default_rng(0)
        assert Deterministic(2.5).sample(rng) == 2.5

    def test_zero_allowed(self):
        assert Deterministic(0.0).mean() == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ParameterError):
            Deterministic(-1.0)


class TestUniform:
    def test_mean(self):
        assert Uniform(2.0, 6.0).mean() == pytest.approx(4.0)

    def test_samples_in_range(self):
        rng = np.random.default_rng(2)
        dist = Uniform(1.0, 3.0)
        for _ in range(100):
            assert 1.0 <= dist.sample(rng) <= 3.0

    def test_invalid_bounds(self):
        with pytest.raises(ParameterError):
            Uniform(5.0, 3.0)
        with pytest.raises(ParameterError):
            Uniform(-1.0, 3.0)


class TestWeibull:
    def test_shape_one_is_exponential(self):
        assert Weibull(1.0, 5.0).mean() == pytest.approx(5.0)

    def test_mean_uses_gamma(self):
        dist = Weibull(2.0, 1.0)
        assert dist.mean() == pytest.approx(math.gamma(1.5))

    def test_invalid_parameters(self):
        with pytest.raises(ParameterError):
            Weibull(0.0, 1.0)
        with pytest.raises(ParameterError):
            Weibull(1.0, -1.0)


class TestLognormal:
    def test_from_mean_cv_recovers_mean(self):
        dist = Lognormal.from_mean_cv(mean=3.0, cv=0.8)
        assert dist.mean() == pytest.approx(3.0, rel=1e-12)

    def test_invalid_sigma(self):
        with pytest.raises(ParameterError):
            Lognormal(0.0, 0.0)

    def test_invalid_mean_cv(self):
        with pytest.raises(ParameterError):
            Lognormal.from_mean_cv(-1.0, 0.5)


class TestErlang:
    def test_mean(self):
        assert Erlang(4, 2.0).mean() == pytest.approx(2.0)

    def test_from_mean(self):
        dist = Erlang.from_mean(6.0, k=3)
        assert dist.mean() == pytest.approx(6.0)

    def test_invalid_k(self):
        with pytest.raises(ParameterError):
            Erlang(0, 1.0)

    def test_cv_decreases_with_k(self):
        rng = np.random.default_rng(3)
        def cv(dist):
            samples = np.array([dist.sample(rng) for _ in range(20_000)])
            return samples.std() / samples.mean()
        assert cv(Erlang.from_mean(1.0, 9)) < cv(Erlang.from_mean(1.0, 1))
