"""Tests for the semi-Markov steady-state solver."""

import numpy as np
import pytest

from repro.errors import ModelError, SolverError
from repro.gmb import MarkovBuilder
from repro.markov import steady_state as markov_steady_state
from repro.semimarkov import (
    Deterministic,
    Exponential,
    SemiMarkovProcess,
    embedded_dtmc_stationary,
    semi_markov_availability,
    semi_markov_steady_state,
)


class TestEmbeddedDtmc:
    def test_two_state_swap(self):
        nu = embedded_dtmc_stationary(np.array([[0.0, 1.0], [1.0, 0.0]]))
        np.testing.assert_allclose(nu, [0.5, 0.5])

    def test_weather_chain(self):
        p = np.array([[0.9, 0.1], [0.5, 0.5]])
        nu = embedded_dtmc_stationary(p)
        # Stationary of this classic chain: (5/6, 1/6).
        np.testing.assert_allclose(nu, [5 / 6, 1 / 6], rtol=1e-10)

    def test_rejects_bad_rows(self):
        with pytest.raises(SolverError, match="sum to one"):
            embedded_dtmc_stationary(np.array([[0.5, 0.2], [0.5, 0.5]]))

    def test_rejects_negative(self):
        with pytest.raises(SolverError, match="negative"):
            embedded_dtmc_stationary(np.array([[1.2, -0.2], [0.5, 0.5]]))

    def test_single_state(self):
        np.testing.assert_allclose(
            embedded_dtmc_stationary(np.array([[1.0]])), [1.0]
        )


class TestRatioFormula:
    def test_alternating_renewal(self):
        # Up 19 h (exp), down 1 h (deterministic): availability 0.95.
        process = SemiMarkovProcess("alt")
        process.add_state("Up")
        process.add_state("Down", reward=0.0)
        process.add_transition("Up", "Down", 1.0, Exponential.from_mean(19.0))
        process.add_transition("Down", "Up", 1.0, Deterministic(1.0))
        fractions = semi_markov_steady_state(process)
        assert fractions["Up"] == pytest.approx(0.95)
        assert semi_markov_availability(process) == pytest.approx(0.95)

    def test_distribution_shape_does_not_matter_in_steady_state(self):
        # Only means enter the ratio formula.
        def build(down_dist):
            process = SemiMarkovProcess()
            process.add_state("Up")
            process.add_state("Down", reward=0.0)
            process.add_transition(
                "Up", "Down", 1.0, Exponential.from_mean(10.0)
            )
            process.add_transition("Down", "Up", 1.0, down_dist)
            return semi_markov_availability(process)

        exponential = build(Exponential.from_mean(2.0))
        deterministic = build(Deterministic(2.0))
        assert exponential == pytest.approx(deterministic, rel=1e-12)

    def test_matches_ctmc_for_exponential_kernel(self):
        chain = (
            MarkovBuilder("tri")
            .up("A")
            .up("B")
            .down("C")
            .arc("A", "B", 0.4)
            .arc("B", "C", 0.2)
            .arc("B", "A", 0.6)
            .arc("C", "A", 1.0)
            .build()
        )
        process = SemiMarkovProcess.from_markov_chain(chain)
        smp = semi_markov_steady_state(process)
        ctmc = markov_steady_state(chain)
        for name in chain.state_names:
            assert smp[name] == pytest.approx(ctmc[name], rel=1e-9)

    def test_absorbing_state_rejected(self):
        process = SemiMarkovProcess()
        process.add_state("A")
        process.add_state("B", reward=0.0)
        process.add_transition("A", "B", 1.0, Deterministic(1.0))
        with pytest.raises(ModelError, match="absorbing"):
            semi_markov_steady_state(process)
