"""Property-based tests for spec round-tripping (hypothesis)."""

from hypothesis import given, settings, strategies as st

from repro.core import (
    BlockParameters,
    DiagramBlockModel,
    GlobalParameters,
    MGBlock,
    MGDiagram,
)
from repro.spec import model_to_spec, parse_spec

block_names = st.text(
    alphabet=st.characters(
        whitelist_categories=("Lu", "Ll", "Nd"), whitelist_characters=" -"
    ),
    min_size=1,
    max_size=20,
).map(str.strip).filter(bool)


@st.composite
def random_block(draw, allow_subdiagram=True, depth=0):
    name = draw(block_names)
    quantity = draw(st.integers(min_value=1, max_value=4))
    parameters = BlockParameters(
        name=name,
        quantity=quantity,
        min_required=draw(st.integers(min_value=1, max_value=quantity)),
        mtbf_hours=draw(st.floats(min_value=1.0, max_value=1e7)),
        transient_fit=draw(st.floats(min_value=0.0, max_value=1e5)),
        p_correct_diagnosis=draw(st.floats(min_value=0.0, max_value=1.0)),
        recovery=draw(st.sampled_from(["transparent", "nontransparent"])),
        repair=draw(st.sampled_from(["transparent", "nontransparent"])),
    )
    subdiagram = None
    if allow_subdiagram and depth < 2 and draw(st.booleans()):
        subdiagram = draw(random_diagram(depth=depth + 1))
    return MGBlock(parameters, subdiagram=subdiagram)


@st.composite
def random_diagram(draw, depth=0):
    name = draw(block_names)
    n_blocks = draw(st.integers(min_value=1, max_value=4))
    diagram = MGDiagram(name)
    used = set()
    for _ in range(n_blocks):
        block = draw(
            random_block(allow_subdiagram=depth < 2, depth=depth)
        )
        if block.name in used:
            continue
        used.add(block.name)
        diagram.add_block(block)
    return diagram


@st.composite
def random_model(draw):
    return DiagramBlockModel(
        draw(random_diagram()),
        GlobalParameters(
            reboot_minutes=draw(st.floats(min_value=1.0, max_value=60.0)),
            mttm_hours=draw(st.floats(min_value=0.0, max_value=200.0)),
        ),
    )


class TestRoundTripProperties:
    @given(model=random_model())
    @settings(max_examples=60, deadline=None)
    def test_round_trip_preserves_structure(self, model):
        restored = parse_spec(model_to_spec(model))
        assert restored.block_count() == model.block_count()
        assert restored.depth() == model.depth()
        assert restored.name == model.name

    @given(model=random_model())
    @settings(max_examples=60, deadline=None)
    def test_round_trip_preserves_parameters(self, model):
        restored = parse_spec(model_to_spec(model))
        original_walk = list(model.walk())
        restored_walk = list(restored.walk())
        for (level, path, block), (rlevel, rpath, rblock) in zip(
            original_walk, restored_walk
        ):
            assert (level, path) == (rlevel, rpath)
            assert block.parameters == rblock.parameters

    @given(model=random_model())
    @settings(max_examples=30, deadline=None)
    def test_double_round_trip_is_fixed_point(self, model):
        once = model_to_spec(parse_spec(model_to_spec(model)))
        twice = model_to_spec(parse_spec(once))
        assert once == twice
