"""Fuzz/robustness properties: malformed input must fail *cleanly*.

Every externally-facing parser and estimator must raise a
:class:`~repro.errors.RascadError` subclass on bad input — never an
uncontrolled TypeError/KeyError/ValueError crash — because the CLI's
error handling relies on that contract.
"""

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.database import PartsDatabase
from repro.errors import RascadError
from repro.spec import load_spec, parse_spec
from repro.validation import OutageEvent, estimate_from_log

json_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-10**9, max_value=10**9),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=20),
)
json_values = st.recursive(
    json_scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(st.text(max_size=10), children, max_size=4),
    ),
    max_leaves=12,
)


class TestSpecParserRobustness:
    @given(payload=json_values)
    @settings(max_examples=200, deadline=None)
    def test_arbitrary_json_never_crashes_uncontrolled(self, payload):
        try:
            model = parse_spec(payload) if isinstance(payload, dict) else None
            if model is None:
                return
            # If it parsed, it must be a solvable model.
            from repro.core import translate

            translate(model)
        except RascadError:
            pass  # clean rejection is the contract

    @given(text=st.text(max_size=60))
    @settings(max_examples=150, deadline=None)
    def test_arbitrary_text_never_crashes_uncontrolled(self, text):
        try:
            load_spec("{" + text)  # force JSON-string interpretation
        except RascadError:
            pass

    @given(blocks=st.lists(
        st.dictionaries(st.text(max_size=12), json_scalars, max_size=5),
        min_size=1, max_size=3,
    ))
    @settings(max_examples=150, deadline=None)
    def test_random_block_dicts_rejected_cleanly(self, blocks):
        spec = {"diagram": {"name": "d", "blocks": blocks}}
        try:
            parse_spec(spec)
        except RascadError:
            pass


class TestDatabaseRobustness:
    @given(text=st.text(max_size=80))
    @settings(max_examples=100, deadline=None)
    def test_arbitrary_database_json_rejected_cleanly(self, text):
        try:
            PartsDatabase.from_json(text)
        except RascadError:
            pass

    @given(payload=st.lists(json_values, max_size=4))
    @settings(max_examples=100, deadline=None)
    def test_arbitrary_record_lists_rejected_cleanly(self, payload):
        try:
            PartsDatabase.from_json(json.dumps(payload))
        except RascadError:
            pass


class TestEstimatorRobustness:
    @given(
        starts=st.lists(
            st.floats(min_value=0.0, max_value=1e4), min_size=0, max_size=8
        ),
        durations=st.lists(
            st.floats(min_value=1e-3, max_value=100.0),
            min_size=0, max_size=8,
        ),
        window=st.floats(min_value=1.0, max_value=2e4),
    )
    @settings(max_examples=150, deadline=None)
    def test_estimator_result_always_sane_or_clean_error(
        self, starts, durations, window
    ):
        events = [
            OutageEvent(start, duration)
            for start, duration in zip(starts, durations)
        ]
        try:
            estimate = estimate_from_log(events, window)
        except RascadError:
            return
        assert 0.0 <= estimate.availability <= 1.0
        assert estimate.availability_low <= estimate.availability_high
        assert estimate.total_downtime_hours >= 0.0
