"""Property-based tests for the Markov engine (hypothesis)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.markov import (
    MarkovChain,
    interval_availability,
    solve_steady_state,
    solve_steady_state_gth,
    steady_state_availability,
    transient_probabilities,
)

rates = st.floats(
    min_value=1e-6, max_value=1e3, allow_nan=False, allow_infinity=False
)


@st.composite
def random_irreducible_chain(draw, max_states=6):
    """A random strongly connected reward-annotated CTMC.

    Builds a Hamiltonian cycle (guaranteeing irreducibility) plus a
    random set of extra arcs.
    """
    n = draw(st.integers(min_value=2, max_value=max_states))
    rewards = draw(
        st.lists(
            st.sampled_from([0.0, 1.0]), min_size=n, max_size=n
        ).filter(lambda r: any(x > 0 for x in r))
    )
    chain = MarkovChain("random")
    for i in range(n):
        chain.add_state(f"S{i}", reward=rewards[i])
    for i in range(n):
        chain.add_transition(f"S{i}", f"S{(i + 1) % n}", draw(rates))
    extra = draw(st.integers(min_value=0, max_value=n * (n - 1) // 2))
    for _ in range(extra):
        i = draw(st.integers(min_value=0, max_value=n - 1))
        j = draw(st.integers(min_value=0, max_value=n - 1))
        if i != j:
            chain.add_transition(f"S{i}", f"S{j}", draw(rates))
    return chain


class TestSteadyStateProperties:
    @given(chain=random_irreducible_chain())
    @settings(max_examples=60, deadline=None)
    def test_is_probability_distribution(self, chain):
        pi = solve_steady_state(chain)
        assert pi.sum() == pytest.approx(1.0, abs=1e-9)
        assert (pi >= -1e-12).all()

    @given(chain=random_irreducible_chain())
    @settings(max_examples=60, deadline=None)
    def test_satisfies_balance_equations(self, chain):
        q = chain.generator_matrix()
        pi = solve_steady_state(chain)
        residual = np.abs(pi @ q).max()
        scale = max(1.0, np.abs(q).max())
        assert residual < 1e-8 * scale

    @given(chain=random_irreducible_chain())
    @settings(max_examples=40, deadline=None)
    def test_gth_agrees_with_direct(self, chain):
        direct = solve_steady_state(chain)
        gth = solve_steady_state_gth(chain)
        np.testing.assert_allclose(direct, gth, atol=1e-8)

    @given(chain=random_irreducible_chain(), factor=st.floats(0.1, 10.0))
    @settings(max_examples=40, deadline=None)
    def test_time_rescaling_invariance(self, chain, factor):
        # Multiplying every rate by a constant cannot change pi.
        original = solve_steady_state(chain)
        scaled = solve_steady_state(chain.scaled(factor))
        np.testing.assert_allclose(original, scaled, atol=1e-8)


class TestTransientProperties:
    @given(chain=random_irreducible_chain(), t=st.floats(0.0, 50.0))
    @settings(max_examples=50, deadline=None)
    def test_remains_distribution(self, chain, t):
        p = transient_probabilities(chain, t)
        assert p.sum() == pytest.approx(1.0, abs=1e-7)
        assert (p >= -1e-12).all()

    @given(chain=random_irreducible_chain(), t=st.floats(0.01, 20.0))
    @settings(max_examples=30, deadline=None)
    def test_chapman_kolmogorov(self, chain, t):
        # p(2t) must equal evolving p(t) for another t.
        p_t = transient_probabilities(chain, t)
        p_2t = transient_probabilities(chain, 2 * t)
        p_t_t = transient_probabilities(chain, t, p0=p_t)
        np.testing.assert_allclose(p_2t, p_t_t, atol=1e-7)

    @given(chain=random_irreducible_chain(), t=st.floats(0.1, 30.0))
    @settings(max_examples=30, deadline=None)
    def test_interval_availability_in_unit_interval(self, chain, t):
        value = interval_availability(chain, t)
        assert -1e-9 <= value <= 1.0 + 1e-9

    @given(chain=random_irreducible_chain())
    @settings(max_examples=30, deadline=None)
    def test_availability_bounded(self, chain):
        value = steady_state_availability(chain)
        assert -1e-12 <= value <= 1.0 + 1e-12
