"""Property-based tests for the RBD engine (hypothesis)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.rbd import KofN, Leaf, Parallel, Series, k_of_n, parallel, series

probabilities = st.floats(min_value=0.0, max_value=1.0)
prob_lists = st.lists(probabilities, min_size=1, max_size=8)


class TestCombinatorBounds:
    @given(ps=prob_lists)
    @settings(max_examples=100)
    def test_series_below_weakest_link(self, ps):
        value = series(*ps).availability()
        assert value <= min(ps) + 1e-12
        assert value >= -1e-12

    @given(ps=prob_lists)
    @settings(max_examples=100)
    def test_parallel_above_strongest_link(self, ps):
        value = parallel(*ps).availability()
        assert value >= max(ps) - 1e-12
        assert value <= 1.0 + 1e-12

    @given(ps=prob_lists, data=st.data())
    @settings(max_examples=100)
    def test_k_of_n_between_series_and_parallel(self, ps, data):
        k = data.draw(st.integers(min_value=1, max_value=len(ps)))
        value = k_of_n(k, *ps).availability()
        assert series(*ps).availability() - 1e-12 <= value
        assert value <= parallel(*ps).availability() + 1e-12

    @given(ps=prob_lists, data=st.data())
    @settings(max_examples=100)
    def test_k_of_n_monotone_in_k(self, ps, data):
        k = data.draw(st.integers(min_value=1, max_value=len(ps)))
        value_k = k_of_n(k, *ps).availability()
        if k < len(ps):
            value_k1 = k_of_n(k + 1, *ps).availability()
            assert value_k1 <= value_k + 1e-12


class TestStructuralIdentities:
    @given(ps=prob_lists)
    @settings(max_examples=100)
    def test_series_is_n_of_n(self, ps):
        assert series(*ps).availability() == pytest.approx(
            k_of_n(len(ps), *ps).availability(), abs=1e-12
        )

    @given(ps=prob_lists)
    @settings(max_examples=100)
    def test_parallel_is_1_of_n(self, ps):
        assert parallel(*ps).availability() == pytest.approx(
            k_of_n(1, *ps).availability(), abs=1e-12
        )

    @given(ps=prob_lists)
    @settings(max_examples=100)
    def test_series_order_invariance(self, ps):
        forward = series(*ps).availability()
        backward = series(*reversed(ps)).availability()
        assert forward == pytest.approx(backward, abs=1e-12)

    @given(p=probabilities, q=probabilities)
    @settings(max_examples=100)
    def test_de_morgan_duality(self, p, q):
        # parallel(p, q) = 1 - series(1-p, 1-q) on unavailabilities.
        lhs = parallel(p, q).availability()
        rhs = 1.0 - series(1.0 - p, 1.0 - q).availability()
        assert lhs == pytest.approx(rhs, abs=1e-12)

    @given(ps=prob_lists, data=st.data())
    @settings(max_examples=50)
    def test_monotone_in_component_improvement(self, ps, data):
        # Improving any one component never hurts the k-of-n system.
        k = data.draw(st.integers(min_value=1, max_value=len(ps)))
        index = data.draw(st.integers(min_value=0, max_value=len(ps) - 1))
        improved = list(ps)
        improved[index] = min(1.0, improved[index] + 0.1)
        before = k_of_n(k, *ps).availability()
        after = k_of_n(k, *improved).availability()
        assert after >= before - 1e-12


class TestNetworkAgainstCombinators:
    @given(ps=st.lists(probabilities, min_size=2, max_size=5))
    @settings(max_examples=50, deadline=None)
    def test_chain_network_equals_series(self, ps):
        from repro.rbd import NetworkRBD

        net = NetworkRBD("n0", f"n{len(ps)}")
        for i, p in enumerate(ps):
            net.add_component(f"n{i}", f"n{i + 1}", p)
        assert net.availability() == pytest.approx(
            series(*ps).availability(), abs=1e-9
        )

    @given(p1=probabilities, p2=probabilities)
    @settings(max_examples=50, deadline=None)
    def test_diamond_network_equals_parallel_of_series(self, p1, p2):
        from repro.rbd import NetworkRBD

        net = NetworkRBD("s", "t")
        net.add_component("s", "a", p1)
        net.add_component("a", "t", p2)
        net.add_component("s", "b", p2)
        net.add_component("b", "t", p1)
        expected = parallel(
            series(p1, p2), series(p2, p1)
        ).availability()
        assert net.availability() == pytest.approx(expected, abs=1e-9)
