"""Property-based cross-validation: generator vs life-cycle simulator.

For randomized engineering parameters, the analytic availability of the
generated chain must fall inside the Monte Carlo confidence interval of
the matrix-free life-cycle simulator.  ``derandomize=True`` keeps the
sampled parameter sets fixed across runs of the same codebase — but
hypothesis also seeds generation with constants scraped from imported
modules, so the sampled set *does* shift as the repository grows.  A
bare 99 % interval would then fail ~1 % of examples sooner or later;
the assertion therefore widens the interval by its own half-width
(an effective ~5 sigma band), which keeps the cross-validation sharp
while making a statistical miss astronomically unlikely.
"""

import pytest
from hypothesis import HealthCheck, example, given, settings, strategies as st

from repro.core import BlockParameters, GlobalParameters, generate_block_chain
from repro.markov import steady_state_availability
from repro.validation import simulate_block_availability


@st.composite
def stressed_parameters(draw):
    """Low-reliability parameter sets so MC has signal to compare."""
    quantity = draw(st.integers(min_value=1, max_value=4))
    min_required = draw(st.integers(min_value=1, max_value=quantity))
    return BlockParameters(
        name="unit",
        quantity=quantity,
        min_required=min_required,
        mtbf_hours=draw(st.floats(min_value=500.0, max_value=5_000.0)),
        transient_fit=draw(st.floats(min_value=0.0, max_value=5e5)),
        p_latent_fault=draw(st.floats(min_value=0.0, max_value=0.3)),
        mttdlf_hours=draw(st.floats(min_value=4.0, max_value=100.0)),
        p_spf=draw(st.floats(min_value=0.0, max_value=0.1)),
        p_correct_diagnosis=draw(st.floats(min_value=0.7, max_value=1.0)),
        recovery=draw(st.sampled_from(["transparent", "nontransparent"])),
        repair=draw(st.sampled_from(["transparent", "nontransparent"])),
        service_response_hours=draw(st.floats(min_value=0.0, max_value=24.0)),
    )


@given(parameters=stressed_parameters())
@settings(
    max_examples=10,
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)
@example(
    # A discovered marginal miss: the analytic value fell 1.5e-5 below
    # the bare 99 % interval of the 60-replication run.
    parameters=BlockParameters(
        name="unit", quantity=3, min_required=2, mtbf_hours=671.0,
        transient_fit=1180.0, p_latent_fault=0.234375, mttdlf_hours=58.0,
        p_spf=0.0, p_correct_diagnosis=0.75,
        recovery="transparent", repair="transparent",
        service_response_hours=2.0,
    ),
)
def test_simulator_confirms_generated_chain(parameters):
    g = GlobalParameters()
    chain = generate_block_chain(parameters, g)
    analytic = steady_state_availability(chain)
    simulated = simulate_block_availability(
        parameters, g,
        horizon=30_000.0, replications=60, seed=17, confidence=0.99,
    )
    slack = (simulated.high - simulated.low) / 2.0
    assert (
        simulated.low - slack <= analytic <= simulated.high + slack
    ), (
        f"analytic {analytic:.6f} outside "
        f"[{simulated.low:.6f}, {simulated.high:.6f}] +/- {slack:.6f} "
        f"for {parameters}"
    )
