"""Property-based tests: JSON metrics -> Prometheus exposition.

The invariant ``GET /metrics?format=prometheus`` promises: every
numeric leaf of the JSON metrics document becomes exactly one sample
whose value parses back to the identical float, under a valid metric
name — whatever the route names, counter keys, or histogram contents
look like.
"""

import math
import re

from hypothesis import given, settings, strategies as st

from repro.obs.histogram import Histogram
from repro.service.app import (
    escape_label_value,
    format_metric_value,
    metric_name,
    render_prometheus,
)

#: A full metric name as the exposition format defines it.
VALID_METRIC_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")

#: One sample line: ``name{labels} value`` or ``name value``.
SAMPLE_LINE = re.compile(r"^([^\s{]+)(\{.*\})? (\S+)$")

finite_floats = st.floats(
    allow_nan=False, allow_infinity=False, width=64
)
metric_keys = st.text(
    alphabet=st.characters(
        codec="utf-8", exclude_categories=("Cs",)
    ),
    min_size=1, max_size=20,
)


@st.composite
def histogram_summaries(draw):
    bounds = sorted(draw(st.sets(
        st.floats(
            min_value=1e-6, max_value=1e6,
            allow_nan=False, allow_infinity=False,
        ),
        min_size=1, max_size=6,
    )))
    histogram = Histogram(bounds)
    for value in draw(st.lists(
        st.floats(min_value=0.0, max_value=2e6,
                  allow_nan=False, allow_infinity=False),
        max_size=20,
    )):
        histogram.observe(value)
    return histogram.to_dict()


@st.composite
def metrics_payloads(draw):
    return {
        "engine": {
            "system_solves": draw(st.integers(0, 10**9)),
            "busy_seconds": draw(finite_floats),
            "counters": draw(st.dictionaries(
                metric_keys, st.integers(0, 10**9), max_size=4
            )),
            "gauges": draw(st.dictionaries(
                metric_keys, finite_floats, max_size=4
            )),
            "stage_seconds": draw(st.dictionaries(
                metric_keys, finite_floats, max_size=4
            )),
            "route_counts": draw(st.dictionaries(
                metric_keys, st.integers(0, 10**9), max_size=4
            )),
            "latency": draw(st.dictionaries(
                metric_keys, histogram_summaries(), max_size=3
            )),
        },
        "derived": draw(st.dictionaries(
            metric_keys, finite_floats, max_size=4
        )),
        "cache": draw(st.dictionaries(
            metric_keys, finite_floats, max_size=4
        )),
        "service": draw(st.dictionaries(
            metric_keys, finite_floats, max_size=4
        )),
    }


def numeric_leaves(payload):
    """Every numeric value the renderer promises to emit, as floats."""
    leaves = []

    def walk(node):
        if isinstance(node, dict):
            for value in node.values():
                walk(value)
        elif isinstance(node, bool):
            pass
        elif isinstance(node, (int, float)):
            leaves.append(float(node))

    walk(payload)
    return leaves


def parse_samples(text):
    """``(name, value)`` pairs from rendered exposition text."""
    samples = []
    # The exposition format is \n-delimited; \r may legally appear
    # inside quoted label values, so don't use splitlines() here.
    for line in text.split("\n"):
        if not line or line.startswith("#"):
            continue
        match = SAMPLE_LINE.match(line)
        assert match is not None, f"unparseable sample line: {line!r}"
        samples.append((match.group(1), float(match.group(3))))
    return samples


@given(payload=metrics_payloads())
@settings(max_examples=60, deadline=None)
def test_every_numeric_leaf_round_trips(payload):
    samples = parse_samples(render_prometheus(payload))
    for name, _ in samples:
        assert VALID_METRIC_NAME.match(name), name
    # One sample per numeric leaf, values exactly preserved.
    assert sorted(value for _, value in samples) == sorted(
        numeric_leaves(payload)
    )


@given(value=st.one_of(
    finite_floats,
    st.integers(-10**15, 10**15),
    st.just(float("nan")),
    st.just(float("inf")),
    st.just(float("-inf")),
))
def test_format_metric_value_parses_back_identically(value):
    parsed = float(format_metric_value(value))
    if math.isnan(float(value)):
        assert math.isnan(parsed)
    else:
        assert parsed == float(value)


@given(value=st.text(max_size=60))
def test_label_escaping_round_trips(value):
    escaped = escape_label_value(value)
    assert "\n" not in escaped
    # Standard exposition unescape: the three escapes, in one pass.
    unescaped = re.sub(
        r"\\(.)",
        lambda m: {"n": "\n", '"': '"', "\\": "\\"}.get(
            m.group(1), m.group(0)
        ),
        escaped,
    )
    assert unescaped == value


@given(name=st.text(max_size=40))
def test_metric_name_always_yields_a_valid_name(name):
    assert VALID_METRIC_NAME.match(metric_name(name))
