"""Property-based tests for the numerical kernel layer (hypothesis).

Two invariants over random ergodic generators whose rates span six
orders of magnitude:

* every registered steady-state backend agrees on the stationary
  distribution within tolerance, and
* dense and sparse solve paths produce digest-identical
  :class:`~repro.core.ChainSolve`-style results through the engine's
  block cache (digests over values quantised to a shared absolute
  precision, since bit-identity across LAPACK and SuperLU is not
  promised — measured cross-backend differences sit below 1e-12).
"""

import hashlib
import json

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.engine import Engine
from repro.gmb import MarkovBuilder
from repro.num import SolverOptions, backend_names, solve_steady

MIN_STATES = 3
MAX_STATES = 40

#: Backends that must solve every ergodic generator, however stiff.
DIRECT_BACKENDS = ("dense-direct", "gth", "sparse-direct")

#: Six orders of magnitude, as the issue prescribes.
rates = st.floats(min_value=1e-3, max_value=1e3)

#: A milder span for the iteration-budgeted backends, whose error
#: bound degrades as the spectral gap closes (see the second property).
moderate_rates = st.floats(min_value=0.1, max_value=10.0)


@st.composite
def ergodic_generators(draw, rate_strategy=rates):
    """A random irreducible generator matrix.

    A ring backbone guarantees strong connectivity; extra random arcs
    on top make the sparsity pattern irregular.
    """
    n = draw(st.integers(min_value=MIN_STATES, max_value=MAX_STATES))
    q = np.zeros((n, n))
    for i in range(n):
        q[i, (i + 1) % n] = draw(rate_strategy)
    n_extra = draw(st.integers(min_value=0, max_value=2 * n))
    for _ in range(n_extra):
        src = draw(st.integers(min_value=0, max_value=n - 1))
        dst = draw(st.integers(min_value=0, max_value=n - 1))
        if src != dst:
            q[src, dst] = draw(rate_strategy)
    np.fill_diagonal(q, 0.0)
    np.fill_diagonal(q, -q.sum(axis=1))
    return q


@st.composite
def ergodic_chains(draw):
    """A random irreducible repairable chain built through the builder."""
    n = draw(st.integers(min_value=MIN_STATES, max_value=12))
    builder = MarkovBuilder("prop")
    for i in range(n - 1):
        builder.up(f"S{i}")
    builder.down(f"S{n - 1}")
    for i in range(n):
        builder.arc(f"S{i}", f"S{(i + 1) % n}", draw(rates))
    n_extra = draw(st.integers(min_value=0, max_value=n))
    for _ in range(n_extra):
        src = draw(st.integers(min_value=0, max_value=n - 1))
        dst = draw(st.integers(min_value=0, max_value=n - 1))
        if src != dst:
            builder.arc(f"S{src}", f"S{dst}", draw(rates))
    return builder.build()


def _solve_digest(pi):
    """Digest of a cached chain solve, quantised at 1e-9 absolute.

    Probabilities live in [0, 1] and measured dense-vs-sparse
    differences stay below 1e-12, so a 1e-9 grid makes the digest
    stable across backends while still pinning nine decimal places.
    """
    rounded = {
        name: round(value, 9) for name, value in sorted(pi.items())
    }
    payload = json.dumps(rounded, sort_keys=True).encode()
    return hashlib.sha256(payload).hexdigest()


class TestBackendsAgreeOnRandomGenerators:
    @given(q=ergodic_generators())
    @settings(max_examples=20, deadline=None, derandomize=True)
    def test_direct_backends_agree_across_six_orders(self, q):
        """LAPACK, GTH and SuperLU agree on arbitrarily stiff inputs.

        Rates span six orders of magnitude; the direct backends have
        no iteration budget, so they must solve every ergodic
        generator and agree with the subtraction-free GTH reference.
        """
        reference = solve_steady(q, SolverOptions(steady_method="gth"))
        for name in DIRECT_BACKENDS:
            pi = solve_steady(q, SolverOptions(steady_method=name))
            np.testing.assert_allclose(
                pi,
                reference,
                atol=1e-6,
                rtol=1e-6,
                err_msg=f"backend {name} disagrees with gth",
            )
            assert pi.sum() == pytest.approx(1.0)
            assert (pi >= 0.0).all()

    @given(q=ergodic_generators(rate_strategy=moderate_rates))
    @settings(max_examples=15, deadline=None, derandomize=True)
    def test_all_registered_backends_agree(self, q):
        """Every registered backend — iterative ones included — agrees.

        The iterative backends (uniformized power iteration, GMRES)
        carry bounded iteration budgets, so their property runs on
        moderately stiff generators where convergence is guaranteed;
        the direct backends are additionally covered across the full
        six-order span above.
        """
        reference = solve_steady(q, SolverOptions(steady_method="gth"))
        for name in backend_names():
            pi = solve_steady(q, SolverOptions(steady_method=name))
            np.testing.assert_allclose(
                pi,
                reference,
                atol=1e-6,
                rtol=1e-6,
                err_msg=f"backend {name} disagrees with gth",
            )
            assert pi.sum() == pytest.approx(1.0)
            assert (pi >= 0.0).all()


class TestRepresentationsDigestIdentical:
    @given(chain=ergodic_chains())
    @settings(max_examples=20, deadline=None, derandomize=True)
    def test_dense_and_sparse_solves_digest_identical(self, chain):
        engine = Engine(jobs=1, cache=True)
        dense = engine.solve_chain(
            chain,
            SolverOptions(
                steady_method="dense-direct", representation="dense"
            ),
        )
        sparse = engine.solve_chain(
            chain,
            SolverOptions(
                steady_method="sparse-direct", representation="sparse"
            ),
        )
        assert _solve_digest(dense) == _solve_digest(sparse)
        # A second solve with the same options comes from the cache and
        # must be the very same payload.
        again = engine.solve_chain(
            chain,
            SolverOptions(
                steady_method="dense-direct", representation="dense"
            ),
        )
        assert _solve_digest(again) == _solve_digest(dense)
        assert engine.stats.snapshot().block_cache_hits >= 1
