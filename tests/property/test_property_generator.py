"""Property-based tests for the MG chain generator (hypothesis).

These encode the invariants every generated availability model must
satisfy, over the whole engineering-parameter space.
"""

import pytest
from hypothesis import assume, given, settings, strategies as st

from repro.core import (
    BlockParameters,
    GlobalParameters,
    classify_model_type,
    generate_block_chain,
)
from repro.markov import (
    failure_frequency,
    recovery_frequency,
    solve_steady_state,
    steady_state_availability,
)


@st.composite
def block_parameters(draw):
    quantity = draw(st.integers(min_value=1, max_value=6))
    min_required = draw(st.integers(min_value=1, max_value=quantity))
    return BlockParameters(
        name="unit",
        quantity=quantity,
        min_required=min_required,
        mtbf_hours=draw(st.floats(min_value=100.0, max_value=1e7)),
        transient_fit=draw(st.floats(min_value=0.0, max_value=1e6)),
        diagnosis_minutes=draw(st.floats(min_value=1.0, max_value=240.0)),
        corrective_minutes=draw(st.floats(min_value=1.0, max_value=240.0)),
        verification_minutes=draw(st.floats(min_value=0.0, max_value=240.0)),
        service_response_hours=draw(st.floats(min_value=0.0, max_value=72.0)),
        p_correct_diagnosis=draw(st.floats(min_value=0.5, max_value=1.0)),
        p_latent_fault=draw(st.floats(min_value=0.0, max_value=0.5)),
        mttdlf_hours=draw(st.floats(min_value=1.0, max_value=1000.0)),
        recovery=draw(st.sampled_from(["transparent", "nontransparent"])),
        ar_time_minutes=draw(st.floats(min_value=0.5, max_value=120.0)),
        p_spf=draw(st.floats(min_value=0.0, max_value=0.3)),
        spf_recovery_minutes=draw(st.floats(min_value=1.0, max_value=480.0)),
        repair=draw(st.sampled_from(["transparent", "nontransparent"])),
        reintegration_minutes=draw(st.floats(min_value=1.0, max_value=120.0)),
    )


@st.composite
def global_parameters(draw):
    return GlobalParameters(
        reboot_minutes=draw(st.floats(min_value=1.0, max_value=120.0)),
        mttm_hours=draw(st.floats(min_value=0.0, max_value=336.0)),
        mttrfid_hours=draw(st.floats(min_value=0.5, max_value=72.0)),
    )


class TestGeneratedChainInvariants:
    @given(p=block_parameters(), g=global_parameters())
    @settings(max_examples=150, deadline=None)
    def test_chain_is_well_formed(self, p, g):
        chain = generate_block_chain(p, g)
        chain.validate()
        assert "Ok" in chain
        assert chain.state("Ok").is_up

    @given(p=block_parameters(), g=global_parameters())
    @settings(max_examples=150, deadline=None)
    def test_availability_in_unit_interval(self, p, g):
        chain = generate_block_chain(p, g)
        value = steady_state_availability(chain)
        assert -1e-12 <= value <= 1.0 + 1e-12

    @given(p=block_parameters(), g=global_parameters())
    @settings(max_examples=100, deadline=None)
    def test_flow_balance_across_up_down_cut(self, p, g):
        chain = generate_block_chain(p, g)
        assume(chain.n_states > 1)
        assert failure_frequency(chain) == pytest.approx(
            recovery_frequency(chain), rel=1e-6, abs=1e-18
        )

    @given(p=block_parameters(), g=global_parameters())
    @settings(max_examples=100, deadline=None)
    def test_steady_state_is_distribution(self, p, g):
        chain = generate_block_chain(p, g)
        pi = solve_steady_state(chain)
        assert pi.sum() == pytest.approx(1.0, abs=1e-9)
        assert (pi >= -1e-12).all()

    @given(p=block_parameters(), g=global_parameters())
    @settings(max_examples=100, deadline=None)
    def test_model_type_consistent_with_state_inventory(self, p, g):
        chain = generate_block_chain(p, g)
        model_type = classify_model_type(p)
        names = set(chain.state_names)
        if model_type == 0:
            assert not any(name.startswith("PF") for name in names)
        else:
            assert f"PF{p.redundancy_depth + 1}" in names
            has_ar = any(name.startswith("AR") for name in names)
            if model_type in (1, 2):
                assert not has_ar
            has_reint = any(name.startswith("Reint") for name in names)
            assert has_reint == (model_type in (2, 4))

    @given(p=block_parameters(), g=global_parameters())
    @settings(max_examples=60, deadline=None)
    def test_better_mtbf_never_hurts(self, p, g):
        chain = generate_block_chain(p, g)
        improved = generate_block_chain(
            p.with_changes(mtbf_hours=p.mtbf_hours * 10.0), g
        )
        a_base = steady_state_availability(chain)
        a_improved = steady_state_availability(improved)
        assert a_improved >= a_base - 1e-9

    @given(p=block_parameters(), g=global_parameters())
    @settings(max_examples=60, deadline=None)
    def test_state_count_formula(self, p, g):
        # State count is bounded linearly in the redundancy depth:
        # every level adds at most 7 states (Latent/AR/SPF/PF/TF/SE/Reint).
        chain = generate_block_chain(p, g)
        depth = p.redundancy_depth
        assert chain.n_states <= 7 * (depth + 1) + 4
