"""Property-based tests for the telemetry estimator (hypothesis).

The load-bearing invariant of the streaming estimator is that its
fitted rates are a pure function of the event *set*, not of the order
events arrive or the tree shape merges take.  These properties drive
randomized per-unit event streams through permuted interleavings and
arbitrary merge trees and require bit-identical state and fit digests.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.telemetry import FieldEvent, RateEstimator

PARTS = ("Sys/Disk", "Sys/CPU", "Sys/PSU")


@st.composite
def unit_streams(draw, max_units=4, max_events=6):
    """A dict unit -> monotone event list, the legal per-unit order."""
    n_units = draw(st.integers(min_value=1, max_value=max_units))
    streams = {}
    for u in range(n_units):
        unit = f"u#{u}"
        part = draw(st.sampled_from(PARTS))
        n_events = draw(st.integers(min_value=1, max_value=max_events))
        # Strictly increasing integer-hour timestamps keep the stream
        # monotone per unit without floating-point ties.
        times = sorted(
            draw(
                st.sets(
                    st.integers(min_value=1, max_value=5_000),
                    min_size=n_events,
                    max_size=n_events,
                )
            )
        )
        events, down = [], False
        for t in times:
            kind = "repair" if down else draw(
                st.sampled_from(["failure", "latent_detect"])
            )
            down = kind == "failure"
            events.append(FieldEvent(part, unit, kind, float(t)))
        streams[unit] = events
    return streams


def interleave(streams, order_seed):
    """Deterministically interleave unit streams, preserving each
    unit's internal order (the only order the estimator requires)."""
    cursors = {unit: 0 for unit in streams}
    merged = []
    step = 0
    while any(cursors[u] < len(streams[u]) for u in streams):
        live = sorted(
            u for u in streams if cursors[u] < len(streams[u])
        )
        unit = live[(order_seed + step) % len(live)]
        merged.append(streams[unit][cursors[unit]])
        cursors[unit] += 1
        step += 1
    return merged


def ingest(events):
    estimator = RateEstimator(window_hours=168.0)
    estimator.ingest_many(events)
    return estimator


class TestIngestOrderInvariance:
    @settings(max_examples=60, deadline=None, derandomize=True)
    @given(streams=unit_streams(), seeds=st.tuples(
        st.integers(min_value=0, max_value=10_000),
        st.integers(min_value=0, max_value=10_000),
    ))
    def test_any_legal_interleaving_is_bit_identical(self, streams, seeds):
        first = ingest(interleave(streams, seeds[0]))
        second = ingest(interleave(streams, seeds[1]))
        assert first.state_digest() == second.state_digest()
        assert first.fit().digest() == second.fit().digest()

    @settings(max_examples=40, deadline=None, derandomize=True)
    @given(streams=unit_streams())
    def test_replay_of_the_whole_stream_is_a_no_op(self, streams):
        events = interleave(streams, 0)
        estimator = ingest(events)
        digest = estimator.state_digest()
        accepted, duplicates = estimator.ingest_many(events)
        assert accepted == 0
        assert duplicates == len(events)
        assert estimator.state_digest() == digest


class TestMergeAlgebra:
    @settings(max_examples=60, deadline=None, derandomize=True)
    @given(streams=unit_streams(max_units=5))
    def test_merge_tree_shape_is_irrelevant(self, streams):
        shards = [ingest(events) for events in streams.values()]
        # Left fold, right fold, and the single-pass reference must
        # all land on the same state.
        left = shards[0]
        for shard in shards[1:]:
            left = left.merge(shard)
        right = shards[-1]
        for shard in reversed(shards[:-1]):
            right = shard.merge(right)
        single = ingest(interleave(streams, 0))
        assert (
            left.state_digest()
            == right.state_digest()
            == single.state_digest()
        )
        assert left.fit().digest() == single.fit().digest()

    @settings(max_examples=40, deadline=None, derandomize=True)
    @given(streams=unit_streams(max_units=4), pivot=st.integers(
        min_value=0, max_value=3
    ))
    def test_merge_is_commutative_at_any_split(self, streams, pivot):
        units = sorted(streams)
        cut = min(pivot, len(units) - 1)
        head = {u: streams[u] for u in units[: cut + 1]}
        tail = {u: streams[u] for u in units[cut + 1 :]}
        if not tail:
            return
        a = ingest(interleave(head, 0))
        b = ingest(interleave(tail, 0))
        assert a.merge(b).state_digest() == b.merge(a).state_digest()

    @settings(max_examples=40, deadline=None, derandomize=True)
    @given(streams=unit_streams(max_units=3))
    def test_merged_state_survives_serialization(self, streams):
        shards = [ingest(events) for events in streams.values()]
        merged = shards[0]
        for shard in shards[1:]:
            merged = merged.merge(shard)
        restored = RateEstimator.from_dict(merged.to_dict())
        assert restored.state_digest() == merged.state_digest()
        assert restored.fit().digest() == merged.fit().digest()


class TestOverlapRefusal:
    @settings(max_examples=25, deadline=None, derandomize=True)
    @given(streams=unit_streams(max_units=2))
    def test_a_shard_never_merges_with_itself(self, streams):
        estimator = ingest(interleave(streams, 0))
        twin = ingest(interleave(streams, 0))
        with pytest.raises(ValueError):
            estimator.merge(twin)
