"""Property-based tests for the semi-Markov engine (hypothesis)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.markov import steady_state
from repro.semimarkov import (
    Deterministic,
    Erlang,
    Exponential,
    Lognormal,
    SemiMarkovProcess,
    Uniform,
    expand_to_ctmc,
    fit_phase_type,
    semi_markov_steady_state,
)

means = st.floats(min_value=0.01, max_value=1e4)
cv2s = st.floats(min_value=0.0, max_value=25.0)


@st.composite
def random_distribution(draw):
    kind = draw(st.sampled_from(
        ["exp", "det", "uniform", "erlang", "lognormal"]
    ))
    if kind == "exp":
        return Exponential.from_mean(draw(means))
    if kind == "det":
        return Deterministic(draw(means))
    if kind == "uniform":
        low = draw(st.floats(min_value=0.0, max_value=100.0))
        width = draw(st.floats(min_value=0.001, max_value=100.0))
        return Uniform(low, low + width)
    if kind == "erlang":
        return Erlang.from_mean(draw(means),
                                draw(st.integers(min_value=1, max_value=9)))
    return Lognormal.from_mean_cv(
        draw(means), draw(st.floats(min_value=0.05, max_value=3.0))
    )


@st.composite
def random_cyclic_smp(draw, max_states=5):
    """A ring-structured SMP with random extra branches (irreducible)."""
    n = draw(st.integers(min_value=2, max_value=max_states))
    rewards = draw(
        st.lists(st.sampled_from([0.0, 1.0]), min_size=n, max_size=n)
        .filter(lambda r: any(x > 0 for x in r))
    )
    process = SemiMarkovProcess("random")
    for i in range(n):
        process.add_state(f"S{i}", reward=rewards[i])
    for i in range(n):
        # Ring arc guarantees irreducibility; optionally split with a
        # second branch to a random state.
        split = draw(st.booleans())
        if split and n > 2:
            other = draw(st.integers(min_value=0, max_value=n - 1))
            if other != (i + 1) % n and other != i:
                p = draw(st.floats(min_value=0.05, max_value=0.95))
                process.add_transition(
                    f"S{i}", f"S{(i + 1) % n}", p,
                    draw(random_distribution()),
                )
                process.add_transition(
                    f"S{i}", f"S{other}", 1.0 - p,
                    draw(random_distribution()),
                )
                continue
        process.add_transition(
            f"S{i}", f"S{(i + 1) % n}", 1.0, draw(random_distribution())
        )
    return process


class TestSteadyStateProperties:
    @given(process=random_cyclic_smp())
    @settings(max_examples=60, deadline=None)
    def test_fractions_form_distribution(self, process):
        fractions = semi_markov_steady_state(process)
        assert sum(fractions.values()) == pytest.approx(1.0, abs=1e-9)
        assert all(value >= -1e-12 for value in fractions.values())

    @given(process=random_cyclic_smp())
    @settings(max_examples=40, deadline=None)
    def test_expansion_matches_ratio_formula(self, process):
        # PH expansion preserves means, so the expanded CTMC's
        # aggregated steady state must equal the ratio formula exactly.
        chain = expand_to_ctmc(process, max_stages=8)
        pi = steady_state(chain)
        aggregated = {name: 0.0 for name in process.state_names}
        for state in chain:
            aggregated[str(state.meta["smp_state"])] += pi[state.name]
        exact = semi_markov_steady_state(process)
        for name in process.state_names:
            assert aggregated[name] == pytest.approx(
                exact[name], rel=1e-7, abs=1e-12
            )


class TestPhaseTypeProperties:
    @given(mean=means, cv2=cv2s)
    @settings(max_examples=120, deadline=None)
    def test_mean_always_matched(self, mean, cv2):
        fit = fit_phase_type(mean, cv2, max_stages=64)
        assert fit.mean() == pytest.approx(mean, rel=1e-9)

    @given(mean=means,
           cv2=st.floats(min_value=1.0 / 64 + 1e-6, max_value=25.0))
    @settings(max_examples=120, deadline=None)
    def test_variance_matched_in_representable_range(self, mean, cv2):
        fit = fit_phase_type(mean, cv2, max_stages=64)
        assert fit.variance() == pytest.approx(
            cv2 * mean * mean, rel=1e-6
        )

    @given(mean=means, cv2=cv2s)
    @settings(max_examples=60, deadline=None)
    def test_probabilities_and_stage_counts_sane(self, mean, cv2):
        fit = fit_phase_type(mean, cv2, max_stages=64)
        total = sum(branch.probability for branch in fit.branches)
        assert total == pytest.approx(1.0, abs=1e-9)
        assert 1 <= fit.total_stages <= 2 * 64
