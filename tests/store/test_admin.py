"""Operational verbs: discovery, status, integrity check, backup."""

import sqlite3

import pytest

from repro.errors import StoreError
from repro.store import (
    Migration,
    Schema,
    SqliteStore,
    db_backup,
    db_check,
    db_status,
    default_backup_destination,
    discover_databases,
)

SCHEMA = Schema("t", [Migration(
    1, "kv table",
    "CREATE TABLE IF NOT EXISTS t (k TEXT PRIMARY KEY, v TEXT)",
)])


def make_store(path, rows=3):
    store = SqliteStore(path, SCHEMA)
    with store.transaction() as conn:
        for index in range(rows):
            conn.execute(
                "INSERT INTO t VALUES (?, ?)", (f"k{index}", "v")
            )
    return store


class TestDiscovery:
    def test_finds_only_existing_known_databases(self, tmp_path):
        make_store(tmp_path / "jobs.sqlite3")
        make_store(tmp_path / "studies" / "studies.sqlite3")
        found = discover_databases(tmp_path)
        assert [entry["name"] for entry in found] == ["jobs", "studies"]

    def test_empty_directory_finds_nothing(self, tmp_path):
        assert discover_databases(tmp_path) == []


class TestStatus:
    def test_reports_version_mode_and_counts(self, tmp_path):
        make_store(tmp_path / "t.sqlite3", rows=4)
        status = db_status(tmp_path / "t.sqlite3")
        assert status["user_version"] == 1
        assert status["journal_mode"] == "wal"
        assert status["tables"] == {"t": 4}
        assert status["size_bytes"] > 0

    def test_missing_database_raises(self, tmp_path):
        with pytest.raises(StoreError):
            db_status(tmp_path / "absent.sqlite3")


class TestCheck:
    def test_healthy_database_is_ok(self, tmp_path):
        make_store(tmp_path / "t.sqlite3")
        report = db_check(tmp_path / "t.sqlite3")
        assert report["ok"] is True
        assert report["messages"] == ["ok"]


class TestBackup:
    def test_backup_contains_identical_rows(self, tmp_path):
        make_store(tmp_path / "t.sqlite3", rows=5)
        destination = tmp_path / "copy.sqlite3"
        result = db_backup(tmp_path / "t.sqlite3", destination)
        assert result["size_bytes"] == destination.stat().st_size
        copy = sqlite3.connect(str(destination))
        try:
            count = copy.execute("SELECT COUNT(*) FROM t").fetchone()[0]
            version = copy.execute("PRAGMA user_version").fetchone()[0]
        finally:
            copy.close()
        assert count == 5
        assert version == 1
        assert db_check(destination)["ok"]

    def test_backup_while_writer_holds_connection(self, tmp_path):
        store = make_store(tmp_path / "t.sqlite3", rows=2)
        with store.connection() as conn:
            conn.execute("BEGIN")
            conn.execute("INSERT INTO t VALUES ('open', 'txn')")
            destination = tmp_path / "copy.sqlite3"
            db_backup(tmp_path / "t.sqlite3", destination)
            conn.commit()
        copy = sqlite3.connect(str(destination))
        try:
            count = copy.execute("SELECT COUNT(*) FROM t").fetchone()[0]
        finally:
            copy.close()
        assert count == 2  # snapshot excludes the uncommitted row

    def test_missing_source_raises_and_leaves_no_file(self, tmp_path):
        with pytest.raises(StoreError):
            db_backup(tmp_path / "absent.sqlite3", tmp_path / "out.sqlite3")
        assert not (tmp_path / "out.sqlite3").exists()

    def test_default_destination_naming(self, tmp_path):
        destination = default_backup_destination(tmp_path / "jobs.sqlite3")
        assert destination == tmp_path / "jobs.backup.sqlite3"
        elsewhere = default_backup_destination(
            tmp_path / "jobs.sqlite3", tmp_path / "backups"
        )
        assert elsewhere == tmp_path / "backups" / "jobs.backup.sqlite3"
