"""SIGKILL a writer mid-transaction against every store; reopen clean.

Each case spawns a subprocess that hammers one store's public write
API in a tight loop, kills it with SIGKILL once it has committed at
least one record, then reopens the database through the same store
class and asserts the three durability invariants:

* ``PRAGMA integrity_check`` says ``ok``;
* ``user_version`` is at the schema's current version (the kill
  cannot leave a half-migrated header);
* no partial rows — every committed record still satisfies the
  store's own consistency rules (JSON columns parse, cross-table
  references resolve, multi-row writes are all-or-nothing).
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.store import db_check

SRC = str(Path(__file__).resolve().parents[2] / "src")

#: Writer subprocesses; each prints ``ready`` after its first commit
#: and then loops until killed.  ``sys.argv[1]`` is the scratch dir.
WRITERS = {
    "jobs": """
import sys
from repro.jobs import JobSpec, JobStore
from repro.library import workgroup_model
from repro.spec import model_to_spec
store = JobStore(sys.argv[1] + "/jobs.sqlite3")
spec = model_to_spec(workgroup_model())
index = 0
while True:
    store.submit(JobSpec(
        kind="sweep",
        spec=spec,
        params={"field": "mtbf_hours", "values": [float(index)]},
    ))
    if index == 0:
        print("ready", flush=True)
    index += 1
""",
    "registry": """
import sys
from repro.registry.store import RegistryStore
store = RegistryStore(sys.argv[1] + "/registry.sqlite3")
store.upsert_model("crash", "crash fixture")
index = 0
while True:
    digest = f"{index:064d}"
    store.insert_version(
        "crash", digest, {"model": {"name": f"m{index}"}}, None, [], None
    )
    store.set_tag("crash", "prod", digest)
    if index == 0:
        print("ready", flush=True)
    index += 1
""",
    "cluster": """
import sys
from repro.cluster.coordinator import ShardStore
from repro.cluster.sharding import Shard, shard_id
store = ShardStore(sys.argv[1] + "/cluster.sqlite3")
index = 0
while True:
    digest = f"wl-{index:08d}"
    shards = [
        Shard(id=shard_id(digest, j * 10, j * 10 + 10),
              index=j, lo=j * 10, hi=j * 10 + 10)
        for j in range(4)
    ]
    store.plan(f"job-{index:08d}", shards)
    if index == 0:
        print("ready", flush=True)
    index += 1
""",
    "studies": """
import sys
from repro.studies.store import StudyStore
store = StudyStore(sys.argv[1] + "/studies")
index = 0
while True:
    study_id = f"study-{index:032d}"
    store.submit(study_id, {"name": f"s{index}", "variables": []})
    store.succeed(study_id, {"evaluated": index, "front": []})
    if index == 0:
        print("ready", flush=True)
    index += 1
""",
    "telemetry": """
import sys
from repro.telemetry.hub import TelemetryHub
hub = TelemetryHub(sys.argv[1] + "/telemetry")
index = 0
while True:
    hub.save()
    if index == 0:
        print("ready", flush=True)
    index += 1
""",
}


def run_writer_and_kill(tmp_path, name: str) -> None:
    env = dict(os.environ, PYTHONPATH=SRC)
    proc = subprocess.Popen(
        [sys.executable, "-c", WRITERS[name], str(tmp_path)],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
    )
    try:
        line = proc.stdout.readline()
        if line.strip() != b"ready":
            stderr = proc.stderr.read().decode()
            raise AssertionError(
                f"{name} writer never became ready: {stderr}"
            )
        time.sleep(0.25)  # land the kill somewhere mid-write
        assert proc.poll() is None, "writer died before the kill"
    finally:
        proc.kill()
        proc.wait()
        proc.stdout.close()
        proc.stderr.close()
    assert proc.returncode == -signal.SIGKILL


class TestCrashSafety:
    def test_jobs_store_survives_sigkill(self, tmp_path):
        from repro.jobs import JobStore
        from repro.jobs.store import JOBS_SCHEMA

        run_writer_and_kill(tmp_path, "jobs")
        store = JobStore(tmp_path / "jobs.sqlite3")
        records = store.list_jobs(limit=100_000)
        assert records, "at least the first commit must survive"
        for record in records:
            assert record.id.startswith("job-")
            assert record.spec.kind == "sweep"
        assert store.db.user_version() == JOBS_SCHEMA.version
        store.close()
        assert db_check(tmp_path / "jobs.sqlite3")["ok"]

    def test_registry_store_survives_sigkill(self, tmp_path):
        from repro.registry.store import REGISTRY_SCHEMA, RegistryStore

        run_writer_and_kill(tmp_path, "registry")
        store = RegistryStore(tmp_path / "registry.sqlite3")
        with store.db.connection() as conn:
            digests = {
                row["digest"]
                for row in conn.execute(
                    "SELECT digest FROM registry_versions"
                )
            }
            assert digests, "at least the first version must survive"
            for row in conn.execute(
                "SELECT spec FROM registry_versions"
            ):
                json.loads(row["spec"])
            for row in conn.execute(
                "SELECT digest FROM registry_tags "
                "UNION SELECT digest FROM registry_tag_history"
            ):
                # tags always follow their version's commit, so a tag
                # pointing at a missing digest would be a torn write
                assert row["digest"] in digests
        assert store.db.user_version() == REGISTRY_SCHEMA.version
        store.close()
        assert db_check(tmp_path / "registry.sqlite3")["ok"]

    def test_cluster_store_survives_sigkill(self, tmp_path):
        from repro.cluster.coordinator import CLUSTER_SCHEMA, ShardStore

        run_writer_and_kill(tmp_path, "cluster")
        store = ShardStore(str(tmp_path / "cluster.sqlite3"))
        with store.db.connection() as conn:
            rows = conn.execute(
                "SELECT job, COUNT(*) AS n FROM cluster_shards "
                "GROUP BY job"
            ).fetchall()
            assert rows, "at least the first plan must survive"
            for row in rows:
                # plan() writes a job's shards in one transaction —
                # a job has all four shards or none at all
                assert row["n"] == 4
        assert store.db.user_version() == CLUSTER_SCHEMA.version
        store.close()
        assert db_check(tmp_path / "cluster.sqlite3")["ok"]

    def test_studies_store_survives_sigkill(self, tmp_path):
        from repro.studies.store import (
            STUDIES_SCHEMA,
            STUDY_STATES,
            StudyStore,
        )

        run_writer_and_kill(tmp_path, "studies")
        store = StudyStore(tmp_path / "studies")
        ids = store.ids()
        assert ids, "at least the first submit must survive"
        for study_id in ids:
            record = store.get(study_id)  # JSON columns must parse
            assert record["state"] in STUDY_STATES
            if record["state"] == "succeeded":
                assert "evaluated" in record["result"]
        assert store.db.user_version() == STUDIES_SCHEMA.version
        store.close()
        assert db_check(tmp_path / "studies" / "studies.sqlite3")["ok"]

    def test_telemetry_store_survives_sigkill(self, tmp_path):
        from repro.telemetry.hub import TELEMETRY_SCHEMA, TelemetryHub

        run_writer_and_kill(tmp_path, "telemetry")
        hub = TelemetryHub(tmp_path / "telemetry")  # reload parses kv
        with hub.db.connection() as conn:
            rows = conn.execute(
                "SELECT value FROM telemetry_kv"
            ).fetchall()
            assert rows, "at least the first save must survive"
            for row in rows:
                json.loads(row["value"])
        assert hub.db.user_version() == TELEMETRY_SCHEMA.version
        hub.close()
        assert db_check(
            tmp_path / "telemetry" / "telemetry.sqlite3"
        )["ok"]
