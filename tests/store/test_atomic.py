"""Atomic replace writes and append-only JSONL."""

import json
import threading

import pytest

from repro.store import (
    JsonlAppender,
    atomic_write_bytes,
    atomic_write_json,
    atomic_write_text,
)


class TestAtomicWrite:
    def test_bytes_round_trip(self, tmp_path):
        target = tmp_path / "deep" / "file.bin"
        atomic_write_bytes(target, b"\x00payload")
        assert target.read_bytes() == b"\x00payload"

    def test_replace_leaves_no_temp_files(self, tmp_path):
        target = tmp_path / "file.txt"
        atomic_write_text(target, "one")
        atomic_write_text(target, "two")
        assert target.read_text() == "two"
        assert [p.name for p in tmp_path.iterdir()] == ["file.txt"]

    def test_json_is_sorted_and_deterministic(self, tmp_path):
        target = tmp_path / "doc.json"
        atomic_write_json(target, {"b": 1, "a": 2})
        assert target.read_text() == '{"a": 2, "b": 1}'

    def test_failure_keeps_old_content_and_cleans_temp(self, tmp_path):
        target = tmp_path / "doc.json"
        atomic_write_json(target, {"ok": True})
        with pytest.raises(TypeError):
            atomic_write_json(target, {"bad": object()})
        assert json.loads(target.read_text()) == {"ok": True}
        assert [p.name for p in tmp_path.iterdir()] == ["doc.json"]


class TestJsonlAppender:
    def test_appends_sorted_lines(self, tmp_path):
        target = tmp_path / "events.jsonl"
        with JsonlAppender(target) as appender:
            appender.append({"b": 1, "a": 0})
            appender.append({"n": 2})
        lines = target.read_text().splitlines()
        assert lines == ['{"a": 0, "b": 1}', '{"n": 2}']

    def test_creates_parent_directories_lazily(self, tmp_path):
        target = tmp_path / "traces" / "spans.jsonl"
        appender = JsonlAppender(target)
        assert not target.parent.exists()
        appender.append({"k": 1})
        appender.close()
        assert target.exists()

    def test_concurrent_appends_interleave_whole_lines(self, tmp_path):
        target = tmp_path / "events.jsonl"
        appender = JsonlAppender(target)

        def hammer(worker: int) -> None:
            for index in range(50):
                appender.append({"worker": worker, "index": index})

        threads = [
            threading.Thread(target=hammer, args=(w,)) for w in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        appender.close()
        lines = target.read_text().splitlines()
        assert len(lines) == 200
        for line in lines:
            document = json.loads(line)  # every line is complete JSON
            assert set(document) == {"worker", "index"}
