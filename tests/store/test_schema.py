"""user_version migrations: ordering, idempotence, upgrades, crashes."""

import sqlite3

import pytest

from repro.errors import StoreError
from repro.store import Migration, Schema, SqliteStore

V1 = Migration(
    1, "base table",
    "CREATE TABLE IF NOT EXISTS items (id TEXT PRIMARY KEY)",
)
V2 = Migration(
    2, "value column",
    "ALTER TABLE items ADD COLUMN value TEXT",
)


def columns(conn: sqlite3.Connection, table: str) -> list:
    return [row[1] for row in conn.execute(f"PRAGMA table_info({table})")]


class TestDeclaration:
    def test_empty_schema_is_rejected(self):
        with pytest.raises(StoreError):
            Schema("bad", [])

    def test_out_of_order_versions_are_rejected(self):
        with pytest.raises(StoreError):
            Schema("bad", [V1, Migration(3, "skips two", "SELECT 1")])

    def test_version_is_the_last_step(self):
        assert Schema("s", [V1, V2]).version == 2


class TestApply:
    def test_fresh_database_reaches_current_version(self, tmp_path):
        store = SqliteStore(tmp_path / "s.sqlite3", Schema("s", [V1, V2]))
        assert store.user_version() == 2
        with store.connection() as conn:
            assert columns(conn, "items") == ["id", "value"]

    def test_reopen_applies_nothing(self, tmp_path):
        schema = Schema("s", [V1, V2])
        SqliteStore(tmp_path / "s.sqlite3", schema)
        store = SqliteStore(tmp_path / "s.sqlite3", schema)
        with store.connection() as conn:
            assert schema.pending(conn) == []

    def test_old_file_gets_exactly_the_pending_suffix(self, tmp_path):
        path = tmp_path / "s.sqlite3"
        old = SqliteStore(path, Schema("s", [V1]))
        with old.transaction() as conn:
            conn.execute("INSERT INTO items (id) VALUES ('kept')")
        new = SqliteStore(path, Schema("s", [V1, V2]))
        assert new.user_version() == 2
        with new.connection() as conn:
            assert columns(conn, "items") == ["id", "value"]
            row = conn.execute("SELECT * FROM items").fetchone()
        assert row["id"] == "kept" and row["value"] is None

    def test_callable_migration_gets_the_connection(self, tmp_path):
        seen = []
        schema = Schema("s", [V1, Migration(2, "python step", seen.append)])
        SqliteStore(tmp_path / "s.sqlite3", schema)
        assert len(seen) == 1
        assert isinstance(seen[0], sqlite3.Connection)

    def test_newer_database_is_refused(self, tmp_path):
        path = tmp_path / "s.sqlite3"
        conn = sqlite3.connect(str(path))
        conn.execute("PRAGMA user_version = 9")
        conn.close()
        with pytest.raises(StoreError, match="newer"):
            SqliteStore(path, Schema("s", [V1]))

    def test_failing_migration_leaves_previous_version_intact(
        self, tmp_path
    ):
        path = tmp_path / "s.sqlite3"
        SqliteStore(path, Schema("s", [V1]))

        def explode(conn: sqlite3.Connection) -> None:
            conn.execute("ALTER TABLE items ADD COLUMN value TEXT")
            raise RuntimeError("crash mid-migration")

        with pytest.raises(RuntimeError):
            SqliteStore(
                path, Schema("s", [V1, Migration(2, "bad", explode)])
            )
        reopened = SqliteStore(path, Schema("s", [V1]))
        assert reopened.user_version() == 1
        with reopened.connection() as conn:
            assert columns(conn, "items") == ["id"]

    def test_multi_statement_script_runs_every_statement(self, tmp_path):
        schema = Schema("s", [Migration(
            1, "two tables",
            "CREATE TABLE a (x TEXT); CREATE TABLE b (y TEXT);",
        )])
        store = SqliteStore(tmp_path / "s.sqlite3", schema)
        with store.connection() as conn:
            names = {
                row["name"]
                for row in conn.execute(
                    "SELECT name FROM sqlite_master WHERE type='table'"
                )
            }
        assert {"a", "b"} <= names
