"""The shared SQLite core: lifecycle, fd leaks, busy mapping, health."""

import os
import sqlite3
import threading

import pytest

from repro.errors import StoreBusyError, StoreError
from repro.store import Migration, Schema, SqliteStore, is_busy_error

SCHEMA = Schema("t", [Migration(
    1, "kv table",
    "CREATE TABLE IF NOT EXISTS t (k TEXT PRIMARY KEY, v TEXT)",
)])


def open_fd_count() -> int:
    return len(os.listdir("/proc/self/fd"))


class TestFileMode:
    def test_rows_survive_across_connections(self, tmp_path):
        store = SqliteStore(tmp_path / "t.sqlite3", SCHEMA)
        with store.transaction() as conn:
            conn.execute("INSERT INTO t VALUES ('a', '1')")
        with store.connection() as conn:
            rows = conn.execute("SELECT * FROM t").fetchall()
        assert [(row["k"], row["v"]) for row in rows] == [("a", "1")]

    def test_wal_and_busy_timeout_configured(self, tmp_path):
        store = SqliteStore(tmp_path / "t.sqlite3", SCHEMA)
        with store.connection() as conn:
            mode = conn.execute("PRAGMA journal_mode").fetchone()[0]
            timeout = conn.execute("PRAGMA busy_timeout").fetchone()[0]
        assert mode == "wal"
        assert timeout == int(store.timeout * 1000)

    def test_transaction_rolls_back_on_exception(self, tmp_path):
        store = SqliteStore(tmp_path / "t.sqlite3", SCHEMA)
        with pytest.raises(RuntimeError):
            with store.transaction() as conn:
                conn.execute("INSERT INTO t VALUES ('a', '1')")
                raise RuntimeError("boom")
        with store.connection() as conn:
            assert conn.execute("SELECT COUNT(*) FROM t").fetchone()[0] == 0

    def test_no_fd_leak_across_failing_transactions(self, tmp_path):
        """The regression this package exists for: a body that raises
        mid-transaction must not leak the connection's descriptor."""
        store = SqliteStore(tmp_path / "t.sqlite3", SCHEMA)
        with store.transaction() as conn:  # warm WAL/SHM sidecars
            conn.execute("INSERT INTO t VALUES ('seed', '0')")
        baseline = open_fd_count()
        for index in range(25):
            with pytest.raises(RuntimeError):
                with store.transaction() as conn:
                    conn.execute(
                        "INSERT INTO t VALUES (?, ?)", (f"k{index}", "v")
                    )
                    raise RuntimeError("mid-transaction failure")
        assert open_fd_count() == baseline

    def test_closed_store_refuses_connections(self, tmp_path):
        store = SqliteStore(tmp_path / "t.sqlite3", SCHEMA)
        store.close()
        with pytest.raises(StoreError):
            with store.connection():
                pass

    def test_non_busy_operational_error_propagates(self, tmp_path):
        store = SqliteStore(tmp_path / "t.sqlite3", SCHEMA)
        with pytest.raises(sqlite3.OperationalError):
            with store.transaction() as conn:
                conn.execute("SELECT * FROM no_such_table")


class TestBusy:
    def test_write_lock_contention_raises_store_busy(self, tmp_path):
        store = SqliteStore(
            tmp_path / "t.sqlite3", SCHEMA,
            timeout=0.05, busy_retries=2, busy_backoff=0.01,
        )
        blocker = sqlite3.connect(str(store.path), timeout=0.05)
        try:
            blocker.execute("BEGIN IMMEDIATE")
            blocker.execute("INSERT INTO t VALUES ('held', '1')")
            with pytest.raises(StoreBusyError) as info:
                with store.transaction(immediate=True):
                    pass
            assert info.value.retry_after > 0
        finally:
            blocker.rollback()
            blocker.close()

    def test_busy_retry_count_reaches_health(self, tmp_path):
        store = SqliteStore(
            tmp_path / "t.sqlite3", SCHEMA,
            timeout=0.05, busy_retries=2, busy_backoff=0.01,
        )
        blocker = sqlite3.connect(str(store.path), timeout=0.05)
        try:
            blocker.execute("BEGIN IMMEDIATE")
            blocker.execute("INSERT INTO t VALUES ('held', '1')")
            with pytest.raises(StoreBusyError):
                with store.transaction(immediate=True):
                    pass
        finally:
            blocker.rollback()
            blocker.close()
        assert store.health()["busy_retries"] == 3  # initial + 2 retries

    def test_is_busy_error_classifier(self):
        assert is_busy_error(
            sqlite3.OperationalError("database is locked")
        )
        assert not is_busy_error(
            sqlite3.OperationalError("no such table: t")
        )
        assert not is_busy_error(ValueError("database is locked"))

    def test_store_busy_error_is_store_error(self):
        error = StoreBusyError("busy", retry_after=2.5)
        assert isinstance(error, StoreError)
        assert error.retry_after == 2.5


class TestMemoryMode:
    def test_rows_survive_across_connection_blocks(self):
        store = SqliteStore(":memory:", SCHEMA)
        with store.transaction() as conn:
            conn.execute("INSERT INTO t VALUES ('a', '1')")
        with store.connection() as conn:
            assert conn.execute("SELECT COUNT(*) FROM t").fetchone()[0] == 1

    def test_shared_connection_is_usable_from_threads(self):
        store = SqliteStore(":memory:", SCHEMA)
        errors = []

        def write(index: int) -> None:
            try:
                with store.transaction() as conn:
                    conn.execute(
                        "INSERT INTO t VALUES (?, ?)",
                        (f"k{index}", "v"),
                    )
            except BaseException as exc:  # pragma: no cover
                errors.append(exc)

        threads = [
            threading.Thread(target=write, args=(i,)) for i in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        with store.connection() as conn:
            assert conn.execute("SELECT COUNT(*) FROM t").fetchone()[0] == 8

    def test_close_is_idempotent(self):
        store = SqliteStore(":memory:", SCHEMA)
        store.close()
        store.close()


class TestHealth:
    def test_health_payload(self, tmp_path):
        store = SqliteStore(tmp_path / "t.sqlite3", SCHEMA)
        with store.transaction() as conn:
            conn.execute("INSERT INTO t VALUES ('a', '1')")
        health = store.health()
        assert health["mode"] == "file"
        assert health["schema"] == "t"
        assert health["user_version"] == 1
        assert health["size_bytes"] > 0
        assert health["transactions"] >= 1
        assert health["busy_retries"] == 0
        assert health["txn_seconds_total"] > 0

    def test_memory_size_uses_page_math(self):
        store = SqliteStore(":memory:", SCHEMA)
        assert store.size_bytes() > 0
        assert store.health()["mode"] == "memory"
