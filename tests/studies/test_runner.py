"""run_study / aggregate_study: determinism, caching, persistence."""

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.engine import Engine
from repro.jobs.types import result_digest
from repro.library import workgroup_model
from repro.spec import model_to_spec
from repro.studies import (
    StudyNotFoundError,
    StudyStore,
    aggregate_study,
    front_rows,
    make_strategy,
    parse_study,
    run_study,
)
from repro.studies.runner import evaluate_candidates
from repro.studies.spec import SEARCH_KEYS

FAN = "Workgroup Server/Fan"
PSU = "Workgroup Server/Power Supply"


def study_for(strategy="grid", **extra):
    document = {
        "name": "wg",
        "base": model_to_spec(workgroup_model()),
        "strategy": strategy,
        "variables": [
            {"path": FAN, "field": "quantity", "values": [2, 3]},
            {"path": PSU, "field": "quantity", "values": [1, 2]},
        ],
    }
    document.update(extra)
    return parse_study(document)


class TestRunStudy:
    def test_result_shape_and_digest(self):
        result = run_study(study_for(), engine=Engine())
        assert result["kind"] == "study"
        assert result["evaluated"] == result["total"] == 4
        assert result["front"]
        assert result["winner"] in result["front"]
        stamped = result.pop("result_digest")
        # The digest covers exactly the digest-free payload.
        assert stamped == result_digest(result)

    def test_rerun_is_bit_identical(self):
        a = run_study(study_for(), engine=Engine())
        b = run_study(study_for(), engine=Engine())
        assert a == b

    def test_json_round_trip_is_stable(self):
        result = run_study(study_for(), engine=Engine())
        assert json.loads(json.dumps(result)) == result

    def test_warm_cache_skips_every_solve(self):
        first = Engine()
        result = run_study(study_for(), engine=first)
        warm = Engine(cache=first.cache)
        again = run_study(study_for(), engine=warm)
        assert again == result
        stats = warm.stats.snapshot()
        assert stats.system_solves == 0
        assert stats.system_cache_hits == result["evaluated"]

    def test_infeasible_candidates_stay_off_the_front(self):
        result = run_study(
            study_for(constraints={"max_downtime_minutes": 350.0}),
            engine=Engine(),
        )
        rows = {row["index"]: row for row in result["candidates"]}
        assert any(not row["feasible"] for row in rows.values())
        for index in result["front"]:
            assert rows[index]["feasible"]

    def test_front_rows_follow_front_order(self):
        result = run_study(study_for(), engine=Engine())
        assert [row["index"] for row in front_rows(result)] == (
            result["front"]
        )

    @settings(max_examples=10, deadline=None)
    @given(st.randoms(use_true_random=False))
    def test_front_is_evaluation_order_invariant(self, rng):
        """Permuting the order candidates are *solved* inside each
        round cannot change a single byte of the result."""
        reference = run_study(study_for(), engine=Engine())
        engine = Engine()

        def shuffled_evaluate(candidates):
            order = list(range(len(candidates)))
            rng.shuffle(order)
            availabilities = [None] * len(candidates)
            for position in order:
                availabilities[position] = evaluate_candidates(
                    engine, [candidates[position]]
                )[0]
            return availabilities

        shuffled = run_study(study_for(), evaluate=shuffled_evaluate)
        assert shuffled == reference


class TestAggregate:
    def test_payload_is_digest_free(self):
        study = study_for()
        strategy = make_strategy(study, workgroup_model())
        values = evaluate_candidates(
            Engine(), next(strategy.rounds())
        )
        fresh = make_strategy(study, workgroup_model())
        payload = aggregate_study(study, fresh, values)
        assert "result_digest" not in payload

    def test_incomplete_trace_rejected(self):
        study = study_for()
        strategy = make_strategy(study, workgroup_model())
        with pytest.raises(RuntimeError, match="incomplete"):
            aggregate_study(study, strategy, [0.9])

    def test_search_keys_cover_the_document(self):
        document = study_for().to_dict()
        assert set(document) == set(SEARCH_KEYS) | {"base"}


class TestStudyStore:
    def test_submit_is_idempotent(self, tmp_path):
        store = StudyStore(tmp_path)
        _, created = store.submit("study-a", {"name": "x"})
        record, again = store.submit("study-a", {"name": "ignored"})
        assert created and not again
        assert record["name"] == "x"
        assert record["state"] == "running"

    def test_succeed_fail_round_trip(self, tmp_path):
        store = StudyStore(tmp_path)
        store.submit("study-a", {"name": "x"})
        store.succeed("study-a", {"front": [0]})
        assert store.get("study-a")["state"] == "succeeded"
        store.submit("study-b", {"name": "y"})
        store.fail("study-b", "boom")
        assert store.get("study-b")["error"] == "boom"
        assert store.counts() == {
            "running": 0, "succeeded": 1, "failed": 1,
        }

    def test_disk_records_survive_reopen(self, tmp_path):
        StudyStore(tmp_path).submit("study-a", {"name": "x"})
        reopened = StudyStore(tmp_path)
        assert reopened.ids() == ["study-a"]
        assert reopened.get("study-a")["name"] == "x"

    def test_memory_store_isolates_callers(self):
        store = StudyStore()
        record, _ = store.submit("study-a", {"name": "x"})
        record["state"] = "mutated"
        assert store.get("study-a")["state"] == "running"

    def test_missing_study_raises(self, tmp_path):
        with pytest.raises(StudyNotFoundError):
            StudyStore(tmp_path).get("study-missing")

    def test_list_summarizes(self, tmp_path):
        store = StudyStore(tmp_path)
        store.submit("study-a", {"name": "x", "strategy": "grid"})
        store.succeed("study-a", {"evaluated": 4, "front": [0, 1]})
        summary = store.list()[0]
        assert summary["front_size"] == 2
        assert summary["evaluated"] == 4
