"""Search strategies: pruning, determinism, and replay fidelity."""

import pytest

from repro.database import builtin_database
from repro.engine import Engine
from repro.errors import SpecError
from repro.library import workgroup_model
from repro.spec import model_to_spec
from repro.studies import (
    STRATEGIES,
    Strategy,
    make_strategy,
    parse_study,
    register_strategy,
    replay,
)
from repro.studies.runner import evaluate_candidates

FAN = "Workgroup Server/Fan"
PSU = "Workgroup Server/Power Supply"


def study_for(strategy="grid", variables=None, **extra):
    document = {
        "name": "wg",
        "base": model_to_spec(workgroup_model()),
        "strategy": strategy,
        "variables": variables or [
            {"path": FAN, "field": "quantity", "values": [2, 3]},
            {"path": PSU, "field": "quantity", "values": [1, 2]},
        ],
    }
    document.update(extra)
    return parse_study(document)


def strategy_for(study):
    return make_strategy(study, workgroup_model(), builtin_database())


def drive(strategy, engine=None):
    """Run a strategy to completion, returning the value trace."""
    engine = engine or Engine()
    values = []
    generator = strategy.rounds()
    try:
        batch = next(generator)
    except StopIteration:
        return values
    while batch:
        availabilities = evaluate_candidates(engine, batch)
        values.extend(availabilities)
        try:
            batch = generator.send(list(availabilities))
        except StopIteration:
            batch = []
    return values


class TestGrid:
    def test_pool_is_the_full_product(self):
        strategy = strategy_for(study_for())
        assert strategy.total() == 4

    def test_min_k_prunes_without_building(self):
        strategy = strategy_for(study_for(
            variables=[
                {"path": FAN, "field": "quantity", "values": [2, 3]},
                {"path": FAN, "field": "min_required",
                 "values": [1, 2]},
            ],
            constraints={"min_k": 2},
        ))
        # min_required=1 assignments never enter the pool.
        assert strategy.total() == 2
        assert strategy.pruned()["min_k"] == 2

    def test_invalid_k_greater_than_n_pruned(self):
        strategy = strategy_for(study_for(variables=[
            {"path": FAN, "field": "quantity", "values": [1, 3]},
            {"path": FAN, "field": "min_required", "values": [2]},
        ]))
        # quantity=1 with min_required=2 cannot materialize.
        assert strategy.total() == 1
        assert strategy.pruned()["invalid"] == 1

    def test_all_pruned_is_an_error(self):
        with pytest.raises(SpecError, match="every grid candidate"):
            strategy_for(study_for(
                variables=[
                    {"path": FAN, "field": "quantity", "values": [1]},
                    {"path": FAN, "field": "min_required",
                     "values": [2]},
                ],
            ))


class TestDescent:
    def test_total_is_rounds_times_sweep(self):
        study = study_for("descent", options={"rounds": 3})
        assert strategy_for(study).total() == 3 * 4

    def test_start_is_nearest_to_base(self):
        # Base fan quantity is 2: the sweep starts there, not at 3.
        strategy = strategy_for(study_for("descent"))
        assert strategy.start[0] == 2

    def test_bad_rounds_rejected(self):
        with pytest.raises(SpecError, match="rounds"):
            strategy_for(study_for("descent", options={"rounds": 0}))

    def test_trace_is_deterministic(self):
        study = study_for("descent")
        assert drive(strategy_for(study)) == drive(strategy_for(study))


class TestEvolution:
    def options(self, **overrides):
        options = {"population": 4, "generations": 3, "seed": 7}
        options.update(overrides)
        return options

    def test_total_is_population_times_generations(self):
        study = study_for("evolve", options=self.options())
        assert strategy_for(study).total() == 12

    def test_same_seed_same_trajectory(self):
        study = study_for("evolve", options=self.options())
        assert drive(strategy_for(study)) == drive(strategy_for(study))

    def test_seed_changes_the_trajectory_shape(self):
        a = strategy_for(study_for("evolve", options=self.options()))
        b = strategy_for(
            study_for("evolve", options=self.options(seed=8))
        )
        engine = Engine()
        trace_a, _ = replay(a, drive(a, engine))
        trace_b, _ = replay(b, drive(b, engine))
        assignments = lambda t: [c.assignment for c in t]  # noqa: E731
        # Different seeds draw different initial populations (the
        # search may still converge to the same winners).
        assert assignments(trace_a) != assignments(trace_b)

    def test_bad_options_rejected(self):
        with pytest.raises(SpecError, match="population"):
            strategy_for(
                study_for("evolve", options=self.options(population=1))
            )
        with pytest.raises(SpecError, match="mutation"):
            strategy_for(
                study_for("evolve", options=self.options(mutation=2.0))
            )


class TestReplay:
    @pytest.mark.parametrize("name,options", [
        ("grid", {}),
        ("descent", {"rounds": 2}),
        ("evolve", {"population": 4, "generations": 2, "seed": 3}),
    ])
    def test_full_replay_reconstructs_the_trace(self, name, options):
        study = study_for(name, options=options)
        strategy = strategy_for(study)
        values = drive(strategy)
        trace, pending = replay(strategy_for(study), values)
        assert pending == []
        assert len(trace) == len(values) == strategy.total()

    def test_partial_replay_returns_the_pending_remainder(self):
        study = study_for("descent")
        strategy = strategy_for(study)
        values = drive(strategy)
        trace, pending = replay(strategy_for(study), values[:3])
        assert len(trace) == 3
        assert pending  # mid-round: the rest of the sweep batch
        full, _ = replay(strategy_for(study), values)
        assert [c.assignment for c in trace] == [
            c.assignment for c in full[:3]
        ]

    def test_overlong_values_rejected(self):
        study = study_for()
        strategy = strategy_for(study)
        values = drive(strategy)
        with pytest.raises(SpecError, match="trace"):
            replay(strategy_for(study), values + [0.5])


class TestRegistry:
    def test_unknown_strategy_lists_known(self):
        study = study_for()
        object.__setattr__(study, "strategy", "annealing")
        with pytest.raises(SpecError, match="known:"):
            make_strategy(study, workgroup_model())

    def test_register_strategy_extends_the_registry(self):
        class OneShot(Strategy):
            name = "one-shot"

            def total(self):
                return 1

            def rounds(self):
                yield [self.factory.build(tuple(
                    v.values[0] for v in self.variables
                ))]

        register_strategy(OneShot)
        try:
            study = study_for()
            object.__setattr__(study, "strategy", "one-shot")
            strategy = make_strategy(study, workgroup_model())
            assert strategy.total() == 1
        finally:
            del STRATEGIES["one-shot"]
