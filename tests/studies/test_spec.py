"""Study-document parsing, canonicalization, and content digests."""

import pytest

from repro.errors import SpecError
from repro.library import workgroup_model
from repro.spec import model_to_spec
from repro.studies import parse_study, study_digest

FAN = "Workgroup Server/Fan"
PSU = "Workgroup Server/Power Supply"


def document(**overrides):
    doc = {
        "name": "wg",
        "base": model_to_spec(workgroup_model()),
        "variables": [
            {"path": FAN, "field": "quantity", "values": [2, 3]},
            {"path": PSU, "field": "corrective_minutes",
             "values": [30.0, 60.0]},
        ],
    }
    doc.update(overrides)
    return doc


class TestParsing:
    def test_variables_sorted_by_path_then_field(self):
        study = parse_study(document())
        assert [v.path for v in study.variables] == [FAN, PSU]

    def test_range_expands_inclusively(self):
        study = parse_study(document(variables=[
            {"path": FAN, "field": "quantity", "range": [1, 4]},
        ]))
        assert study.variables[0].values == (1, 2, 3, 4)

    def test_values_shorthand_expands(self):
        study = parse_study(document(variables=[
            {"path": FAN, "field": "corrective_minutes",
             "values": ["10:30:3"]},
        ]))
        assert study.variables[0].values == (10.0, 20.0, 30.0)

    def test_choices_normalize_scenarios(self):
        study = parse_study(document(variables=[
            {"path": FAN, "field": "recovery",
             "choices": ["transparent", "nontransparent"]},
        ]))
        assert study.variables[0].values == (
            "transparent", "nontransparent",
        )

    def test_integer_field_rejects_fractions(self):
        with pytest.raises(SpecError, match="must be integers"):
            parse_study(document(variables=[
                {"path": FAN, "field": "quantity", "values": [1.5]},
            ]))

    def test_unknown_block_field_rejected(self):
        with pytest.raises(SpecError, match="unknown block field"):
            parse_study(document(variables=[
                {"path": FAN, "field": "warp_factor", "values": [1]},
            ]))

    def test_bad_path_rejected(self):
        with pytest.raises(SpecError):
            parse_study(document(variables=[
                {"path": "Workgroup Server/Nope", "field": "quantity",
                 "values": [1]},
            ]))

    def test_duplicate_variable_rejected(self):
        with pytest.raises(SpecError, match="duplicate variable"):
            parse_study(document(variables=[
                {"path": FAN, "field": "quantity", "values": [1, 2]},
                {"path": FAN, "field": "quantity", "values": [2, 3]},
            ]))

    def test_choices_only_for_scenario_fields(self):
        with pytest.raises(SpecError, match="scenario fields"):
            parse_study(document(variables=[
                {"path": FAN, "field": "quantity", "choices": ["1"]},
            ]))

    def test_unknown_constraint_rejected(self):
        with pytest.raises(SpecError, match="unknown constraints"):
            parse_study(document(constraints={"max_price": 1}))

    def test_negative_constraint_rejected(self):
        with pytest.raises(SpecError, match="non-negative"):
            parse_study(document(constraints={"max_cost": -1}))

    def test_base_is_required_inline(self):
        with pytest.raises(SpecError, match="inline 'base'"):
            parse_study({"variables": [], "name": "x"})


class TestDigest:
    def test_variable_order_does_not_fork_the_id(self):
        forward = parse_study(document())
        doc = document()
        doc["variables"] = list(reversed(doc["variables"]))
        backward = parse_study(doc)
        assert study_digest(forward) == study_digest(backward)

    def test_search_space_changes_the_id(self):
        a = parse_study(document())
        b = parse_study(document(variables=[
            {"path": FAN, "field": "quantity", "values": [2, 3, 4]},
        ]))
        assert study_digest(a) != study_digest(b)

    def test_constraints_change_the_id(self):
        a = parse_study(document())
        b = parse_study(document(
            constraints={"max_downtime_minutes": 300.0}
        ))
        assert study_digest(a) != study_digest(b)

    def test_digest_is_stable_across_reparses(self):
        assert study_digest(parse_study(document())) == study_digest(
            parse_study(document())
        )
        assert study_digest(parse_study(document())).startswith("study-")
