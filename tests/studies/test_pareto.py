"""Dominance and Pareto-front extraction, including degenerate ties."""

from hypothesis import given, strategies as st

from repro.studies import dominates, pareto_front


class TestDominates:
    def test_strictly_better_dominates(self):
        assert dominates((1.0, 1.0, 0), (2.0, 2.0, 1))

    def test_equal_cost_better_downtime_dominates(self):
        assert dominates((1.0, 1.0, 0), (1.0, 2.0, 1))

    def test_equal_downtime_cheaper_dominates(self):
        assert dominates((1.0, 1.0, 0), (2.0, 1.0, 1))

    def test_exact_tie_does_not_dominate(self):
        assert not dominates((1.0, 1.0, 0), (1.0, 1.0, 1))
        assert not dominates((1.0, 1.0, 1), (1.0, 1.0, 0))

    def test_tradeoff_does_not_dominate(self):
        assert not dominates((1.0, 2.0, 0), (2.0, 1.0, 1))
        assert not dominates((2.0, 1.0, 1), (1.0, 2.0, 0))


class TestFront:
    def test_empty(self):
        assert pareto_front([]) == []

    def test_single_point(self):
        assert pareto_front([(1.0, 2.0, 7)]) == [(1.0, 2.0, 7)]

    def test_dominated_point_removed(self):
        front = pareto_front([(1.0, 1.0, 0), (2.0, 2.0, 1)])
        assert front == [(1.0, 1.0, 0)]

    def test_tradeoff_points_both_survive(self):
        points = [(1.0, 5.0, 0), (2.0, 3.0, 1), (3.0, 1.0, 2)]
        assert pareto_front(points) == points

    def test_equal_cost_keeps_only_best_downtime(self):
        front = pareto_front([
            (1.0, 5.0, 0), (1.0, 3.0, 1), (1.0, 7.0, 2),
        ])
        assert front == [(1.0, 3.0, 1)]

    def test_exact_ties_on_both_objectives_all_survive(self):
        points = [(1.0, 3.0, 0), (1.0, 3.0, 1), (1.0, 3.0, 2)]
        assert sorted(pareto_front(points)) == points

    def test_front_is_cost_sorted(self):
        front = pareto_front([
            (3.0, 1.0, 0), (1.0, 5.0, 1), (2.0, 3.0, 2),
        ])
        assert [p[0] for p in front] == [1.0, 2.0, 3.0]


points_strategy = st.lists(
    st.tuples(
        st.floats(0.0, 100.0, allow_nan=False),
        st.floats(0.0, 100.0, allow_nan=False),
    ),
    max_size=30,
)


class TestFrontProperties:
    @given(points_strategy)
    def test_front_is_exactly_the_nondominated_set(self, raw):
        points = [(c, d, i) for i, (c, d) in enumerate(raw)]
        front = set(pareto_front(points))
        for point in points:
            dominated = any(
                dominates(other, point)
                for other in points
                if other is not point
            )
            assert (point in front) == (not dominated)

    @given(points_strategy, st.randoms(use_true_random=False))
    def test_front_is_input_order_invariant(self, raw, rng):
        points = [(c, d, i) for i, (c, d) in enumerate(raw)]
        shuffled = list(points)
        rng.shuffle(shuffled)
        assert sorted(pareto_front(points)) == sorted(
            pareto_front(shuffled)
        )
