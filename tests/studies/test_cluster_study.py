"""Cluster-evaluated studies: merged fronts are bit-identical.

Drives the real :class:`Coordinator` (shard planning, dispatch
threads, merge) with an engine-backed fake client that executes each
shard's ``/v1/solve`` calls in process — the cross-process protocol
without sockets, deterministic under any shard placement.
"""

from repro.cluster import ClusterConfig, Coordinator, Membership
from repro.cluster.membership import worker_id_for
from repro.cluster.workloads import StudyWorkload
from repro.engine import Engine
from repro.library import workgroup_model
from repro.spec import model_to_spec, parse_spec
from repro.studies import INVALID_AVAILABILITY, parse_study, run_study

FAN = "Workgroup Server/Fan"
PSU = "Workgroup Server/Power Supply"


def study_for(strategy="grid", **extra):
    document = {
        "name": "wg",
        "base": model_to_spec(workgroup_model()),
        "strategy": strategy,
        "variables": [
            {"path": FAN, "field": "quantity", "values": [1, 2, 3]},
            {"path": FAN, "field": "min_required", "values": [1, 2]},
            {"path": PSU, "field": "quantity", "values": [1, 2]},
        ],
    }
    document.update(extra)
    return parse_study(document)


class EngineClient:
    """A worker client that solves shard calls on a local engine."""

    def __init__(self, url, engine):
        self.url = url
        self.worker_id = worker_id_for(url)
        self.engine = engine

    def execute_shard(self, workload, lo, hi, trace_header=None):
        bodies = []
        for _path, payload in workload.calls(lo, hi):
            model = parse_spec(dict(payload["spec"]))
            solution = self.engine.solve(model, "direct")
            # Only availability flows into the round's aggregate; the
            # other point fields ride along as the service would send
            # them, but a study never reads them.
            bodies.append({
                "model": model.name,
                "availability": solution.availability,
            })
        return bodies


def make_coordinator(worker_count):
    urls = [f"http://worker-{i}:1" for i in range(worker_count)]
    config = ClusterConfig(
        workers=tuple(urls), shard_size=2, fanout_threshold=1,
    )
    engine = Engine()
    return Coordinator(
        Membership(lease_timeout=config.lease_timeout),
        config=config,
        client_factory=lambda url, timeout=None: EngineClient(
            url, engine
        ),
    )


def cluster_run(study, worker_count):
    """run_study with per-round coordinator fan-out (the service's
    evaluator shape, without the HTTP front end)."""
    coordinator = make_coordinator(worker_count)
    state = {"round": 0, "rounds_fanned": 0}

    def evaluate(candidates):
        round_index = state["round"]
        state["round"] += 1
        valid = [
            (position, candidate)
            for position, candidate in enumerate(candidates)
            if candidate.model is not None
        ]
        workload = StudyWorkload(
            "study-test", round_index,
            [model_to_spec(c.model) for _p, c in valid],
        )
        merged = coordinator.run_workload(workload, timeout=60)
        state["rounds_fanned"] += 1
        availabilities = [INVALID_AVAILABILITY] * len(candidates)
        for (position, _c), availability in zip(
            valid, merged["availabilities"]
        ):
            availabilities[position] = float(availability)
        return availabilities

    return run_study(study, evaluate=evaluate), state


class TestClusterBitIdentity:
    def test_one_and_two_worker_fronts_match_single_process(self):
        local = run_study(study_for(), engine=Engine())
        one, state_one = cluster_run(study_for(), worker_count=1)
        two, state_two = cluster_run(study_for(), worker_count=2)
        assert state_one["rounds_fanned"] >= 1
        assert state_two["rounds_fanned"] >= 1
        assert one == local
        assert two == local
        assert (
            one["result_digest"]
            == two["result_digest"]
            == local["result_digest"]
        )

    def test_adaptive_strategy_fans_every_round(self):
        study = study_for(
            "evolve",
            options={"population": 4, "generations": 3, "seed": 1},
        )
        local = run_study(study_for(
            "evolve",
            options={"population": 4, "generations": 3, "seed": 1},
        ), engine=Engine())
        clustered, state = cluster_run(study, worker_count=2)
        assert state["rounds_fanned"] == 3
        assert clustered == local

    def test_workload_digest_pins_study_and_round(self):
        spec = model_to_spec(workgroup_model())
        a = StudyWorkload("study-x", 0, [spec])
        b = StudyWorkload("study-x", 1, [spec])
        c = StudyWorkload("study-y", 0, [spec])
        assert len({a.digest, b.digest, c.digest}) == 3

    def test_round_aggregate_shape(self):
        spec = model_to_spec(workgroup_model())
        workload = StudyWorkload("study-x", 2, [spec, spec])
        payload = workload.aggregate([
            {"availability": 0.9}, {"availability": 0.99},
        ])
        assert payload["kind"] == "study_round"
        assert payload["round"] == 2
        assert payload["availabilities"] == [0.9, 0.99]
