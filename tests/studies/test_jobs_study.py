"""Study jobs: checkpointed execution and resume bit-identity."""

import pytest

from repro.engine import Engine
from repro.errors import SpecError
from repro.jobs import Checkpointer, JobSpec, JobStore, execute_job
from repro.library import workgroup_model
from repro.spec import model_to_spec
from repro.studies import run_study, parse_study

FAN = "Workgroup Server/Fan"
PSU = "Workgroup Server/Power Supply"


def study_params(strategy="descent", **extra):
    params = {
        "name": "wg",
        "strategy": strategy,
        "variables": [
            {"path": FAN, "field": "quantity", "values": [2, 3]},
            {"path": PSU, "field": "quantity", "values": [1, 2]},
        ],
    }
    params.update(extra)
    return params


def study_job(**extra):
    return JobSpec(
        kind="study",
        spec=model_to_spec(workgroup_model()),
        params=study_params(**extra),
    )


def reference_result(**extra):
    document = study_params(**extra)
    document["base"] = model_to_spec(workgroup_model())
    return run_study(parse_study(document), engine=Engine())


def run_once(spec, tmp_path, tag, **kwargs):
    store = JobStore(tmp_path / f"{tag}.sqlite3")
    checkpointer = Checkpointer(tmp_path / f"{tag}-ckpt")
    engine = Engine(jobs=1, cache_dir=tmp_path / f"{tag}-cache")
    record, _ = store.submit(spec)
    leased = store.lease(tag)
    outcome = execute_job(leased, store, engine, checkpointer, **kwargs)
    return outcome, store.get(record.id), store, checkpointer


class TestStudyJob:
    def test_study_job_matches_run_study(self, tmp_path):
        outcome, record, _, _ = run_once(study_job(), tmp_path, "w")
        assert outcome == "succeeded"
        assert record.result == reference_result()

    def test_direct_service_and_job_paths_share_one_digest(
        self, tmp_path
    ):
        _, record, _, _ = run_once(study_job(), tmp_path, "w")
        assert (
            record.result["result_digest"]
            == reference_result()["result_digest"]
        )

    def test_unknown_strategy_fails_at_submission(self):
        # job_digest parses the spec; the strategy is validated when
        # the plan is built, so a bad name fails the first attempt.
        spec = JobSpec(
            kind="study",
            spec=model_to_spec(workgroup_model()),
            params=study_params(strategy="annealing"),
        )
        with pytest.raises(SpecError, match="known"):
            from repro.jobs.runner import plan_job
            from repro.spec import parse_spec

            plan_job(
                spec,
                parse_spec(dict(spec.spec)),
                Engine(),
            )


class TestResume:
    def test_preempted_study_resumes_bit_identically(self, tmp_path):
        """A killed worker's successor must reproduce the exact
        payload of an uninterrupted run — the checkpointed scalar
        prefix plus generator replay is the whole story."""
        spec = study_job()
        _, reference, _, _ = run_once(
            spec, tmp_path, "ref", checkpoint_every=3
        )

        store = JobStore(tmp_path / "jobs.sqlite3")
        checkpointer = Checkpointer(tmp_path / "ckpt")
        engine = Engine(jobs=1, cache_dir=tmp_path / "cache")
        record, _ = store.submit(spec)
        leased = store.lease("w1")
        chunks = []
        outcome = execute_job(
            leased, store, engine, checkpointer, checkpoint_every=3,
            should_stop=lambda: len(chunks) >= 2 or chunks.append(None),
        )
        assert outcome == "released"
        checkpoint = checkpointer.load(record.id)
        assert 0 < len(checkpoint.values) < reference.result["evaluated"]

        # A fresh engine stands in for the post-crash process.
        fresh = Engine(jobs=1, cache_dir=tmp_path / "fresh-cache")
        resumed = store.lease("w2")
        assert execute_job(
            resumed, store, fresh, checkpointer, checkpoint_every=3
        ) == "succeeded"
        final = store.get(record.id)
        assert final.result == reference.result
        # Only the points past the checkpoint were re-solved.
        assert (
            fresh.stats.snapshot().system_solves
            < reference.result["evaluated"]
        )

    def test_resume_spans_round_boundaries(self, tmp_path):
        # checkpoint_every larger than a descent round: chunks clamp
        # to round boundaries and the digest still matches.
        spec = study_job(options={"rounds": 2})
        _, reference, _, _ = run_once(spec, tmp_path, "ref")
        _, chunked, _, _ = run_once(
            spec, tmp_path, "chunked", checkpoint_every=5
        )
        assert chunked.result == reference.result

    def test_stale_checkpoint_discarded(self, tmp_path):
        from repro.jobs import Checkpoint

        spec = study_job()
        store = JobStore(tmp_path / "jobs.sqlite3")
        checkpointer = Checkpointer(tmp_path / "ckpt")
        record, _ = store.submit(spec)
        checkpointer.save(
            Checkpoint(record.id, "study", 99, [0.5, 0.6])
        )
        leased = store.lease("w1")
        engine = Engine()
        assert execute_job(
            leased, store, engine, checkpointer
        ) == "succeeded"
        assert store.get(record.id).result == reference_result()
