"""The SQLite job store: dedup, leasing, recovery, and cancellation."""

import pytest

from repro.errors import RascadError
from repro.jobs import JobNotFoundError, JobSpec, JobStore
from repro.library import e10000_model, workgroup_model
from repro.spec import model_to_spec


@pytest.fixture
def store(tmp_path):
    return JobStore(tmp_path / "jobs.sqlite3")


def sweep_spec(model=None, **overrides):
    params = overrides.pop("params", {"field": "mtbf_hours",
                                      "values": [1e5, 2e5]})
    return JobSpec(
        kind="sweep",
        spec=model_to_spec(model or e10000_model()),
        params=params,
        **overrides,
    )


class TestSubmit:
    def test_submit_creates_queued_job(self, store):
        record, created = store.submit(sweep_spec())
        assert created
        assert record.state == "queued"
        assert record.attempts == 0
        assert record.id.startswith("job-")

    def test_resubmission_dedups_to_existing_id(self, store):
        first, created_first = store.submit(sweep_spec())
        second, created_second = store.submit(sweep_spec())
        assert created_first and not created_second
        assert first.id == second.id
        assert len(store.list_jobs()) == 1

    def test_spec_survives_round_trip(self, store):
        submitted = sweep_spec(priority=2, max_attempts=5)
        record, _ = store.submit(submitted)
        assert store.get(record.id).spec == submitted

    def test_get_unknown_id_raises(self, store):
        with pytest.raises(JobNotFoundError):
            store.get("job-missing")


class TestLease:
    def test_lease_claims_and_spends_an_attempt(self, store):
        record, _ = store.submit(sweep_spec())
        leased = store.lease("w1")
        assert leased is not None
        assert leased.id == record.id
        assert leased.state == "running"
        assert leased.attempts == 1
        assert leased.worker == "w1"

    def test_empty_queue_leases_nothing(self, store):
        assert store.lease("w1") is None

    def test_higher_priority_leases_first(self, store):
        low, _ = store.submit(sweep_spec(priority=0))
        high, _ = store.submit(
            sweep_spec(model=workgroup_model(), priority=9)
        )
        assert store.lease("w1").id == high.id
        assert store.lease("w1").id == low.id

    def test_backoff_gates_requeued_jobs(self, store):
        record, _ = store.submit(sweep_spec())
        store.lease("w1", now=100.0)
        store.fail(record.id, "flaky", retryable=True, backoff=30.0,
                   now=100.0)
        assert store.lease("w1", now=110.0) is None
        assert store.lease("w1", now=131.0) is not None

    def test_stale_heartbeat_is_reclaimed(self, store):
        record, _ = store.submit(sweep_spec())
        store.lease("w1", now=100.0)
        # Heartbeat stops (SIGKILL).  A later lease within the timeout
        # sees nothing; past the timeout the job is requeued and
        # claimable again.
        assert store.lease("w2", lease_timeout=60.0, now=120.0) is None
        reclaimed = store.lease("w2", lease_timeout=60.0, now=161.0)
        assert reclaimed is not None
        assert reclaimed.id == record.id
        assert reclaimed.attempts == 2

    def test_stale_job_with_no_budget_fails(self, store):
        record, _ = store.submit(sweep_spec(max_attempts=1))
        store.lease("w1", now=100.0)
        assert store.lease("w2", lease_timeout=60.0, now=161.0) is None
        failed = store.get(record.id)
        assert failed.state == "failed"
        assert "lease expired" in failed.error


class TestFail:
    def test_transient_failure_requeues(self, store):
        record, _ = store.submit(sweep_spec(max_attempts=3))
        store.lease("w1")
        state = store.fail(record.id, "timeout", retryable=True)
        assert state == "queued"
        assert store.get(record.id).error == "timeout"

    def test_permanent_failure_is_terminal(self, store):
        record, _ = store.submit(sweep_spec())
        store.lease("w1")
        state = store.fail(record.id, "bad spec", retryable=False)
        assert state == "failed"
        assert store.get(record.id).finished_at is not None

    def test_exhausted_budget_is_terminal(self, store):
        record, _ = store.submit(sweep_spec(max_attempts=1))
        store.lease("w1")
        assert store.fail(record.id, "boom", retryable=True) == "failed"


class TestRelease:
    def test_release_refunds_the_attempt(self, store):
        record, _ = store.submit(sweep_spec())
        store.lease("w1")
        store.release(record.id)
        requeued = store.get(record.id)
        assert requeued.state == "queued"
        assert requeued.attempts == 0

    def test_released_job_is_leasable_again(self, store):
        record, _ = store.submit(sweep_spec())
        store.lease("w1")
        store.release(record.id)
        assert store.lease("w2").id == record.id


class TestCancel:
    def test_queued_job_cancels_immediately(self, store):
        record, _ = store.submit(sweep_spec())
        cancelled = store.cancel(record.id)
        assert cancelled.state == "cancelled"
        assert store.lease("w1") is None

    def test_running_job_gets_the_flag(self, store):
        record, _ = store.submit(sweep_spec())
        store.lease("w1")
        flagged = store.cancel(record.id)
        assert flagged.state == "running"
        assert flagged.cancel_requested
        store.mark_cancelled(record.id)
        assert store.get(record.id).state == "cancelled"

    def test_terminal_job_unchanged(self, store):
        record, _ = store.submit(sweep_spec())
        store.lease("w1")
        store.succeed(record.id, {"ok": True})
        assert store.cancel(record.id).state == "succeeded"


class TestInspection:
    def test_counts_by_state(self, store):
        store.submit(sweep_spec())
        record, _ = store.submit(sweep_spec(model=workgroup_model()))
        store.lease("w1")  # claims one of the two
        counts = store.counts()
        assert counts["queued"] == 1
        assert counts["running"] == 1
        assert counts["succeeded"] == 0

    def test_list_filters_by_state(self, store):
        store.submit(sweep_spec())
        store.submit(sweep_spec(model=workgroup_model()))
        store.lease("w1")
        assert len(store.list_jobs(state="running")) == 1
        assert len(store.list_jobs(state="queued")) == 1
        assert len(store.list_jobs()) == 2

    def test_list_rejects_unknown_state(self, store):
        with pytest.raises(RascadError, match="unknown job state"):
            store.list_jobs(state="zombie")

    def test_succeed_stores_result_payload(self, store):
        record, _ = store.submit(sweep_spec())
        store.lease("w1")
        store.succeed(record.id, {"points": [1.0], "result_digest": "x"})
        done = store.get(record.id)
        assert done.state == "succeeded"
        assert done.result["result_digest"] == "x"
