"""Checkpointed execution: resume bit-identity, preemption, retries."""

import json

import pytest

from repro.engine import Engine
from repro.jobs import (
    Checkpoint,
    Checkpointer,
    JobSpec,
    JobStore,
    Worker,
    WorkerConfig,
    execute_job,
    plan_job,
)
from repro.library import e10000_model
from repro.spec import model_to_spec, parse_spec


@pytest.fixture
def harness(tmp_path):
    store = JobStore(tmp_path / "jobs.sqlite3")
    checkpointer = Checkpointer(tmp_path / "checkpoints")
    engine = Engine(jobs=1, cache_dir=tmp_path / "cache")
    return store, checkpointer, engine


def sweep_spec(count=8, **overrides):
    start, stop = 1e5, 1e6
    step = (stop - start) / (count - 1)
    params = {
        "field": "mtbf_hours",
        "block": "E10000 Server/Operating System",
        "values": [start + step * i for i in range(count)],
    }
    params.update(overrides.pop("params", {}))
    return JobSpec(
        kind="sweep",
        spec=model_to_spec(e10000_model()),
        params=params,
        **overrides,
    )


def run_once(spec, store, checkpointer, engine, **kwargs):
    record, _ = store.submit(spec)
    leased = store.lease("test-worker")
    outcome = execute_job(leased, store, engine, checkpointer, **kwargs)
    return outcome, store.get(record.id)


class TestCheckpointer:
    def test_save_load_round_trip(self, tmp_path):
        ckpt = Checkpointer(tmp_path)
        saved = Checkpoint("job-a", "sweep", 4, [0.9, 0.99])
        ckpt.save(saved)
        assert ckpt.load("job-a") == saved

    def test_missing_checkpoint_is_none(self, tmp_path):
        assert Checkpointer(tmp_path).load("job-missing") is None

    def test_corrupt_checkpoint_is_none(self, tmp_path):
        ckpt = Checkpointer(tmp_path)
        ckpt.path("job-a").write_text("{not json")
        assert ckpt.load("job-a") is None

    def test_mismatched_id_is_none(self, tmp_path):
        ckpt = Checkpointer(tmp_path)
        ckpt.path("job-b").write_text(
            Checkpoint("job-a", "sweep", 4, []).to_json()
        )
        assert ckpt.load("job-b") is None

    def test_clear_removes_the_file(self, tmp_path):
        ckpt = Checkpointer(tmp_path)
        ckpt.save(Checkpoint("job-a", "sweep", 1, [1.0]))
        ckpt.clear("job-a")
        assert ckpt.load("job-a") is None


class TestSweepExecution:
    def test_sweep_matches_the_engine_sweep(self, harness):
        store, checkpointer, engine = harness
        spec = sweep_spec(count=4)
        outcome, record = run_once(spec, store, checkpointer, engine)
        assert outcome == "succeeded"
        expected = engine.sweep_block_field(
            e10000_model(),
            "E10000 Server/Operating System",
            "mtbf_hours",
            spec.params["values"],
        )
        got = [p["availability"] for p in record.result["points"]]
        assert got == [p.availability for p in expected]
        assert record.result["result_digest"]

    def test_checkpoint_cleared_after_success(self, harness):
        store, checkpointer, engine = harness
        _, record = run_once(sweep_spec(count=3), store, checkpointer,
                             engine)
        assert checkpointer.load(record.id) is None


class TestResume:
    def test_preempted_job_resumes_bit_identically(self, harness, tmp_path):
        store, checkpointer, engine = harness
        spec = sweep_spec(count=9)

        # The uninterrupted reference run, on its own store and cache.
        ref_store = JobStore(tmp_path / "ref.sqlite3")
        ref_ckpt = Checkpointer(tmp_path / "ref-checkpoints")
        ref_engine = Engine(jobs=1, cache_dir=tmp_path / "ref-cache")
        _, reference = run_once(spec, ref_store, ref_ckpt, ref_engine,
                                checkpoint_every=3)

        # Interrupted run: stop after two 3-point chunks.
        record, _ = store.submit(spec)
        leased = store.lease("w1")
        chunks = []
        outcome = execute_job(
            leased, store, engine, checkpointer, checkpoint_every=3,
            should_stop=lambda: len(chunks) >= 2 or chunks.append(None),
        )
        assert outcome == "released"
        checkpoint = checkpointer.load(record.id)
        assert len(checkpoint.values) == 6  # two chunks durably recorded

        # Resume with a *fresh* engine (new process after the crash):
        # only the 3 points past the checkpoint are solved again.
        fresh = Engine(jobs=1, cache_dir=tmp_path / "fresh-cache")
        resumed = store.lease("w2")
        assert execute_job(
            resumed, store, fresh, checkpointer, checkpoint_every=3
        ) == "succeeded"
        assert fresh.stats.snapshot().system_solves == 3

        final = store.get(record.id)
        assert final.result == reference.result
        assert (
            final.result["result_digest"]
            == reference.result["result_digest"]
        )

    def test_stale_checkpoint_is_discarded(self, harness):
        store, checkpointer, engine = harness
        spec = sweep_spec(count=4)
        record, _ = store.submit(spec)
        # A checkpoint from an older submission shape: wrong total.
        checkpointer.save(Checkpoint(record.id, "sweep", 99, [0.5]))
        leased = store.lease("w1")
        assert execute_job(
            leased, store, engine, checkpointer
        ) == "succeeded"
        assert len(store.get(record.id).result["points"]) == 4


class TestCancellation:
    def test_cancel_mid_run_stops_at_chunk_boundary(self, harness):
        store, checkpointer, engine = harness
        record, _ = store.submit(sweep_spec(count=6))
        leased = store.lease("w1")
        store.cancel(record.id)
        outcome = execute_job(
            leased, store, engine, checkpointer, checkpoint_every=2
        )
        assert outcome == "cancelled"
        assert store.get(record.id).state == "cancelled"
        assert checkpointer.load(record.id) is None


class TestWorker:
    def test_worker_drains_the_queue(self, harness):
        store, checkpointer, engine = harness
        a, _ = store.submit(sweep_spec(count=2))
        b, _ = store.submit(sweep_spec(count=3))
        worker = Worker(
            store, engine, checkpointer, WorkerConfig(once=True)
        )
        assert worker.run() == 2
        assert store.get(a.id).state == "succeeded"
        assert store.get(b.id).state == "succeeded"

    def test_permanent_failure_does_not_retry(self, harness):
        store, checkpointer, engine = harness
        spec = sweep_spec(params={"block": "E10000 Server/NoSuchBlock"})
        record, _ = store.submit(spec)
        worker = Worker(
            store, engine, checkpointer, WorkerConfig(once=True)
        )
        worker.run()
        failed = store.get(record.id)
        assert failed.state == "failed"
        assert failed.attempts == 1
        assert "permanent" in failed.error

    def test_transient_failure_requeues_with_backoff(self, harness):
        store, checkpointer, engine = harness
        record, _ = store.submit(sweep_spec(count=2))
        leased = store.lease("w1")
        worker = Worker(store, engine, checkpointer)

        original = execute_job

        def boom(*args, **kwargs):
            raise OSError("disk went away")

        import repro.jobs.runner as runner_module

        runner_module_execute = runner_module.execute_job
        runner_module.execute_job = boom
        try:
            state = worker.process(leased)
        finally:
            runner_module.execute_job = runner_module_execute
        assert original is runner_module_execute
        assert state == "queued"
        requeued = store.get(record.id)
        assert requeued.not_before > 0
        assert "transient" in requeued.error


class TestPlans:
    def test_uncertainty_matches_the_engine(self, harness):
        store, checkpointer, engine = harness
        spec = JobSpec(
            kind="uncertainty",
            spec=model_to_spec(e10000_model()),
            params={
                "uncertain": [{
                    "path": "E10000 Server/Operating System",
                    "field": "mtbf_hours",
                    "distribution": {
                        "type": "uniform", "low": 1e5, "high": 5e5,
                    },
                }],
                "samples": 6,
                "seed": 42,
            },
        )
        outcome, record = run_once(spec, store, checkpointer, engine,
                                   checkpoint_every=2)
        assert outcome == "succeeded"

        from repro.analysis.uncertainty import UncertainField
        from repro.semimarkov.distributions import Uniform

        expected = Engine(jobs=1).propagate_uncertainty(
            e10000_model(),
            [UncertainField(
                "E10000 Server/Operating System", "mtbf_hours",
                Uniform(1e5, 5e5),
            )],
            samples=6,
            seed=42,
        )
        assert record.result["mean_availability"] == expected.mean_availability
        assert record.result["downtime_p50"] == expected.downtime_p50

    def test_validate_reports_agreement(self, harness):
        store, checkpointer, engine = harness
        spec = JobSpec(
            kind="validate",
            spec=model_to_spec(e10000_model()),
            params={"replications": 4, "horizon": 2_000.0, "seed": 7},
        )
        outcome, record = run_once(spec, store, checkpointer, engine,
                                   checkpoint_every=2)
        assert outcome == "succeeded"
        result = record.result
        assert result["replications"] == 4
        assert 0.0 < result["simulated_mean"] <= 1.0
        assert isinstance(result["agreement"], bool)

    def test_sweep_requires_field(self, harness):
        _, _, engine = harness
        spec = JobSpec(
            kind="sweep",
            spec=model_to_spec(e10000_model()),
            params={"values": [1.0]},
        )
        model = parse_spec(json.loads(json.dumps(dict(spec.spec))))
        from repro.errors import SpecError

        with pytest.raises(SpecError, match="params.field"):
            plan_job(spec, model, engine)
