"""Job specs, content-digest ids, checkpoints, and result digests."""

import json

import pytest

from repro.errors import SpecError
from repro.jobs import (
    Checkpoint,
    JobSpec,
    distribution_from_dict,
    job_digest,
    result_digest,
)
from repro.library import e10000_model
from repro.semimarkov.distributions import Lognormal, Uniform
from repro.spec import model_to_spec


def sweep_spec(**overrides):
    params = {
        "field": "mtbf_hours",
        "values": [1e5, 2e5, 3e5],
        "block": "E10000 Server/Operating System",
    }
    params.update(overrides.pop("params", {}))
    return JobSpec(
        kind="sweep",
        spec=model_to_spec(e10000_model()),
        params=params,
        **overrides,
    )


class TestJobSpec:
    def test_unknown_kind_rejected(self):
        with pytest.raises(SpecError, match="unknown job kind"):
            JobSpec(kind="teleport", spec={})

    def test_zero_attempts_rejected(self):
        with pytest.raises(SpecError, match="max_attempts"):
            sweep_spec(max_attempts=0)

    def test_json_round_trip(self):
        spec = sweep_spec(priority=3, max_attempts=5)
        restored = JobSpec.from_json(spec.to_json())
        assert restored == spec

    def test_from_json_fills_defaults(self):
        text = json.dumps({"kind": "sweep", "spec": {}, "params": {}})
        restored = JobSpec.from_json(text)
        assert restored.priority == 0
        assert restored.max_attempts == 3


class TestJobDigest:
    def test_identical_specs_share_an_id(self):
        assert job_digest(sweep_spec()) == job_digest(sweep_spec())

    def test_id_is_spec_format_invariant(self):
        # Reordering keys in the spec document must not change the id:
        # the digest hashes the *parsed model*, not the JSON text.
        document = model_to_spec(e10000_model())
        shuffled = json.loads(
            json.dumps(document, sort_keys=True)
        )
        a = JobSpec(kind="sweep", spec=document,
                    params={"field": "mtbf_hours", "values": [1.0, 2.0]})
        b = JobSpec(kind="sweep", spec=shuffled,
                    params={"field": "mtbf_hours", "values": [1.0, 2.0]})
        assert job_digest(a) == job_digest(b)

    def test_different_params_differ(self):
        a = sweep_spec()
        b = sweep_spec(params={"values": [1e5, 2e5]})
        assert job_digest(a) != job_digest(b)

    def test_different_kind_differs(self):
        sweep = sweep_spec()
        validate = JobSpec(
            kind="validate", spec=sweep.spec, params={"replications": 4}
        )
        assert job_digest(sweep) != job_digest(validate)

    def test_malformed_spec_fails_at_submission(self):
        bad = JobSpec(kind="sweep", spec={"diagram": {}}, params={})
        with pytest.raises(SpecError):
            job_digest(bad)

    def test_id_shape(self):
        digest = job_digest(sweep_spec())
        assert digest.startswith("job-")
        assert len(digest) == len("job-") + 32


class TestCheckpoint:
    def test_round_trip(self):
        original = Checkpoint("job-abc", "sweep", 10, [0.9, 0.99])
        restored = Checkpoint.from_json(original.to_json())
        assert restored == original

    def test_values_restored_as_floats(self):
        restored = Checkpoint.from_json(
            json.dumps({"job_id": "j", "kind": "sweep",
                        "total": 2, "values": [1, 2]})
        )
        assert restored.values == [1.0, 2.0]
        assert all(isinstance(v, float) for v in restored.values)


class TestResultDigest:
    def test_key_order_invariant(self):
        assert result_digest({"a": 1, "b": 2}) == result_digest(
            {"b": 2, "a": 1}
        )

    def test_value_sensitive(self):
        assert result_digest({"a": 1}) != result_digest({"a": 2})


class TestDistributionFromDict:
    def test_uniform(self):
        dist = distribution_from_dict(
            {"type": "uniform", "low": 1.0, "high": 2.0}
        )
        assert isinstance(dist, Uniform)

    def test_lognormal(self):
        dist = distribution_from_dict(
            {"type": "lognormal", "mu": 10.8, "sigma": 0.4}
        )
        assert isinstance(dist, Lognormal)

    def test_unknown_type_rejected(self):
        with pytest.raises(SpecError, match="unknown distribution"):
            distribution_from_dict({"type": "cauchy"})

    def test_bad_arguments_rejected(self):
        with pytest.raises(SpecError, match="bad arguments"):
            distribution_from_dict({"type": "uniform", "nope": 1.0})

    def test_missing_type_rejected(self):
        with pytest.raises(SpecError, match="'type'"):
            distribution_from_dict({"low": 1.0})
