"""Failure classification and the deterministic backoff schedule."""

from repro.errors import (
    DatabaseError,
    EngineError,
    ModelError,
    ParameterError,
    SolverError,
    SpecError,
)
from repro.jobs import backoff_delay, classify, is_permanent


class TestClassification:
    def test_spec_family_is_permanent(self):
        for error in (
            SpecError("bad spec"),
            ParameterError("bad parameter"),
            ModelError("bad model"),
            DatabaseError("unknown part"),
            SolverError("singular matrix"),
        ):
            assert is_permanent(error)
            assert classify(error) == "permanent"

    def test_engine_and_unknown_failures_are_transient(self):
        for error in (
            EngineError("task timed out"),
            OSError("disk went away"),
            RuntimeError("???"),
        ):
            assert not is_permanent(error)
            assert classify(error) == "transient"


class TestBackoff:
    def test_deterministic_for_key_and_attempt(self):
        assert backoff_delay(2, key="job-a") == backoff_delay(2, key="job-a")

    def test_jitter_varies_with_key(self):
        assert backoff_delay(2, key="job-a") != backoff_delay(2, key="job-b")

    def test_exponential_growth_within_jitter_bounds(self):
        for attempt in range(1, 6):
            raw = 0.5 * 2 ** (attempt - 1)
            delay = backoff_delay(attempt, key="job-x")
            assert 0.5 * raw <= delay < raw

    def test_capped(self):
        assert backoff_delay(40, key="job-x", cap=60.0) < 60.0

    def test_attempt_zero_is_immediate(self):
        assert backoff_delay(0) == 0.0
