"""Cross-validation integration tests (the paper's Section 5 loop).

Three fully independent evaluation paths must agree on every generated
model: the production solver, the SHARPE-like independent analytic
path, and two Monte Carlo routes (the matrix-free life-cycle simulator
and the semi-Markov trajectory embedding).
"""

import pytest

from repro.core import GlobalParameters, generate_block_chain, translate
from repro.library import datacenter_model, workgroup_model
from repro.markov import steady_state_availability
from repro.semimarkov import (
    SemiMarkovProcess,
    semi_markov_availability,
    simulate_interval_availability,
)
from repro.units import availability_to_yearly_downtime_minutes
from repro.validation import sharpe_availability, simulate_block_availability

PAPER_TOLERANCE = 0.002  # "relative errors in yearly downtime ... < 0.2%"


class TestAnalyticPathsAgreeWithinPaperTolerance:
    @pytest.mark.parametrize("recovery", ["transparent", "nontransparent"])
    @pytest.mark.parametrize("repair", ["transparent", "nontransparent"])
    def test_yearly_downtime_relative_error(
        self, recovery, repair, stress_params, globals_default
    ):
        p = stress_params.with_changes(recovery=recovery, repair=repair)
        chain = generate_block_chain(p, globals_default)
        production = steady_state_availability(chain)
        independent = sharpe_availability(chain)
        downtime_a = availability_to_yearly_downtime_minutes(production)
        downtime_b = availability_to_yearly_downtime_minutes(independent)
        assert abs(downtime_a - downtime_b) / downtime_a < PAPER_TOLERANCE

    def test_semi_markov_embedding_agrees(
        self, stress_params, globals_default
    ):
        chain = generate_block_chain(stress_params, globals_default)
        embedded = SemiMarkovProcess.from_markov_chain(chain)
        assert semi_markov_availability(embedded) == pytest.approx(
            steady_state_availability(chain), rel=1e-9
        )


class TestMonteCarloPathsAgree:
    def test_two_independent_simulators_and_analytic(
        self, stress_params, globals_default
    ):
        chain = generate_block_chain(stress_params, globals_default)
        analytic = steady_state_availability(chain)

        lifecycle = simulate_block_availability(
            stress_params, globals_default,
            horizon=40_000.0, replications=80, seed=11,
        )
        trajectory = simulate_interval_availability(
            SemiMarkovProcess.from_markov_chain(chain),
            horizon=40_000.0, replications=80, seed=12,
        )
        assert lifecycle.contains(analytic)
        assert trajectory.contains(analytic)


class TestReliabilityCrossValidation:
    def test_mttf_analytic_vs_trajectory_simulation(
        self, stress_params, globals_default
    ):
        """The reliability model's MTTF from the fundamental matrix must
        match the mean first-passage time measured on simulated
        trajectories of the same chain."""
        from repro.markov import mean_time_to_failure
        from repro.semimarkov import (
            SemiMarkovProcess,
            simulate_time_to_failure,
        )

        chain = generate_block_chain(stress_params, globals_default)
        analytic = mean_time_to_failure(chain)
        embedded = SemiMarkovProcess.from_markov_chain(chain)
        simulated = simulate_time_to_failure(
            embedded, replications=400, seed=29
        )
        assert simulated.contains(analytic)

    def test_reliability_curve_vs_empirical_survival(
        self, stress_params, globals_default
    ):
        """R(t) from uniformization vs the empirical survival function
        of simulated times-to-failure."""
        import numpy as np

        from repro.markov import reliability_at
        from repro.semimarkov import SemiMarkovProcess
        from repro.semimarkov.simulation import _one_ttf_run

        chain = generate_block_chain(stress_params, globals_default)
        embedded = SemiMarkovProcess.from_markov_chain(chain)
        rng = np.random.default_rng(31)
        samples = np.array([
            _one_ttf_run(embedded, embedded.state_names[0], rng, 10**7)
            for _ in range(600)
        ])
        for t in (10.0, 50.0, 200.0):
            empirical = float((samples > t).mean())
            analytic = reliability_at(chain, t)
            half_width = 2.58 * np.sqrt(
                max(empirical * (1 - empirical), 1e-4) / samples.size
            )
            assert abs(analytic - empirical) < half_width + 0.01


class TestWholeModelConsistency:
    @pytest.mark.parametrize(
        "factory", [workgroup_model, datacenter_model],
        ids=["workgroup", "datacenter"],
    )
    def test_solver_methods_agree_on_system(self, factory):
        model = factory()
        availabilities = {
            method: translate(model, method=method).availability
            for method in ("direct", "gth")
        }
        values = list(availabilities.values())
        assert values[0] == pytest.approx(values[1], rel=1e-9)

    def test_block_product_equals_system(self):
        from repro.core.translator import _block_contribution

        solution = translate(datacenter_model())
        product = 1.0
        for block in solution.blocks:
            product *= _block_contribution(block)
        assert solution.availability == pytest.approx(product, rel=1e-12)
