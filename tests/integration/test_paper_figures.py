"""Structure-level reproduction of the paper's figures.

Figure 1-2: the Data Center System diagram/block model.
Figure 3: Markov Model Type 0.
Figure 4: Markov Model Type 3 (N=2, K=1).
"""

import pytest

from repro.core import (
    BlockParameters,
    GlobalParameters,
    generate_block_chain,
)
from repro.library import datacenter_model
from repro.render import render_model_tree


class TestFigures1And2:
    def test_level_structure(self):
        model = datacenter_model()
        assert model.depth() == 2 or model.depth() == 3
        # Root diagram is level 1 with four dark (subdiagram) blocks.
        assert len(model.root) == 4
        assert all(block.has_subdiagram for block in model.root)

    def test_tree_rendering_mentions_levels(self):
        text = render_model_tree(datacenter_model())
        assert "level 1 diagram" in text
        assert "level 2 diagram" in text


class TestFigure3:
    """Type 0: Ok / Logistic / Repair / ServiceError / Reboot."""

    def test_states_and_reward_assignment(self):
        p = BlockParameters(
            name="fru", mtbf_hours=1e5, transient_fit=1_000.0,
            p_correct_diagnosis=0.95,
        )
        chain = generate_block_chain(p, GlobalParameters())
        rewards = {s.name: s.reward for s in chain}
        assert rewards == {
            "Ok": 1.0, "Logistic": 0.0, "Repair": 0.0,
            "ServiceError": 0.0, "Reboot": 0.0,
        }


class TestFigure4:
    """Type 3 (nontransparent recovery, transparent repair), N=2, K=1."""

    @pytest.fixture
    def chain(self):
        p = BlockParameters(
            name="fru", quantity=2, min_required=1,
            mtbf_hours=1e5, transient_fit=1_000.0,
            p_latent_fault=0.05, p_spf=0.02,
            p_correct_diagnosis=0.95,
            recovery="nontransparent", repair="transparent",
        )
        return generate_block_chain(p, GlobalParameters())

    def test_paper_named_states_present(self, chain):
        # The figure's states: Ok, AR1, SPF, Latent1, PF1, TF1, TF2,
        # PF2, ServiceError (our generator levels the SPF/SE names).
        for name in ("Ok", "AR1", "SPF1", "Latent1", "PF1",
                      "TF1", "TF2", "PF2", "ServiceError1"):
            assert name in chain, f"{name} missing from generated chain"

    def test_prose_walkthrough(self, chain):
        """Follow Section 4's narrative arc by arc."""
        # "A detected permanent fault triggers an AR process (Ok AR1)."
        assert chain.rate("Ok", "AR1") > 0
        # "If the AR works, the system goes into a degraded mode
        # (AR1 PF1)."
        assert chain.rate("AR1", "PF1") > 0
        # "Otherwise, it goes into the single point of failure state
        # (AR1 SPF) where it stays for a period of time (Tspf)."
        assert chain.rate("AR1", "SPF1") > 0
        # "A non detected permanent fault (latent fault) changes the
        # system to another degraded mode (Ok Latent1)."
        assert chain.rate("Ok", "Latent1") > 0
        assert chain.state("Latent1").is_up
        # "When the latent fault is detected after a delay of MTTDLF,
        # the system has to go through the AR process again."
        assert chain.rate("Latent1", "AR1") > 0
        # "If the repair ... is successful, the system goes back to the
        # normal state (PF1 Ok). Otherwise ... the service error state."
        assert chain.rate("PF1", "Ok") > 0
        assert chain.rate("PF1", "ServiceError1") > 0
        # "If the second fault occurs while the system stays in the
        # degraded mode (PF1 or Latent1), it goes to state PF2 if the
        # fault is permanent or to TF2 if the fault is transient."
        assert chain.rate("PF1", "PF2") > 0
        assert chain.rate("PF1", "TF2") > 0
        assert chain.rate("Latent1", "PF2") > 0
        assert chain.rate("Latent1", "TF2") > 0
        # "In PF2, an immediate service call is placed."
        assert chain.rate("PF2", "PF1") > 0
        # "the first fault (Ok TF1) ... the system clears the fault by
        # an AR process."
        assert chain.rate("Ok", "TF1") > 0
        assert chain.rate("TF1", "Ok") > 0

    def test_downtime_states_have_zero_reward(self, chain):
        for name in ("AR1", "SPF1", "TF1", "TF2", "PF2", "ServiceError1"):
            assert not chain.state(name).is_up

    def test_degraded_states_count_as_up(self, chain):
        # Reward 1 on PF1/Latent1: degraded but operational.
        assert chain.state("PF1").is_up
        assert chain.state("Latent1").is_up
