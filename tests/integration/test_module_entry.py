"""The ``python -m repro`` entry point must work as a subprocess."""

import subprocess
import sys
from pathlib import Path

import pytest

from repro import save_spec, workgroup_model


@pytest.fixture(scope="module")
def spec_path(tmp_path_factory):
    path = tmp_path_factory.mktemp("entry") / "model.json"
    save_spec(workgroup_model(), path)
    return str(path)


def run_cli(*args):
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True,
        text=True,
        timeout=120,
    )


class TestModuleEntry:
    def test_solve(self, spec_path):
        result = run_cli("solve", spec_path)
        assert result.returncode == 0
        assert "availability" in result.stdout

    def test_help(self):
        result = run_cli("--help")
        assert result.returncode == 0
        assert "rascad" in result.stdout

    def test_version(self):
        from repro import __version__

        result = run_cli("--version")
        assert result.returncode == 0
        assert __version__ in result.stdout

    def test_error_path_exit_code(self):
        result = run_cli("solve", "/nonexistent/spec.json")
        assert result.returncode == 2
        assert "error:" in result.stderr

    def test_piped_output_no_traceback(self, spec_path):
        # BrokenPipeError from a closing pager must not produce a
        # traceback (simulated by closing stdout early via head).
        command = (
            f"{sys.executable} -m repro budget {spec_path!r} | head -2"
        )
        result = subprocess.run(
            command, shell=True, capture_output=True, text=True, timeout=120
        )
        assert "Traceback" not in result.stderr
