"""Tests for the spec files shipped in examples/specs/."""

from pathlib import Path

import pytest

from repro import builtin_database, compute_measures, load_spec, translate
from repro.cli import main

SPECS_DIR = Path(__file__).resolve().parents[2] / "examples" / "specs"
SPECS = sorted(SPECS_DIR.glob("*.json"))


@pytest.mark.parametrize("spec", SPECS, ids=lambda p: p.stem)
class TestShippedSpecs:
    def test_loads_and_solves(self, spec):
        model = load_spec(spec, database=builtin_database())
        measures = compute_measures(translate(model))
        assert 0.99 < measures.availability < 1.0

    def test_cli_accepts_it(self, spec, capsys):
        assert main(["solve", str(spec)]) == 0
        assert "availability" in capsys.readouterr().out

    def test_round_trips(self, spec, tmp_path):
        from repro import model_to_spec, parse_spec

        model = load_spec(spec, database=builtin_database())
        restored = parse_spec(model_to_spec(model))
        assert translate(restored).availability == pytest.approx(
            translate(model).availability, rel=1e-12
        )


def test_branch_office_spec_exists():
    assert (SPECS_DIR / "branch_office.json").exists()


def test_branch_office_uses_gui_labels():
    text = (SPECS_DIR / "branch_office.json").read_text()
    # The shipped spec demonstrates the paper's GUI-label vocabulary.
    assert "Minimum Quantity Required" in text
    assert "Automatic Recovery Scenario" in text
    assert "MTTR Part 1: Diagnosis Time" in text
