"""Scale guards: the tool must stay interactive at realistic sizes.

RAScad was an interactive web tool; a model edit had to re-solve in
seconds.  These tests pin rough wall-clock budgets (generous enough to
be robust on slow CI machines) so a regression that makes solving
quadratically slower fails loudly.
"""

import time

import pytest

from repro import (
    BlockParameters,
    GlobalParameters,
    compute_measures,
    datacenter_model,
    generate_block_chain,
    translate,
)
from repro.markov import steady_state_availability


def elapsed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


class TestScale:
    def test_deep_redundancy_chain_solves_fast(self):
        parameters = BlockParameters(
            name="big", quantity=129, min_required=1,
            mtbf_hours=100_000.0, transient_fit=1_000.0,
            p_latent_fault=0.05, p_spf=0.01,
            recovery="nontransparent", repair="nontransparent",
            p_correct_diagnosis=0.95,
        )
        chain, generation_time = elapsed(
            lambda: generate_block_chain(parameters, GlobalParameters())
        )
        assert chain.n_states > 800
        _, solve_time = elapsed(
            lambda: steady_state_availability(chain)
        )
        assert generation_time < 10.0
        assert solve_time < 10.0

    def test_datacenter_resolve_is_interactive(self):
        model = datacenter_model()
        _, solve_time = elapsed(lambda: translate(model))
        assert solve_time < 5.0

    def test_full_measures_within_budget(self):
        solution = translate(datacenter_model())
        _, measure_time = elapsed(
            lambda: compute_measures(solution, grid_points=17)
        )
        assert measure_time < 30.0

    def test_wide_fanout_model(self):
        """100 sibling blocks in one diagram solve fine."""
        from repro.core import DiagramBlockModel, MGBlock, MGDiagram

        blocks = [
            MGBlock(BlockParameters(
                name=f"part-{index}", mtbf_hours=1e6 + index,
            ))
            for index in range(100)
        ]
        model = DiagramBlockModel(MGDiagram("wide", blocks))
        solution, solve_time = elapsed(lambda: translate(model))
        assert solve_time < 10.0
        assert 0.99 < solution.availability < 1.0
        assert len(solution.blocks) == 100
