"""Every example script must run clean end-to-end.

Examples are documentation; a bit-rotted example is worse than none.
Each is executed in-process via runpy with a patched ``__name__`` so
its ``main()`` actually runs.
"""

import runpy
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


@pytest.mark.parametrize(
    "script", EXAMPLES, ids=lambda path: path.stem
)
def test_example_runs_clean(script, capsys):
    runpy.run_path(str(script), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{script.name} produced no output"


def test_expected_example_set_present():
    names = {path.stem for path in EXAMPLES}
    assert {
        "quickstart",
        "datacenter_availability",
        "design_comparison",
        "field_validation",
        "gmb_custom_model",
        "capacity_and_risk",
    } <= names
