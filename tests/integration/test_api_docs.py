"""The committed API reference must match the code exactly."""

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]


def test_api_docs_in_sync():
    sys.path.insert(0, str(REPO_ROOT / "tools"))
    try:
        import generate_api_docs
    finally:
        sys.path.pop(0)
    generated = generate_api_docs.generate()
    committed = (REPO_ROOT / "docs" / "api.md").read_text()
    assert generated == committed, (
        "docs/api.md is stale; run `python tools/generate_api_docs.py`"
    )


def test_every_public_export_documented():
    sys.path.insert(0, str(REPO_ROOT / "tools"))
    try:
        import generate_api_docs
    finally:
        sys.path.pop(0)
    text = generate_api_docs.generate()
    assert "(undocumented)" not in text, (
        "every public export needs a docstring"
    )
