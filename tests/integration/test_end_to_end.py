"""End-to-end integration tests: spec text -> model -> measures -> report."""

import json

import pytest

from repro import (
    builtin_database,
    compute_measures,
    load_spec,
    model_report,
    model_to_spec,
    parse_spec,
    translate,
)
from repro.library import datacenter_model

SPEC_TEXT = """
{
  "name": "Branch Office System",
  "globals": {
    "Reboot Time (Tboot)": 8.0,
    "MTTM": 24.0,
    "MTTRFID": 8.0,
    "Mission Time": 8760.0
  },
  "diagram": {
    "name": "Branch Office System",
    "blocks": [
      {
        "name": "Server",
        "subdiagram": {
          "name": "Server Internals",
          "blocks": [
            {"name": "Board", "part_number": "SYSBD-01"},
            {"name": "CPU", "part_number": "CPU-400",
             "Quantity": 2, "Minimum Quantity Required": 1,
             "Automatic Recovery Scenario": "nontransparent",
             "Repair Scenario": "transparent",
             "AR/Failover Time": 10.0,
             "Probability of SPF during AR (Pspf)": 0.01},
            {"name": "PSU", "part_number": "PSU-650",
             "Quantity": 2, "Minimum Quantity Required": 1,
             "Automatic Recovery Scenario": "transparent",
             "Repair Scenario": "transparent"}
          ]
        }
      },
      {"name": "Disk Array", "part_number": "HDD-36G",
       "Quantity": 4, "Minimum Quantity Required": 3,
       "Automatic Recovery Scenario": "transparent",
       "Repair Scenario": "transparent"}
    ]
  }
}
"""


class TestSpecToMeasures:
    def test_full_pipeline(self):
        model = load_spec(SPEC_TEXT, database=builtin_database())
        solution = translate(model)
        measures = compute_measures(solution)
        assert 0.99 < measures.availability < 1.0
        assert measures.yearly_downtime_minutes > 0
        assert 0 < measures.reliability_at_mission < 1

    def test_gui_labels_resolved(self):
        model = load_spec(SPEC_TEXT, database=builtin_database())
        cpu = model.find("Branch Office System/Server/CPU")
        assert cpu.parameters.quantity == 2
        assert cpu.parameters.ar_time_minutes == 10.0

    def test_database_defaults_applied(self):
        model = load_spec(SPEC_TEXT, database=builtin_database())
        board = model.find("Branch Office System/Server/Board")
        record = builtin_database().lookup("SYSBD-01")
        assert board.parameters.mtbf_hours == record.mtbf_hours

    def test_round_trip_stability(self):
        model = load_spec(SPEC_TEXT, database=builtin_database())
        solution_a = translate(model)
        restored = parse_spec(model_to_spec(model))
        solution_b = translate(restored)
        assert solution_a.availability == pytest.approx(
            solution_b.availability, rel=1e-12
        )

    def test_report_generation(self):
        model = load_spec(SPEC_TEXT, database=builtin_database())
        report = model_report(model)
        assert "Branch Office System" in report
        assert "CPU" in report


class TestFileWorkflow:
    def test_share_via_file(self, tmp_path):
        """The paper's 'file sharing across networks' workflow."""
        from repro import save_spec

        path = tmp_path / "shared_model.json"
        save_spec(datacenter_model(), path)
        # A colleague loads it and gets identical results.
        theirs = load_spec(path)
        assert translate(theirs).availability == pytest.approx(
            translate(datacenter_model()).availability, rel=1e-12
        )

    def test_spec_file_is_readable_json(self, tmp_path):
        from repro import save_spec

        path = tmp_path / "m.json"
        save_spec(datacenter_model(), path)
        payload = json.loads(path.read_text())
        assert payload["name"] == "Data Center System"
