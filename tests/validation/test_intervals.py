"""The shared CI math: chi-square closed forms, Garwood coverage."""

import math

import pytest

from repro.errors import SolverError
from repro.core import translate
from repro.library import e10000_model
from repro.validation.field_data import generate_field_log
from repro.validation.intervals import (
    availability_halfwidth,
    chi2_quantile,
    downtime_std,
    poisson_rate_interval,
    regularized_gamma_p,
)


class TestRegularizedGamma:
    def test_boundary_values(self):
        assert regularized_gamma_p(1.0, 0.0) == 0.0
        assert regularized_gamma_p(3.0, 1e9) == pytest.approx(1.0)

    def test_exponential_closed_form(self):
        # P(1, x) = 1 - exp(-x), on both sides of the series/CF split.
        for x in (0.1, 0.5, 1.0, 3.0, 10.0):
            assert regularized_gamma_p(1.0, x) == pytest.approx(
                1.0 - math.exp(-x), abs=1e-12
            )

    def test_erlang_closed_form(self):
        # P(2, x) = 1 - (1 + x) exp(-x): chi-square with 4 dof.
        for x in (0.2, 2.0, 7.5):
            assert regularized_gamma_p(2.0, x) == pytest.approx(
                1.0 - (1.0 + x) * math.exp(-x), abs=1e-12
            )

    def test_invalid_arguments_are_rejected(self):
        with pytest.raises(SolverError):
            regularized_gamma_p(0.0, 1.0)
        with pytest.raises(SolverError):
            regularized_gamma_p(1.0, -1.0)


class TestChiSquareQuantile:
    def test_two_dof_closed_form(self):
        # With 2 dof the quantile is exactly -2 ln(1 - p).
        for p in (0.025, 0.5, 0.9, 0.975, 0.995):
            assert chi2_quantile(p, 2) == pytest.approx(
                -2.0 * math.log(1.0 - p), rel=1e-9
            )

    def test_known_table_values(self):
        # Standard chi-square table entries.
        assert chi2_quantile(0.95, 1) == pytest.approx(3.841, abs=2e-3)
        assert chi2_quantile(0.95, 10) == pytest.approx(18.307, abs=2e-3)
        assert chi2_quantile(0.975, 8) == pytest.approx(17.535, abs=2e-3)
        assert chi2_quantile(0.025, 8) == pytest.approx(2.180, abs=2e-3)

    def test_quantile_inverts_the_cdf(self):
        for dof in (1, 2, 7, 40):
            for p in (0.1, 0.5, 0.99):
                x = chi2_quantile(p, dof)
                assert regularized_gamma_p(
                    dof / 2.0, x / 2.0
                ) == pytest.approx(p, abs=1e-9)

    def test_zero_probability_is_zero(self):
        assert chi2_quantile(0.0, 5) == 0.0

    def test_invalid_arguments_are_rejected(self):
        with pytest.raises(SolverError):
            chi2_quantile(1.0, 2)
        with pytest.raises(SolverError):
            chi2_quantile(0.5, 0)


class TestPoissonRateInterval:
    def test_zero_events_lower_bound_is_zero(self):
        low, high = poisson_rate_interval(0, 1_000.0)
        assert low == 0.0
        # Upper bound is chi2(0.975, 2) / 2T = -ln(0.025) / T.
        assert high == pytest.approx(-math.log(0.025) / 1_000.0, rel=1e-9)

    def test_interval_brackets_the_point_estimate(self):
        for n in (1, 5, 40):
            low, high = poisson_rate_interval(n, 10_000.0)
            assert low < n / 10_000.0 < high

    def test_interval_tightens_with_evidence(self):
        narrow = poisson_rate_interval(100, 100_000.0)
        wide = poisson_rate_interval(1, 1_000.0)
        assert (narrow[1] - narrow[0]) / (100 / 100_000.0) < (
            (wide[1] - wide[0]) / (1 / 1_000.0)
        )

    def test_garwood_coverage_on_simulated_truth(self):
        # Deterministic pseudo-experiment: Poisson draws at a known
        # rate; the 95 % interval must cover the truth ~95 % of the
        # time (here: all but a few of 200 replications).
        import numpy as np

        rng = np.random.default_rng(42)
        rate, exposure = 2e-3, 20_000.0
        misses = 0
        for _ in range(200):
            n = rng.poisson(rate * exposure)
            low, high = poisson_rate_interval(int(n), exposure)
            if not low <= rate <= high:
                misses += 1
        assert misses <= 200 * 0.10

    def test_invalid_arguments_are_rejected(self):
        with pytest.raises(SolverError):
            poisson_rate_interval(-1, 100.0)
        with pytest.raises(SolverError):
            poisson_rate_interval(3, 0.0)
        with pytest.raises(SolverError):
            poisson_rate_interval(3, 100.0, confidence=1.0)


class TestDowntimeStd:
    def test_empty_and_singleton_logs(self):
        assert downtime_std([]) == 0.0
        assert downtime_std([4.0]) == 4.0

    def test_renewal_reward_formula(self):
        durations = [1.0, 2.0, 3.0]
        mean = 2.0
        variance = 1.0  # sample variance with n - 1
        assert downtime_std(durations) == pytest.approx(
            math.sqrt(3 * (variance + mean * mean))
        )

    def test_halfwidth_scales_inversely_with_the_window(self):
        durations = [2.0, 3.0, 4.0]
        assert availability_halfwidth(
            durations, 10_000.0
        ) == pytest.approx(
            2.0 * availability_halfwidth(durations, 20_000.0)
        )
        with pytest.raises(SolverError):
            availability_halfwidth(durations, 0.0)


class TestMeadepIntegration:
    def test_field_estimate_quotes_the_shared_mtbf_bounds(self):
        solution = translate(e10000_model())
        log = generate_field_log(solution, window_hours=10_950.0, seed=11)
        estimate = log.estimate()
        uptime = log.window_hours - estimate.total_downtime_hours
        low_rate, high_rate = poisson_rate_interval(
            estimate.n_outages, uptime
        )
        assert estimate.mtbf_low_hours == pytest.approx(1.0 / high_rate)
        assert estimate.mtbf_high_hours == pytest.approx(1.0 / low_rate)
        assert estimate.contains_mtbf(estimate.mtbf_hours)
        assert not estimate.contains_mtbf(estimate.mtbf_low_hours * 0.5)
