"""Tests for the independent SHARPE-like analytic path."""

import pytest

from repro.core import GlobalParameters, generate_block_chain
from repro.errors import SolverError
from repro.gmb import MarkovBuilder
from repro.markov import MarkovChain, steady_state, steady_state_availability
from repro.validation import sharpe_availability, sharpe_steady_state


class TestAgreementWithProductionPath:
    def test_two_state(self):
        chain = (
            MarkovBuilder()
            .up("Ok")
            .down("Down")
            .arc("Ok", "Down", 0.01)
            .arc("Down", "Ok", 0.8)
            .build()
        )
        assert sharpe_availability(chain) == pytest.approx(
            steady_state_availability(chain), rel=1e-9
        )

    def test_every_generated_model_type(
        self, stress_params, globals_default
    ):
        for recovery in ("transparent", "nontransparent"):
            for repair in ("transparent", "nontransparent"):
                p = stress_params.with_changes(
                    recovery=recovery, repair=repair
                )
                chain = generate_block_chain(p, globals_default)
                assert sharpe_availability(chain) == pytest.approx(
                    steady_state_availability(chain), rel=1e-7
                )

    def test_stiff_realistic_chain_statewise(
        self, redundant_params, globals_default
    ):
        chain = generate_block_chain(redundant_params, globals_default)
        production = steady_state(chain)
        independent = sharpe_steady_state(chain)
        for name, value in production.items():
            assert independent[name] == pytest.approx(
                value, rel=1e-6, abs=1e-15
            )

    def test_single_state(self):
        chain = MarkovChain()
        chain.add_state("only")
        assert sharpe_steady_state(chain) == {"only": 1.0}

    def test_empty_chain_rejected(self):
        with pytest.raises(SolverError):
            sharpe_steady_state(MarkovChain())
