"""Tests for the event-level MG life-cycle simulator.

These are the generator's independent oracle: the simulator never sees
a generator matrix, so agreement here validates the chain *structure*,
not just the numerics.
"""

import pytest

from repro.core import GlobalParameters, generate_block_chain, translate
from repro.errors import SolverError
from repro.library import workgroup_model
from repro.markov import steady_state_availability
from repro.validation import (
    simulate_block_availability,
    simulate_system_availability,
)

HORIZON = 50_000.0
REPS = 60


class TestType0Agreement:
    def test_matches_analytic(self, globals_default):
        from repro.core import BlockParameters

        p = BlockParameters(
            name="u", quantity=2, min_required=2,
            mtbf_hours=5_000.0, transient_fit=3e5,
            p_correct_diagnosis=0.9,
        )
        analytic = steady_state_availability(
            generate_block_chain(p, globals_default)
        )
        sim = simulate_block_availability(
            p, globals_default, horizon=HORIZON, replications=REPS, seed=1
        )
        assert sim.contains(analytic)

    def test_zero_response_time(self, globals_default):
        from repro.core import BlockParameters

        p = BlockParameters(
            name="u", mtbf_hours=2_000.0, service_response_hours=0.0,
        )
        analytic = steady_state_availability(
            generate_block_chain(p, globals_default)
        )
        sim = simulate_block_availability(
            p, globals_default, horizon=HORIZON, replications=REPS, seed=2
        )
        assert sim.contains(analytic)


class TestRedundantAgreement:
    @pytest.mark.parametrize("recovery", ["transparent", "nontransparent"])
    @pytest.mark.parametrize("repair", ["transparent", "nontransparent"])
    def test_all_four_types(
        self, recovery, repair, stress_params, globals_default
    ):
        p = stress_params.with_changes(recovery=recovery, repair=repair)
        analytic = steady_state_availability(
            generate_block_chain(p, globals_default)
        )
        sim = simulate_block_availability(
            p, globals_default, horizon=HORIZON, replications=REPS, seed=3
        )
        assert sim.contains(analytic), (
            f"type ({recovery}, {repair}): analytic {analytic:.6f} "
            f"outside [{sim.low:.6f}, {sim.high:.6f}]"
        )

    def test_deeper_redundancy(self, stress_params, globals_default):
        p = stress_params.with_changes(quantity=4, min_required=2)
        analytic = steady_state_availability(
            generate_block_chain(p, globals_default)
        )
        sim = simulate_block_availability(
            p, globals_default, horizon=HORIZON, replications=REPS, seed=4
        )
        assert sim.contains(analytic)

    def test_no_latents_no_transients(self, stress_params, globals_default):
        p = stress_params.with_changes(
            p_latent_fault=0.0, transient_fit=0.0
        )
        analytic = steady_state_availability(
            generate_block_chain(p, globals_default)
        )
        sim = simulate_block_availability(
            p, globals_default, horizon=HORIZON, replications=REPS, seed=5
        )
        assert sim.contains(analytic)


class TestSimulationHygiene:
    def test_seeding_reproducible(self, stress_params, globals_default):
        a = simulate_block_availability(
            stress_params, globals_default, horizon=5_000.0,
            replications=10, seed=6,
        )
        b = simulate_block_availability(
            stress_params, globals_default, horizon=5_000.0,
            replications=10, seed=6,
        )
        assert a.mean == b.mean

    def test_bad_horizon_rejected(self, stress_params, globals_default):
        with pytest.raises(SolverError):
            simulate_block_availability(
                stress_params, globals_default, horizon=0.0
            )

    def test_half_width_shrinks_with_replications(
        self, stress_params, globals_default
    ):
        small = simulate_block_availability(
            stress_params, globals_default, horizon=5_000.0,
            replications=20, seed=7,
        )
        large = simulate_block_availability(
            stress_params, globals_default, horizon=5_000.0,
            replications=200, seed=7,
        )
        assert large.half_width < small.half_width


class TestValidationPower:
    """The cross-check must be able to *fail*: if the generator wired a
    materially wrong rate, the simulator should expose it."""

    def test_detects_wrong_repair_rate(self, stress_params, globals_default):
        # Pretend the generator forgot MTTM in the deferred-repair rate
        # (a plausible implementation bug): the analytic availability
        # of that wrong chain must fall outside the simulation CI.
        wrong_globals = globals_default.with_changes(mttm_hours=0.0)
        wrong_chain = generate_block_chain(stress_params, wrong_globals)
        wrong_analytic = steady_state_availability(wrong_chain)
        sim = simulate_block_availability(
            stress_params, globals_default,
            horizon=HORIZON, replications=REPS, seed=9,
        )
        assert not sim.contains(wrong_analytic)

    def test_detects_missing_service_error_path(
        self, stress_params, globals_default
    ):
        # A generator that forgot the imperfect-diagnosis branch would
        # overstate availability by a first-order amount here (10% of
        # repairs stretch to MTTRFID).
        perfect = stress_params.with_changes(p_correct_diagnosis=1.0)
        wrong_chain = generate_block_chain(perfect, globals_default)
        wrong_analytic = steady_state_availability(wrong_chain)
        sim = simulate_block_availability(
            stress_params, globals_default,
            horizon=HORIZON, replications=REPS, seed=10,
        )
        assert not sim.contains(wrong_analytic)


class TestSystemSimulation:
    def test_whole_model_agreement(self):
        solution = translate(workgroup_model())
        sim = simulate_system_availability(
            solution, horizon=30_000.0, replications=40, seed=8
        )
        assert sim.contains(solution.availability)
