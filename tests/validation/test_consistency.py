"""Tests for the one-call validation protocol."""

import pytest

from repro.core import translate
from repro.library import workgroup_model
from repro.validation import validate_model


@pytest.fixture(scope="module")
def report():
    return validate_model(
        workgroup_model(),
        simulation_horizon=20_000.0,
        simulation_replications=30,
        field_windows=8,
        seed=0,
    )


class TestValidateModel:
    def test_all_checks_pass_on_library_model(self, report):
        assert report.passed, report.summary()

    def test_three_checks_run(self, report):
        names = [check.name for check in report.checks]
        assert names == ["independent-analytic", "monte-carlo", "field-loop"]

    def test_availability_matches_translate(self, report):
        assert report.availability == pytest.approx(
            translate(workgroup_model()).availability, rel=1e-12
        )

    def test_summary_format(self, report):
        text = report.summary()
        assert "validation of 'Workgroup Server'" in text
        assert "[PASS] independent-analytic" in text
        assert "ALL CHECKS PASS" in text

    def test_deterministic_given_seed(self):
        a = validate_model(
            workgroup_model(), simulation_replications=10,
            field_windows=4, seed=5,
        )
        b = validate_model(
            workgroup_model(), simulation_replications=10,
            field_windows=4, seed=5,
        )
        assert a.checks == b.checks


class TestCliDeepValidate:
    def test_deep_flag(self, tmp_path, capsys):
        from repro import save_spec
        from repro.cli import main

        path = tmp_path / "wg.json"
        save_spec(workgroup_model(), path)
        code = main([
            "validate", str(path), "--deep",
            "--replications", "20", "--horizon", "20000",
        ])
        out = capsys.readouterr().out
        assert "independent-analytic" in out
        assert "field-loop" in out
        assert code == 0
