"""Tests for the MEADEP-style field-data estimator."""

import pytest

from repro.errors import SolverError
from repro.validation import OutageEvent, estimate_from_log
from repro.validation.meadep import merge_intervals


class TestOutageEvent:
    def test_end_hour(self):
        event = OutageEvent(start_hour=10.0, duration_hours=2.0)
        assert event.end_hour == 12.0

    def test_negative_start_rejected(self):
        with pytest.raises(SolverError):
            OutageEvent(start_hour=-1.0, duration_hours=1.0)

    def test_nonpositive_duration_rejected(self):
        with pytest.raises(SolverError):
            OutageEvent(start_hour=0.0, duration_hours=0.0)


class TestEstimation:
    def test_clean_log(self):
        events = [
            OutageEvent(100.0, 2.0, "disk"),
            OutageEvent(500.0, 1.0, "os"),
            OutageEvent(900.0, 3.0, "board"),
        ]
        estimate = estimate_from_log(events, window_hours=1_000.0)
        assert estimate.n_outages == 3
        assert estimate.total_downtime_hours == pytest.approx(6.0)
        assert estimate.availability == pytest.approx(0.994)
        assert estimate.mttr_hours == pytest.approx(2.0)
        assert estimate.mtbf_hours == pytest.approx(994.0 / 3.0)

    def test_empty_log_is_perfect(self):
        estimate = estimate_from_log([], window_hours=1_000.0)
        assert estimate.availability == 1.0
        assert estimate.n_outages == 0
        assert estimate.mtbf_hours == float("inf")

    def test_confidence_interval_contains_point(self):
        events = [OutageEvent(float(i * 100), 1.0) for i in range(5)]
        estimate = estimate_from_log(events, window_hours=1_000.0)
        assert estimate.availability_low <= estimate.availability
        assert estimate.availability_high >= estimate.availability
        assert estimate.contains_availability(estimate.availability)

    def test_interval_widens_with_fewer_events(self):
        # Same total downtime, one event vs many: one big event is less
        # statistical evidence.
        many = estimate_from_log(
            [OutageEvent(float(i * 100), 0.5) for i in range(10)], 10_000.0
        )
        one = estimate_from_log([OutageEvent(100.0, 5.0)], 10_000.0)
        width_many = many.availability_high - many.availability_low
        width_one = one.availability_high - one.availability_low
        assert width_one > width_many

    def test_overlapping_events_rejected(self):
        events = [OutageEvent(10.0, 5.0), OutageEvent(12.0, 1.0)]
        with pytest.raises(SolverError, match="overlapping"):
            estimate_from_log(events, 100.0)

    def test_event_past_window_rejected(self):
        with pytest.raises(SolverError, match="past the observation"):
            estimate_from_log([OutageEvent(95.0, 10.0)], 100.0)

    def test_bad_window_rejected(self):
        with pytest.raises(SolverError):
            estimate_from_log([], 0.0)

    def test_yearly_downtime_consistent(self):
        estimate = estimate_from_log([OutageEvent(0.0, 87.6)], 8760.0)
        assert estimate.yearly_downtime_minutes == pytest.approx(
            0.01 * 525_600.0, rel=1e-9
        )


class TestMergeIntervals:
    def test_disjoint_intervals_pass_through(self):
        events = merge_intervals([(0.0, 1.0, "a"), (5.0, 6.0, "b")])
        assert len(events) == 2
        assert events[0].cause == "a"

    def test_overlap_merges_with_causes(self):
        events = merge_intervals([(0.0, 2.0, "a"), (1.0, 3.0, "b")])
        (event,) = events
        assert event.duration_hours == pytest.approx(3.0)
        assert event.cause == "a+b"

    def test_containment_merges(self):
        events = merge_intervals([(0.0, 10.0, "a"), (2.0, 3.0, "b")])
        (event,) = events
        assert event.duration_hours == pytest.approx(10.0)

    def test_duplicate_causes_deduplicated(self):
        events = merge_intervals([(0.0, 2.0, "a"), (1.0, 3.0, "a")])
        assert events[0].cause == "a"

    def test_unsorted_input_handled(self):
        events = merge_intervals([(5.0, 6.0, "b"), (0.0, 1.0, "a")])
        assert events[0].start_hour == 0.0

    def test_empty_input(self):
        assert merge_intervals([]) == []

    def test_empty_interval_rejected(self):
        with pytest.raises(SolverError, match="empty"):
            merge_intervals([(2.0, 2.0, "a")])
