"""Tests for the Laplace trend test."""

import numpy as np
import pytest

from repro.errors import SolverError
from repro.validation import OutageEvent, laplace_trend_test


def events_at(times):
    return [OutageEvent(float(t), 0.1) for t in times]


class TestLaplaceStatistic:
    def test_empty_log(self):
        result = laplace_trend_test([], 1_000.0)
        assert result.n_events == 0
        assert result.statistic == 0.0
        assert not result.significant_at_95

    def test_uniform_arrivals_no_trend(self):
        rng = np.random.default_rng(0)
        times = sorted(rng.uniform(0.0, 10_000.0, size=40))
        result = laplace_trend_test(events_at(times), 10_000.0)
        assert not result.significant_at_95
        assert "no significant trend" in result.interpretation

    def test_early_clustering_means_growth(self):
        # All failures in the first tenth of the window: burn-in.
        times = np.linspace(10.0, 1_000.0, 30)
        result = laplace_trend_test(events_at(times), 10_000.0)
        assert result.statistic < -1.96
        assert result.significant_at_95
        assert "growth" in result.interpretation

    def test_late_clustering_means_deterioration(self):
        times = np.linspace(9_000.0, 9_990.0, 30)
        result = laplace_trend_test(events_at(times), 10_000.0)
        assert result.statistic > 1.96
        assert "deterioration" in result.interpretation

    def test_centered_single_event_is_zero(self):
        result = laplace_trend_test(events_at([500.0]), 1_000.0)
        assert result.statistic == pytest.approx(0.0)

    def test_statistic_formula(self):
        # Hand check: two events at 0.25T and 0.35T.
        result = laplace_trend_test(events_at([250.0, 350.0]), 1_000.0)
        expected = (0.30 - 0.5) * np.sqrt(24.0)
        assert result.statistic == pytest.approx(expected)

    def test_event_past_window_rejected(self):
        with pytest.raises(SolverError, match="past"):
            laplace_trend_test(events_at([2_000.0]), 1_000.0)

    def test_bad_window_rejected(self):
        with pytest.raises(SolverError):
            laplace_trend_test([], 0.0)


class TestAgainstSimulatedLogs:
    def test_model_generated_logs_show_no_trend(self):
        """Steady-state models produce trend-free logs (a property the
        field-data comparison loop quietly relies on)."""
        from repro.core import translate
        from repro.library import workgroup_model
        from repro.validation import generate_field_log

        solution = translate(workgroup_model())
        significant = 0
        for seed in range(8):
            log = generate_field_log(
                solution, window_hours=30_000.0, seed=seed
            )
            result = laplace_trend_test(log.events, log.window_hours)
            significant += result.significant_at_95
        # 5% false-positive rate: 8 draws should rarely flag 3+.
        assert significant <= 2
