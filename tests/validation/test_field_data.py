"""Tests for the synthetic field-trace generator."""

import pytest

from repro.core import translate
from repro.errors import SolverError
from repro.library import e10000_model, workgroup_model
from repro.validation import generate_field_log
from repro.validation.field_data import FIFTEEN_MONTHS_HOURS


class TestFieldLogGeneration:
    def test_log_structure(self):
        solution = translate(workgroup_model())
        log = generate_field_log(solution, seed=0)
        assert log.window_hours == FIFTEEN_MONTHS_HOURS
        assert log.server == "server-A"
        for event in log.events:
            assert 0.0 <= event.start_hour
            assert event.end_hour <= log.window_hours + 1e-6
            assert event.cause

    def test_events_ordered_and_disjoint(self):
        solution = translate(workgroup_model())
        log = generate_field_log(solution, seed=1)
        for previous, current in zip(log.events, log.events[1:]):
            assert current.start_hour >= previous.end_hour - 1e-9

    def test_seeding_reproducible(self):
        solution = translate(workgroup_model())
        a = generate_field_log(solution, seed=2)
        b = generate_field_log(solution, seed=2)
        assert a.events == b.events

    def test_different_servers_different_histories(self):
        solution = translate(workgroup_model())
        a = generate_field_log(solution, server="A", seed=3)
        b = generate_field_log(solution, server="B", seed=4)
        assert a.events != b.events

    def test_bad_window_rejected(self):
        solution = translate(workgroup_model())
        with pytest.raises(SolverError):
            generate_field_log(solution, window_hours=0.0)


class TestModelVsFieldComparison:
    """The paper's validation loop: model prediction vs measured data."""

    def test_estimate_consistent_with_ground_truth(self):
        solution = translate(e10000_model())
        # Average several simulated sites to tighten the comparison.
        estimates = [
            generate_field_log(solution, server=f"s{i}", seed=i).estimate()
            for i in range(8)
        ]
        mean_availability = sum(e.availability for e in estimates) / len(
            estimates
        )
        # The fleet-average measured availability should sit within the
        # spread of per-site confidence intervals of the truth.
        assert abs(mean_availability - solution.availability) < 5e-4

    def test_comparison_detects_injected_mismatch(self):
        # The loop must have power: a model that is wrong by 10x in OS
        # MTBF should fall outside most site confidence intervals.
        from repro.analysis import with_block_changes

        truth = translate(e10000_model())
        wrong_model = with_block_changes(
            e10000_model(), "E10000 Server/Operating System",
            mtbf_hours=4_000.0, transient_fit=120_000.0,
        )
        wrong = translate(wrong_model)
        logs = [
            generate_field_log(truth, server=f"s{i}", seed=100 + i)
            for i in range(6)
        ]
        hits = sum(
            1
            for log in logs
            if log.estimate().contains_availability(wrong.availability)
        )
        assert hits <= 2
