"""Span export: ring buffer, JSONL appends, head sampling."""

import json

import pytest

from repro.obs.export import (
    SPANS_FILENAME,
    SpanExporter,
    head_sampled,
    read_spans,
)


def _span(**overrides):
    payload = {
        "name": "engine.solve",
        "trace_id": "aa" * 16,
        "span_id": "bb" * 8,
        "parent_id": None,
        "start_unix": 1.0,
        "duration": 0.01,
        "status": "ok",
        "pid": 1,
    }
    payload.update(overrides)
    return payload


class TestRingBuffer:
    def test_keeps_only_the_newest_capacity_spans(self):
        exporter = SpanExporter(capacity=3)
        for index in range(5):
            exporter.export(_span(span_id=f"{index:016x}"))
        assert len(exporter) == 3
        newest = exporter.recent()
        assert [s["span_id"] for s in newest] == [
            "0000000000000004", "0000000000000003", "0000000000000002",
        ]

    def test_recent_filters_by_trace_and_name(self):
        exporter = SpanExporter()
        exporter.export(_span(trace_id="t1", name="a"))
        exporter.export(_span(trace_id="t2", name="b"))
        assert len(exporter.recent(trace_id="t1")) == 1
        assert exporter.recent(name="b")[0]["trace_id"] == "t2"
        assert exporter.recent(limit=0) == []

    def test_trace_returns_arrival_order(self):
        exporter = SpanExporter()
        exporter.export(_span(trace_id="t", span_id="first"))
        exporter.export(_span(trace_id="other"))
        exporter.export(_span(trace_id="t", span_id="second"))
        assert [s["span_id"] for s in exporter.trace("t")] == [
            "first", "second",
        ]

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            SpanExporter(capacity=0)


class TestSampling:
    def test_head_sampled_is_deterministic(self):
        trace_id = "80000000" + "00" * 12
        assert head_sampled(trace_id, 1.0)
        assert not head_sampled(trace_id, 0.0)
        # 0x80000000 / 0xFFFFFFFF is just above one half.
        assert not head_sampled(trace_id, 0.5)
        assert head_sampled(trace_id, 0.51)

    def test_head_sampled_tolerates_junk_trace_ids(self):
        assert head_sampled("not-hex!", 0.5)

    def test_sampled_out_spans_are_dropped_and_counted(self):
        exporter = SpanExporter()
        assert not exporter.export(_span(), sampled=False)
        assert exporter.dropped == 1
        assert len(exporter) == 0

    def test_errors_survive_sampling(self):
        exporter = SpanExporter()
        assert exporter.export(_span(status="error"), sampled=False)
        assert len(exporter) == 1

    def test_slow_spans_survive_sampling(self):
        exporter = SpanExporter(slow_threshold=0.1)
        assert exporter.export(_span(duration=0.5), sampled=False)
        assert not exporter.export(_span(duration=0.05), sampled=False)


class TestJsonl:
    def test_spans_append_one_json_line_each(self, tmp_path):
        exporter = SpanExporter(trace_dir=tmp_path)
        exporter.export(_span(span_id="one"))
        exporter.export(_span(span_id="two"))
        exporter.close()
        lines = (tmp_path / SPANS_FILENAME).read_text().splitlines()
        assert [json.loads(line)["span_id"] for line in lines] == [
            "one", "two",
        ]

    def test_memory_only_exporter_has_no_path(self):
        assert SpanExporter().path is None

    def test_close_is_safe_without_writes(self, tmp_path):
        SpanExporter(trace_dir=tmp_path).close()
        SpanExporter().close()


class TestReadSpans:
    def test_round_trips_through_the_file(self, tmp_path):
        exporter = SpanExporter(trace_dir=tmp_path)
        exporter.export(_span(trace_id="t1", span_id="one"))
        exporter.export(_span(trace_id="t2", span_id="two"))
        exporter.close()
        spans = read_spans(tmp_path)
        assert [s["span_id"] for s in spans] == ["one", "two"]
        assert read_spans(tmp_path, trace_id="t2")[0]["span_id"] == "two"
        assert [s["span_id"] for s in read_spans(tmp_path, limit=1)] == [
            "two",
        ]

    def test_missing_file_is_empty_not_fatal(self, tmp_path):
        assert read_spans(tmp_path / "nowhere") == []

    def test_corrupt_lines_are_skipped(self, tmp_path):
        path = tmp_path / SPANS_FILENAME
        path.write_text(
            json.dumps(_span(span_id="good")) + "\n"
            + '{"truncated": \n'
            + "[1, 2, 3]\n"
            + "\n"
            + json.dumps(_span(span_id="also-good")) + "\n"
        )
        spans = read_spans(tmp_path)
        assert [s["span_id"] for s in spans] == ["good", "also-good"]
