"""Fixed-bucket histograms: le semantics, merge algebra, round-trips."""

import pytest

from repro.obs.histogram import (
    DEFAULT_LATENCY_BUCKETS,
    Histogram,
    format_bound,
)


class TestConstruction:
    def test_default_ladder_spans_sub_ms_to_30s(self):
        histogram = Histogram()
        assert histogram.bounds[0] == 0.0005
        assert histogram.bounds[-1] == 30.0
        assert len(histogram.counts) == len(DEFAULT_LATENCY_BUCKETS) + 1

    def test_empty_bounds_rejected(self):
        with pytest.raises(ValueError):
            Histogram([])

    def test_non_increasing_bounds_rejected(self):
        with pytest.raises(ValueError):
            Histogram([1.0, 1.0, 2.0])
        with pytest.raises(ValueError):
            Histogram([2.0, 1.0])

    def test_infinite_bound_rejected(self):
        with pytest.raises(ValueError):
            Histogram([1.0, float("inf")])


class TestObserve:
    def test_le_semantics_value_on_bound_lands_in_that_bucket(self):
        histogram = Histogram([1.0, 2.0])
        histogram.observe(1.0)
        assert histogram.counts == [1, 0, 0]

    def test_overflow_bucket_catches_the_tail(self):
        histogram = Histogram([1.0, 2.0])
        histogram.observe(100.0)
        assert histogram.counts == [0, 0, 1]

    def test_sum_count_mean(self):
        histogram = Histogram([1.0])
        for value in (0.25, 0.75, 2.0):
            histogram.observe(value)
        assert histogram.count == 3
        assert histogram.sum == pytest.approx(3.0)
        assert histogram.mean == pytest.approx(1.0)

    def test_empty_histogram_mean_is_zero(self):
        assert Histogram().mean == 0.0


class TestCumulative:
    def test_buckets_are_cumulative_and_end_at_inf(self):
        histogram = Histogram([1.0, 2.0])
        for value in (0.5, 1.5, 1.5, 5.0):
            histogram.observe(value)
        assert histogram.cumulative() == [
            ("1", 1), ("2", 3), ("+Inf", 4),
        ]

    def test_format_bound_drops_trailing_zero(self):
        assert format_bound(1.0) == "1"
        assert format_bound(0.25) == "0.25"
        assert format_bound(float("inf")) == "+Inf"


class TestMerge:
    def test_merge_adds_counts_and_sums(self):
        left, right = Histogram([1.0, 2.0]), Histogram([1.0, 2.0])
        left.observe(0.5)
        right.observe(1.5)
        right.observe(5.0)
        left.merge(right)
        assert left.count == 3
        assert left.sum == pytest.approx(7.0)
        assert left.counts == [1, 1, 1]

    def test_merge_rejects_different_ladders(self):
        with pytest.raises(ValueError):
            Histogram([1.0]).merge(Histogram([2.0]))

    def test_merge_equals_observing_everything_in_one(self):
        """The property per-worker rollups rely on."""
        samples_a = [0.001, 0.02, 0.3, 4.0]
        samples_b = [0.0001, 0.05, 50.0]
        merged = Histogram()
        other = Histogram()
        combined = Histogram()
        for value in samples_a:
            merged.observe(value)
            combined.observe(value)
        for value in samples_b:
            other.observe(value)
            combined.observe(value)
        merged.merge(other)
        assert merged.counts == combined.counts
        assert merged.sum == pytest.approx(combined.sum)


class TestQuantile:
    def test_interpolates_within_the_bucket(self):
        histogram = Histogram([1.0, 2.0])
        for _ in range(4):
            histogram.observe(1.5)  # all in the (1, 2] bucket
        # Rank q*4 falls inside the bucket; linear interpolation
        # between the previous bound (1.0) and this bound (2.0).
        assert histogram.quantile(0.5) == pytest.approx(1.5)

    def test_tail_reports_last_finite_bound(self):
        histogram = Histogram([1.0])
        histogram.observe(100.0)
        assert histogram.quantile(0.99) == 1.0

    def test_empty_is_zero(self):
        assert Histogram().quantile(0.5) == 0.0

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            Histogram().quantile(1.5)


class TestRoundTrip:
    def test_to_dict_matches_prometheus_shape(self):
        histogram = Histogram([1.0])
        histogram.observe(0.5)
        histogram.observe(3.0)
        payload = histogram.to_dict()
        assert payload == {
            "count": 2,
            "sum": pytest.approx(3.5),
            "buckets": {"1": 1, "+Inf": 2},
        }

    def test_from_dict_round_trips_counts_and_quantiles(self):
        histogram = Histogram()
        for value in (0.0004, 0.003, 0.08, 0.08, 1.7, 45.0):
            histogram.observe(value)
        rebuilt = Histogram.from_dict(histogram.to_dict())
        assert rebuilt.bounds == histogram.bounds
        assert rebuilt.counts == histogram.counts
        assert rebuilt.count == histogram.count
        assert rebuilt.sum == pytest.approx(histogram.sum)
        for q in (0.1, 0.5, 0.9, 0.99):
            assert rebuilt.quantile(q) == pytest.approx(
                histogram.quantile(q)
            )

    def test_from_dict_with_custom_ladder(self):
        histogram = Histogram([0.5, 1.5])
        histogram.observe(1.0)
        rebuilt = Histogram.from_dict(histogram.to_dict())
        assert rebuilt.bounds == (0.5, 1.5)
        assert rebuilt.counts == histogram.counts

    def test_from_dict_without_buckets_rejected(self):
        with pytest.raises(ValueError):
            Histogram.from_dict({"count": 1, "sum": 2.0})

    def test_merged_snapshots_equal_snapshot_of_merge(self):
        left, right = Histogram(), Histogram()
        left.observe(0.01)
        right.observe(2.0)
        rebuilt = Histogram.from_dict(left.to_dict())
        rebuilt.merge(Histogram.from_dict(right.to_dict()))
        left.merge(right)
        assert rebuilt.to_dict() == left.to_dict()
