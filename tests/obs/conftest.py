"""Every obs test leaves the process-global tracer as it found it."""

import pytest

from repro.obs.trace import get_tracer, set_tracer


@pytest.fixture(autouse=True)
def restore_global_tracer():
    previous = get_tracer()
    yield
    set_tracer(previous)
