"""Structured logging: JSON records that join against the span export."""

import io
import json
import logging
from pathlib import Path

import pytest

from repro.obs.logging import (
    ROOT_LOGGER_NAME,
    configure_logging,
    get_logger,
)
from repro.obs.trace import Tracer, set_tracer


@pytest.fixture(autouse=True)
def reset_rascad_logger():
    yield
    logger = logging.getLogger(ROOT_LOGGER_NAME)
    for handler in list(logger.handlers):
        logger.removeHandler(handler)
    logger.setLevel(logging.NOTSET)
    logger.propagate = True


def _configure(**kwargs):
    stream = io.StringIO()
    configure_logging(stream=stream, **kwargs)
    return stream


class TestGetLogger:
    def test_namespaces_under_rascad(self):
        assert get_logger().name == "rascad"
        assert get_logger("service").name == "rascad.service"


class TestConfigure:
    def test_reconfiguring_replaces_the_handler(self):
        _configure()
        _configure()
        assert len(logging.getLogger(ROOT_LOGGER_NAME).handlers) == 1

    def test_unknown_level_rejected(self):
        with pytest.raises(ValueError):
            configure_logging(level="chatty")

    def test_level_filters_records(self):
        stream = _configure(level="warning")
        get_logger("engine").info("quiet")
        get_logger("engine").warning("loud")
        assert "quiet" not in stream.getvalue()
        assert "loud" in stream.getvalue()

    def test_does_not_propagate_to_the_root_logger(self):
        _configure()
        assert not logging.getLogger(ROOT_LOGGER_NAME).propagate


class TestJsonOutput:
    def test_record_is_one_json_object_with_stable_fields(self):
        stream = _configure(json_output=True)
        get_logger("service").info("listening", extra={"port": 8080})
        payload = json.loads(stream.getvalue())
        assert payload["level"] == "info"
        assert payload["logger"] == "rascad.service"
        assert payload["message"] == "listening"
        assert payload["port"] == 8080
        assert isinstance(payload["pid"], int)
        assert isinstance(payload["ts"], float)

    def test_records_inside_a_span_carry_trace_ids(self):
        stream = _configure(json_output=True)
        tracer = Tracer(enabled=True)
        set_tracer(tracer)
        with tracer.span("service.request") as span:
            get_logger("service").info("handling")
        payload = json.loads(stream.getvalue())
        assert payload["trace_id"] == span.trace_id
        assert payload["span_id"] == span.span_id

    def test_records_outside_a_span_omit_trace_ids(self):
        stream = _configure(json_output=True)
        get_logger().info("idle")
        payload = json.loads(stream.getvalue())
        assert "trace_id" not in payload

    def test_exceptions_are_captured(self):
        stream = _configure(json_output=True)
        try:
            raise ValueError("boom")
        except ValueError:
            get_logger().exception("failed")
        payload = json.loads(stream.getvalue())
        assert payload["level"] == "error"
        assert "ValueError: boom" in payload["exception"]

    def test_non_serializable_extras_fall_back_to_str(self):
        stream = _configure(json_output=True)
        get_logger().info("obj", extra={"path": Path("/tmp/x")})
        payload = json.loads(stream.getvalue())
        assert payload["path"] == "/tmp/x"
