"""End-to-end traces: engine, process pool, and service request paths."""

import asyncio
import json

import pytest

from repro.engine import Engine
from repro.library import workgroup_model
from repro.obs.export import read_spans
from repro.obs.trace import Tracer, configure_tracing, get_tracer, set_tracer
from repro.service.app import App
from repro.service.protocol import Request
from repro.service.queue import SolveQueue
from repro.spec import model_to_spec


@pytest.fixture(autouse=True)
def restore_global_tracer():
    previous = get_tracer()
    yield
    set_tracer(previous)


def _tree(spans):
    """span_id -> span dict, asserting no dangling parent links."""
    by_id = {span["span_id"]: span for span in spans}
    for span in spans:
        parent = span.get("parent_id")
        assert parent is None or parent in by_id, (
            f"span {span['name']} has dangling parent {parent}"
        )
    return by_id


class TestEngineTraces:
    def test_solve_produces_a_parent_linked_tree(self):
        tracer = configure_tracing(detail=True)
        engine = Engine(cache=False)
        engine.solve(workgroup_model())
        spans = tracer.exporter.recent(limit=1000)
        names = {span["name"] for span in spans}
        assert "engine.solve" in names
        assert "engine.block_solve" in names
        by_id = _tree(spans)
        roots = [s for s in spans if s["parent_id"] is None]
        assert len(roots) == 1
        assert roots[0]["name"] == "engine.solve"
        for span in spans:
            if span["name"] == "engine.block_solve":
                assert by_id[span["parent_id"]]["name"] == "engine.solve"

    def test_cache_hits_are_annotated(self):
        tracer = configure_tracing()
        engine = Engine()
        model = workgroup_model()
        engine.solve(model)
        engine.solve(model)
        solves = tracer.exporter.recent(limit=1000, name="engine.solve")
        assert [s["attrs"]["cache"] for s in solves] == ["hit", "miss"]

    def test_disabled_tracing_records_nothing(self):
        tracer = Tracer(enabled=False)
        set_tracer(tracer)
        Engine(cache=False).solve(workgroup_model())
        assert len(tracer.exporter.recent()) == 0

    def test_default_verbosity_omits_block_spans(self):
        """Per-block spans are deep-dive detail, off by default."""
        tracer = configure_tracing()
        Engine(cache=False).solve(workgroup_model())
        names = {s["name"] for s in tracer.exporter.recent(limit=1000)}
        assert "engine.solve" in names
        assert "engine.block_solve" not in names


class TestPoolBoundary:
    def test_worker_spans_come_home_with_parent_links(self):
        """The acceptance shape: spans cross the process pool intact."""
        tracer = configure_tracing(detail=True)
        engine = Engine(jobs=2, cache=False)
        engine.sweep_block_field(
            workgroup_model(),
            "Workgroup Server/Operating System",
            "mtbf_hours",
            [50_000.0, 100_000.0, 150_000.0, 200_000.0],
        )
        spans = tracer.exporter.recent(limit=5000)
        names = {span["name"] for span in spans}
        assert {"engine.batch", "engine.task", "engine.solve"} <= names
        by_id = _tree(spans)
        batch = next(s for s in spans if s["name"] == "engine.batch")
        local_pid = batch["pid"]
        tasks = [s for s in spans if s["name"] == "engine.task"]
        assert tasks, "no worker-side task spans came back"
        for task in tasks:
            assert task["pid"] != local_pid, "task span ran in-process"
            assert task["trace_id"] == batch["trace_id"]
            assert by_id[task["parent_id"]]["name"] == "engine.batch"
        # Worker-side solve spans nest under their task span.
        for span in spans:
            if span["name"] == "engine.solve" and span["pid"] != local_pid:
                assert by_id[span["parent_id"]]["name"] == "engine.task"
        # Detail verbosity crossed the pool via the carrier: worker
        # processes emitted per-block spans too.
        assert any(
            s["name"] == "engine.block_solve" and s["pid"] != local_pid
            for s in spans
        )


class TestServiceTraces:
    def _serve(self, requests, tmp_path):
        configure_tracing(trace_dir=tmp_path, detail=True)

        async def go():
            engine = Engine()
            queue = SolveQueue(engine)
            queue.start()
            app = App(engine, queue)
            responses = []
            for request in requests:
                responses.append(await app.handle(request))
            await queue.close()
            return responses

        return asyncio.run(go())

    def test_one_solve_exports_one_complete_trace(self, tmp_path):
        spec = model_to_spec(workgroup_model())
        body = json.dumps({"spec": spec}).encode()
        request = Request("POST", "/v1/solve", {}, {}, body)
        response, = self._serve([request], tmp_path)
        assert response.status == 200
        trace_id = response.headers.get("X-Rascad-Trace-Id")
        assert trace_id
        get_tracer().exporter.close()

        spans = read_spans(tmp_path, trace_id=trace_id)
        names = {span["name"] for span in spans}
        assert {
            "service.request", "service.queue_wait",
            "service.batch", "engine.solve", "engine.block_solve",
        } <= names
        by_id = _tree(spans)
        roots = [s for s in spans if s["parent_id"] is None]
        assert len(roots) == 1
        assert roots[0]["name"] == "service.request"
        batch = next(s for s in spans if s["name"] == "service.batch")
        assert by_id[batch["parent_id"]]["name"] == "service.request"
        solves = [s for s in spans if s["name"] == "engine.solve"]
        assert all(
            by_id[s["parent_id"]]["name"] == "service.batch"
            for s in solves
        )

    def test_debug_traces_endpoint_serves_the_ring(self, tmp_path):
        spec = model_to_spec(workgroup_model())
        solve = Request(
            "POST", "/v1/solve", {}, {},
            json.dumps({"spec": spec}).encode(),
        )
        debug = Request("GET", "/debug/traces", {}, {}, b"")
        solve_response, debug_response = self._serve(
            [solve, debug], tmp_path
        )
        payload = json.loads(debug_response.body)
        assert debug_response.status == 200
        names = {span["name"] for span in payload["spans"]}
        assert "service.request" in names
        assert payload["dropped"] == 0

    def test_debug_traces_404_when_tracing_is_off(self):
        set_tracer(Tracer(enabled=False))

        async def go():
            engine = Engine()
            queue = SolveQueue(engine)
            queue.start()
            app = App(engine, queue)
            response = await app.handle(
                Request("GET", "/debug/traces", {}, {}, b"")
            )
            await queue.close()
            return response

        response = asyncio.run(go())
        assert response.status == 404
        assert json.loads(response.body)["error"]["code"] == (
            "tracing_disabled"
        )

    def test_requests_without_tracing_have_no_trace_header(self):
        set_tracer(Tracer(enabled=False))

        async def go():
            engine = Engine()
            queue = SolveQueue(engine)
            queue.start()
            app = App(engine, queue)
            spec = model_to_spec(workgroup_model())
            response = await app.handle(Request(
                "POST", "/v1/solve", {}, {},
                json.dumps({"spec": spec}).encode(),
            ))
            await queue.close()
            return response

        response = asyncio.run(go())
        assert response.status == 200
        assert "X-Rascad-Trace-Id" not in response.headers
