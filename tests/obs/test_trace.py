"""Tracing: span trees, the null fast path, and pool propagation."""

import pytest

from repro.obs.export import SpanExporter
from repro.obs.trace import (
    NULL_SPAN,
    Tracer,
    capture_spans,
    configure_tracing,
    current_carrier,
    current_span,
    export_remote,
    get_tracer,
    set_tracer,
    use_span,
)


def _tracer(**kwargs):
    return Tracer(enabled=True, exporter=SpanExporter(), **kwargs)


class TestDisabledTracer:
    def test_span_returns_the_shared_null_singleton(self):
        tracer = Tracer(enabled=False)
        assert tracer.span("engine.solve") is NULL_SPAN
        assert tracer.start_span("engine.solve") is NULL_SPAN

    def test_null_span_is_inert(self):
        with NULL_SPAN as span:
            span.set_attr("key", "value")
            span.record_error("boom")
            assert current_span() is None
        assert NULL_SPAN.trace_id == ""

    def test_finish_is_safe_on_null_and_none(self):
        tracer = _tracer()
        tracer.finish(NULL_SPAN)
        tracer.finish(None)


class TestDetailVerbosity:
    def test_detail_spans_are_null_by_default(self):
        tracer = _tracer()
        assert tracer.span_detail("engine.block_solve") is NULL_SPAN
        assert len(tracer.exporter) == 0

    def test_detail_spans_are_real_when_opted_in(self):
        tracer = _tracer(detail=True)
        with tracer.span("engine.solve") as parent:
            with tracer.span_detail("engine.block_solve") as child:
                assert child is not NULL_SPAN
                assert child.parent_id == parent.span_id
        names = [s["name"] for s in tracer.exporter.recent()]
        assert "engine.block_solve" in names

    def test_detail_spans_stay_null_when_disabled(self):
        tracer = Tracer(enabled=False, detail=True)
        assert tracer.span_detail("engine.block_solve") is NULL_SPAN

    def test_capture_spans_inherits_carrier_detail(self):
        carrier = {
            "trace_id": "ab" * 16, "span_id": "cd" * 8,
            "sampled": True, "detail": True,
        }
        set_tracer(Tracer(enabled=False))
        with capture_spans(carrier) as collected:
            with get_tracer().span_detail("engine.block_solve"):
                pass
        assert [s["name"] for s in collected] == ["engine.block_solve"]

    def test_capture_spans_defaults_to_no_detail(self):
        carrier = {
            "trace_id": "ab" * 16, "span_id": "cd" * 8, "sampled": True,
        }
        set_tracer(Tracer(enabled=False))
        with capture_spans(carrier) as collected:
            with get_tracer().span_detail("engine.block_solve"):
                pass
        assert collected == []


class TestSpanTree:
    def test_nested_spans_share_a_trace_and_link_parents(self):
        tracer = _tracer()
        with tracer.span("outer") as outer:
            assert current_span() is outer
            with tracer.span("inner") as inner:
                assert inner.trace_id == outer.trace_id
                assert inner.parent_id == outer.span_id
            assert current_span() is outer
        assert current_span() is None
        assert outer.parent_id is None

    def test_sibling_roots_get_distinct_traces(self):
        tracer = _tracer()
        with tracer.span("a") as a:
            pass
        with tracer.span("b") as b:
            pass
        assert a.trace_id != b.trace_id

    def test_exit_records_duration_and_exports(self):
        tracer = _tracer()
        with tracer.span("op", kind="test") as span:
            pass
        assert span.duration >= 0.0
        exported = tracer.exporter.recent()
        assert len(exported) == 1
        assert exported[0]["name"] == "op"
        assert exported[0]["attrs"] == {"kind": "test"}

    def test_exception_marks_error_and_propagates(self):
        tracer = _tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("op") as span:
                raise RuntimeError("boom")
        assert span.status == "error"
        assert "RuntimeError: boom" in span.error
        assert tracer.exporter.recent()[0]["status"] == "error"

    def test_finish_is_idempotent(self):
        tracer = _tracer()
        span = tracer.start_span("op")
        tracer.finish(span)
        tracer.finish(span)
        assert len(tracer.exporter.recent()) == 1

    def test_explicit_parent_overrides_context(self):
        tracer = _tracer()
        elsewhere = tracer.start_span("request")
        with tracer.span("unrelated"):
            child = tracer.start_span("batch", parent=elsewhere)
        assert child.trace_id == elsewhere.trace_id
        assert child.parent_id == elsewhere.span_id

    def test_finish_with_error_records_it(self):
        tracer = _tracer()
        span = tracer.start_span("op")
        tracer.finish(span, error=ValueError("bad"))
        assert span.status == "error"
        assert "ValueError: bad" in span.error

    def test_use_span_activates_without_finishing(self):
        tracer = _tracer()
        span = tracer.start_span("batch")
        with use_span(span):
            assert current_span() is span
            child = tracer.start_span("solve")
        assert current_span() is None
        assert child.parent_id == span.span_id
        assert tracer.exporter.recent() == []  # nothing finished

    def test_use_span_tolerates_null_and_none(self):
        with use_span(None):
            assert current_span() is None
        with use_span(NULL_SPAN):
            assert current_span() is None


class TestSampling:
    def test_children_inherit_the_head_decision(self):
        tracer = _tracer(sample_ratio=0.0)
        with tracer.span("root") as root:
            with tracer.span("child") as child:
                pass
        assert not root.sampled
        assert not child.sampled
        assert tracer.exporter.recent() == []
        assert tracer.exporter.dropped == 2

    def test_errors_survive_a_sampled_out_trace(self):
        tracer = _tracer(sample_ratio=0.0)
        with pytest.raises(RuntimeError):
            with tracer.span("root"):
                raise RuntimeError("kept")
        kept = tracer.exporter.recent()
        assert len(kept) == 1
        assert kept[0]["status"] == "error"


class TestGlobalTracer:
    def test_default_global_tracer_is_disabled(self):
        set_tracer(Tracer(enabled=False))
        assert not get_tracer().enabled

    def test_configure_tracing_installs_and_returns(self, tmp_path):
        tracer = configure_tracing(trace_dir=tmp_path, sample_ratio=0.5)
        assert get_tracer() is tracer
        assert tracer.enabled
        assert tracer.sample_ratio == 0.5
        assert tracer.exporter.trace_dir == tmp_path


class TestCrossProcess:
    def test_carrier_is_none_when_disabled_or_idle(self):
        set_tracer(Tracer(enabled=False))
        assert current_carrier() is None
        set_tracer(_tracer())
        assert current_carrier() is None  # enabled but no active span

    def test_carrier_names_the_active_span(self):
        tracer = _tracer()
        set_tracer(tracer)
        with tracer.span("batch") as span:
            carrier = current_carrier()
        assert carrier == {
            "trace_id": span.trace_id,
            "span_id": span.span_id,
            "sampled": True,
            "detail": False,
        }

    def test_capture_spans_parents_worker_spans_to_the_carrier(self):
        carrier = {
            "trace_id": "ab" * 16, "span_id": "cd" * 8, "sampled": True,
        }
        set_tracer(Tracer(enabled=False))
        with capture_spans(carrier) as collected:
            with get_tracer().span("engine.task"):
                with get_tracer().span("engine.solve"):
                    pass
        # The previous (disabled) tracer is restored afterwards.
        assert not get_tracer().enabled
        assert [s["name"] for s in collected] == [
            "engine.solve", "engine.task",
        ]
        task = collected[1]
        assert task["trace_id"] == carrier["trace_id"]
        assert task["parent_id"] == carrier["span_id"]
        solve = collected[0]
        assert solve["parent_id"] == task["span_id"]

    def test_export_remote_feeds_the_local_exporter(self):
        tracer = _tracer()
        set_tracer(tracer)
        payloads = [
            {"name": "engine.task", "trace_id": "t", "status": "ok"},
            {"name": "engine.solve", "trace_id": "t", "status": "ok"},
        ]
        assert export_remote(payloads) == 2
        assert len(tracer.exporter.recent()) == 2

    def test_export_remote_is_a_noop_when_disabled(self):
        set_tracer(Tracer(enabled=False))
        assert export_remote([{"name": "x"}]) == 0

    def test_span_to_dict_shape(self):
        tracer = _tracer()
        with tracer.span("op", method="direct") as span:
            pass
        payload = span.to_dict()
        assert payload["name"] == "op"
        assert len(payload["trace_id"]) == 32
        assert len(payload["span_id"]) == 16
        assert payload["parent_id"] is None
        assert payload["status"] == "ok"
        assert payload["attrs"] == {"method": "direct"}
        assert isinstance(payload["pid"], int)
