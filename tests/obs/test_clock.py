"""The one timing idiom: monotonic stopwatches."""

import time

from repro.obs.clock import Stopwatch, monotonic, stopwatch, wall_time


def test_monotonic_never_goes_backwards():
    readings = [monotonic() for _ in range(100)]
    assert readings == sorted(readings)


def test_wall_time_is_epoch_seconds():
    assert abs(wall_time() - time.time()) < 1.0


class TestStopwatch:
    def test_elapsed_grows_while_running(self):
        watch = Stopwatch()
        first = watch.elapsed
        time.sleep(0.005)
        second = watch.elapsed
        assert 0.0 <= first < second

    def test_stop_freezes_elapsed(self):
        watch = Stopwatch()
        time.sleep(0.002)
        frozen = watch.stop()
        time.sleep(0.005)
        assert watch.elapsed == frozen

    def test_stop_is_idempotent(self):
        watch = Stopwatch()
        first = watch.stop()
        time.sleep(0.002)
        assert watch.stop() == first

    def test_context_manager_stops_on_exit(self):
        with stopwatch() as watch:
            time.sleep(0.002)
        frozen = watch.elapsed
        time.sleep(0.005)
        assert watch.elapsed == frozen
        assert frozen >= 0.002
