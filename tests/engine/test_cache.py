"""Solve-cache behaviour: LRU order, persistence, invalidation."""

import pickle

import pytest

from repro.engine import SolveCache
from repro.engine.cache import CACHE_FORMAT_VERSION


class TestMemoryLayer:
    def test_miss_then_hit(self):
        cache = SolveCache()
        value, layer = cache.get_block("k1")
        assert value is None and layer == "miss"
        cache.put_block("k1", {"x": 1})
        value, layer = cache.get_block("k1")
        assert value == {"x": 1} and layer == "memory"

    def test_lru_evicts_least_recently_used(self):
        cache = SolveCache(max_block_entries=2)
        cache.put_block("a", 1)
        cache.put_block("b", 2)
        assert cache.get_block("a")[0] == 1  # refresh "a"
        cache.put_block("c", 3)  # evicts "b"
        assert cache.get_block("b") == (None, "miss")
        assert cache.get_block("a")[0] == 1
        assert cache.get_block("c")[0] == 3
        assert cache.block_entries == 2

    def test_system_namespace_is_separate(self):
        cache = SolveCache()
        cache.put_block("k", "block value")
        assert cache.get_system("k") is None
        cache.put_system("k", "system value")
        assert cache.get_system("k") == "system value"
        assert cache.get_block("k")[0] == "block value"


class TestDiskLayer:
    def test_round_trip_and_promotion(self, tmp_path):
        writer = SolveCache(cache_dir=tmp_path)
        writer.put_block("deadbeef", {"pi": [0.5, 0.5]})
        # A brand-new cache (cold memory) must hit the disk layer...
        reader = SolveCache(cache_dir=tmp_path)
        value, layer = reader.get_block("deadbeef")
        assert value == {"pi": [0.5, 0.5]} and layer == "disk"
        # ...and promote the entry, so the next lookup is in memory.
        value, layer = reader.get_block("deadbeef")
        assert layer == "memory"

    def test_disk_usage_counts_entries(self, tmp_path):
        cache = SolveCache(cache_dir=tmp_path)
        assert cache.disk_usage() == (0, 0)
        cache.put_block("k1", 1)
        cache.put_block("k2", 2)
        entries, size = cache.disk_usage()
        assert entries == 2 and size > 0

    @pytest.mark.parametrize(
        "garbage",
        # Unpickling corrupt bytes raises wildly different exception
        # types depending on which opcode the bytes happen to spell.
        [b"not a pickle", b"garbage\n", b"", b"\x80\x05", b"I99\n"],
        ids=["text", "int-opcode", "empty", "truncated", "no-stop"],
    )
    def test_corrupt_entry_is_a_miss_and_deleted(self, tmp_path, garbage):
        cache = SolveCache(cache_dir=tmp_path)
        target = tmp_path / "blocks" / "bad.pkl"
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_bytes(garbage)
        assert cache.get_block("bad") == (None, "miss")
        assert not target.exists()

    def test_format_version_mismatch_is_a_miss(self, tmp_path):
        cache = SolveCache(cache_dir=tmp_path)
        target = tmp_path / "blocks" / "old.pkl"
        target.parent.mkdir(parents=True)
        target.write_bytes(
            pickle.dumps(
                {"version": CACHE_FORMAT_VERSION + 1, "value": 42}
            )
        )
        assert cache.get_block("old") == (None, "miss")
        assert not target.exists()

    def test_memory_only_cache_never_touches_disk(self, tmp_path):
        cache = SolveCache()
        cache.put_block("k", 1)
        assert cache.cache_dir is None
        assert cache.disk_usage() == (0, 0)


class TestInvalidation:
    def test_invalidate_drops_every_layer(self, tmp_path):
        cache = SolveCache(cache_dir=tmp_path)
        cache.put_block("k", 1)
        cache.put_system("k", 2)
        cache.invalidate("k")
        assert cache.get_block("k") == (None, "miss")
        assert cache.get_system("k") is None
        assert cache.disk_usage() == (0, 0)

    def test_clear_memory_keeps_disk(self, tmp_path):
        cache = SolveCache(cache_dir=tmp_path)
        cache.put_block("k", 1)
        cache.clear()
        assert cache.block_entries == 0
        value, layer = cache.get_block("k")
        assert value == 1 and layer == "disk"

    def test_clear_disk_too(self, tmp_path):
        cache = SolveCache(cache_dir=tmp_path)
        cache.put_block("k", 1)
        cache.clear(disk=True)
        assert cache.get_block("k") == (None, "miss")
        assert cache.disk_usage() == (0, 0)
