"""Concurrent access to one persistent cache directory.

The serving layer and CLI runs share ``--cache-dir``; these tests pin
the contract that makes that safe: atomic writes mean simultaneous
writers never corrupt an entry, and any double-solve stays within the
expected race window (both compute, last write wins, values agree).
"""

from concurrent.futures import ThreadPoolExecutor

from repro.core import translate
from repro.engine import Engine, SolveCache
from repro.library import workgroup_model
from repro.spec import model_to_spec, parse_spec


def _variants(count):
    """Structurally distinct models that still share most blocks."""
    models = []
    for index in range(count):
        spec = model_to_spec(workgroup_model())
        spec["diagram"]["blocks"][0]["mtbf_hours"] = 80_000.0 + index
        models.append(parse_spec(spec))
    return models


class TestConcurrentEngines:
    def test_two_engines_one_cache_dir_no_corruption(self, tmp_path):
        cache_dir = tmp_path / "shared"
        first = Engine(cache_dir=cache_dir)
        second = Engine(cache_dir=cache_dir)
        models = _variants(6)

        with ThreadPoolExecutor(max_workers=4) as pool:
            # Both engines solve every model at once: every block
            # digest gets written concurrently from two caches.
            futures = [
                pool.submit(engine.solve, model)
                for model in models
                for engine in (first, second)
            ]
            results = [future.result() for future in futures]

        # Same model, same availability, regardless of which engine
        # (and which interleaving) produced it.
        for position, model in enumerate(models):
            expected = translate(model).availability
            assert results[2 * position].availability == expected
            assert results[2 * position + 1].availability == expected

        # Every persisted entry must load back cleanly in a third,
        # cold cache: a torn write would read as a miss or garbage.
        reader = SolveCache(cache_dir=cache_dir)
        entries, size = reader.disk_usage()
        assert entries > 0
        assert size > 0
        loaded = 0
        for path in reader._disk_entries():
            value = reader._disk_read(path.stem)
            assert value is not None, f"unreadable cache entry {path}"
            loaded += 1
        assert loaded == entries

    def test_simultaneous_writes_of_one_key_last_wins(self, tmp_path):
        cache_dir = tmp_path / "samekey"
        writers = [SolveCache(cache_dir=cache_dir) for _ in range(4)]
        payload = {"answer": 42.0}

        with ThreadPoolExecutor(max_workers=4) as pool:
            futures = [
                pool.submit(cache.put_block, "deadbeef", dict(payload))
                for cache in writers
                for _ in range(25)
            ]
            for future in futures:
                future.result()

        reader = SolveCache(cache_dir=cache_dir)
        value, layer = reader.get_block("deadbeef")
        assert layer == "disk"
        assert value == payload

    def test_warm_process_reads_the_other_engines_work(self, tmp_path):
        cache_dir = tmp_path / "handoff"
        writer = Engine(cache_dir=cache_dir)
        model = workgroup_model()
        expected = writer.solve(model).availability

        reader = Engine(cache_dir=cache_dir)
        solution = reader.solve(model)
        assert solution.availability == expected
        stats = reader.stats_snapshot()
        assert stats.disk_hits > 0  # served by the persistent layer
        assert stats.block_solves == 0  # no double-solve on a warm dir
