"""Instrumentation: counters, derived metrics, snapshot persistence."""

import json
import os

import pytest

from repro.engine import (
    EngineStats,
    load_stats,
    metrics_payload,
    save_stats,
    summarize_latencies,
)
from repro.engine.stats import STATS_FILENAME, StatsCollector


class TestCollector:
    def test_counters_accumulate(self):
        collector = StatsCollector()
        collector.increment("block_solves")
        collector.increment("block_solves", 2)
        collector.increment("block_cache_hits", 9)
        snapshot = collector.snapshot()
        assert snapshot.block_solves == 3
        assert snapshot.block_cache_hits == 9
        assert snapshot.block_lookups == 12
        assert snapshot.cache_hit_rate == 0.75

    def test_timer_attributes_wall_time(self):
        collector = StatsCollector()
        with collector.timer("sweep"):
            pass
        with collector.timer("sweep"):
            pass
        snapshot = collector.snapshot()
        assert snapshot.stage_seconds["sweep"] >= 0.0
        assert snapshot.wall_seconds == sum(
            snapshot.stage_seconds.values()
        )

    def test_reset_clears_everything(self):
        collector = StatsCollector()
        collector.increment("block_solves")
        collector.add_busy(1.0)
        collector.set_jobs(8)
        collector.reset()
        snapshot = collector.snapshot()
        assert snapshot.block_solves == 0
        assert snapshot.busy_seconds == 0.0
        assert snapshot.jobs == 1


class TestDerivedMetrics:
    def test_hit_rate_defaults_to_zero(self):
        assert EngineStats().cache_hit_rate == 0.0

    def test_worker_utilization_bounded(self):
        stats = EngineStats(
            jobs=2, busy_seconds=10.0, stage_seconds={"sweep": 1.0}
        )
        assert stats.worker_utilization == 1.0
        idle = EngineStats(jobs=2, busy_seconds=0.0)
        assert idle.worker_utilization == 0.0

    def test_format_mentions_the_headline_numbers(self):
        stats = EngineStats(
            block_solves=4, block_cache_hits=12, jobs=3,
            stage_seconds={"sweep": 0.5},
        )
        text = stats.format()
        assert "hit rate" in text
        assert "75.0%" in text
        assert "jobs=3" in text
        assert "stage sweep" in text


class TestPersistence:
    def test_round_trip(self, tmp_path):
        stats = EngineStats(
            block_solves=7, block_cache_hits=3, disk_hits=1,
            tasks_submitted=4, tasks_completed=4, jobs=2,
            busy_seconds=1.5, stage_seconds={"solve": 0.25},
        )
        target = save_stats(stats, tmp_path)
        assert target.name == STATS_FILENAME
        loaded = load_stats(tmp_path)
        assert loaded == stats

    def test_missing_file_is_none(self, tmp_path):
        assert load_stats(tmp_path) is None

    def test_corrupt_file_is_none(self, tmp_path):
        (tmp_path / STATS_FILENAME).write_text("{not json")
        assert load_stats(tmp_path) is None

    def test_unknown_keys_ignored(self, tmp_path):
        payload = EngineStats(block_solves=1).to_dict()
        payload["from_the_future"] = 99
        (tmp_path / STATS_FILENAME).write_text(json.dumps(payload))
        loaded = load_stats(tmp_path)
        assert loaded is not None
        assert loaded.block_solves == 1

    def test_save_is_atomic_no_temp_residue(self, tmp_path):
        save_stats(EngineStats(block_solves=1), tmp_path)
        save_stats(EngineStats(block_solves=2), tmp_path)
        leftovers = [
            name for name in os.listdir(tmp_path)
            if name != STATS_FILENAME
        ]
        assert leftovers == []
        assert load_stats(tmp_path).block_solves == 2

    def test_pre_service_snapshot_files_still_load(self, tmp_path):
        # A stats.json written before the service fields existed.
        payload = EngineStats(block_solves=3).to_dict()
        for legacy_missing in (
            "counters", "gauges", "route_counts", "latency",
        ):
            del payload[legacy_missing]
        (tmp_path / STATS_FILENAME).write_text(json.dumps(payload))
        loaded = load_stats(tmp_path)
        assert loaded is not None
        assert loaded.block_solves == 3
        assert loaded.route_counts == {}


class TestServiceTelemetry:
    def test_gauges_routes_and_latency_snapshot(self):
        collector = StatsCollector()
        collector.set_gauge("queue_depth", 3)
        collector.record_request("POST /v1/solve", 200)
        collector.record_request("POST /v1/solve", 200)
        collector.record_request("POST /v1/solve", 429)
        for sample in (0.010, 0.020, 0.030, 0.500):
            collector.record_latency("POST /v1/solve", sample)
        snapshot = collector.snapshot()
        assert snapshot.gauges["queue_depth"] == 3.0
        assert snapshot.route_counts["POST /v1/solve 200"] == 2
        assert snapshot.route_counts["POST /v1/solve 429"] == 1
        latency = snapshot.latency["POST /v1/solve"]
        assert latency["count"] == 4
        assert latency["sum"] == pytest.approx(0.560)
        # Histogram buckets are cumulative with Prometheus `le`
        # semantics: 0.010 and 0.020 land at or below le=0.025.
        assert latency["buckets"]["0.025"] == 2
        assert latency["buckets"]["0.05"] == 3
        assert latency["buckets"]["0.5"] == 4
        assert latency["buckets"]["+Inf"] == 4

    def test_generic_counters_survive_the_round_trip(self, tmp_path):
        collector = StatsCollector()
        collector.increment("service_dedup_hits", 63)
        collector.increment("block_solves", 2)
        snapshot = collector.snapshot()
        assert snapshot.counters == {"service_dedup_hits": 63}
        save_stats(snapshot, tmp_path)
        loaded = load_stats(tmp_path)
        assert loaded.counters["service_dedup_hits"] == 63

    def test_reset_clears_service_telemetry(self):
        collector = StatsCollector()
        collector.set_gauge("in_flight", 5)
        collector.record_request("GET /healthz", 200)
        collector.record_latency("GET /healthz", 0.001)
        collector.reset()
        snapshot = collector.snapshot()
        assert snapshot.gauges == {}
        assert snapshot.route_counts == {}
        assert snapshot.latency == {}

    def test_summarize_latencies_empty_window(self):
        assert summarize_latencies([]) == {"count": 0.0}

    def test_percentiles_are_order_independent(self):
        forward = summarize_latencies([0.001 * i for i in range(1, 101)])
        backward = summarize_latencies(
            [0.001 * i for i in range(100, 0, -1)]
        )
        assert forward == backward
        assert forward["p95"] == 0.095


class TestMetricsPayload:
    def test_shared_serialization_shape(self):
        stats = EngineStats(
            block_solves=4, block_cache_hits=12,
            counters={"service_admitted": 2},
        )
        payload = metrics_payload(
            stats, disk_usage=(5, 1234), service={"in_flight": 1}
        )
        assert payload["engine"]["block_solves"] == 4
        assert payload["derived"]["cache_hit_rate"] == 0.75
        assert payload["cache"] == {
            "disk_entries": 5, "disk_bytes": 1234,
        }
        assert payload["service"] == {"in_flight": 1}
        json.dumps(payload)  # must be JSON-serializable as-is

    def test_no_stats_yields_engine_null(self):
        payload = metrics_payload(None, disk_usage=(0, 0))
        assert payload["engine"] is None
        assert "derived" not in payload
