"""Instrumentation: counters, derived metrics, snapshot persistence."""

import json

from repro.engine import EngineStats, load_stats, save_stats
from repro.engine.stats import STATS_FILENAME, StatsCollector


class TestCollector:
    def test_counters_accumulate(self):
        collector = StatsCollector()
        collector.increment("block_solves")
        collector.increment("block_solves", 2)
        collector.increment("block_cache_hits", 9)
        snapshot = collector.snapshot()
        assert snapshot.block_solves == 3
        assert snapshot.block_cache_hits == 9
        assert snapshot.block_lookups == 12
        assert snapshot.cache_hit_rate == 0.75

    def test_timer_attributes_wall_time(self):
        collector = StatsCollector()
        with collector.timer("sweep"):
            pass
        with collector.timer("sweep"):
            pass
        snapshot = collector.snapshot()
        assert snapshot.stage_seconds["sweep"] >= 0.0
        assert snapshot.wall_seconds == sum(
            snapshot.stage_seconds.values()
        )

    def test_reset_clears_everything(self):
        collector = StatsCollector()
        collector.increment("block_solves")
        collector.add_busy(1.0)
        collector.set_jobs(8)
        collector.reset()
        snapshot = collector.snapshot()
        assert snapshot.block_solves == 0
        assert snapshot.busy_seconds == 0.0
        assert snapshot.jobs == 1


class TestDerivedMetrics:
    def test_hit_rate_defaults_to_zero(self):
        assert EngineStats().cache_hit_rate == 0.0

    def test_worker_utilization_bounded(self):
        stats = EngineStats(
            jobs=2, busy_seconds=10.0, stage_seconds={"sweep": 1.0}
        )
        assert stats.worker_utilization == 1.0
        idle = EngineStats(jobs=2, busy_seconds=0.0)
        assert idle.worker_utilization == 0.0

    def test_format_mentions_the_headline_numbers(self):
        stats = EngineStats(
            block_solves=4, block_cache_hits=12, jobs=3,
            stage_seconds={"sweep": 0.5},
        )
        text = stats.format()
        assert "hit rate" in text
        assert "75.0%" in text
        assert "jobs=3" in text
        assert "stage sweep" in text


class TestPersistence:
    def test_round_trip(self, tmp_path):
        stats = EngineStats(
            block_solves=7, block_cache_hits=3, disk_hits=1,
            tasks_submitted=4, tasks_completed=4, jobs=2,
            busy_seconds=1.5, stage_seconds={"solve": 0.25},
        )
        target = save_stats(stats, tmp_path)
        assert target.name == STATS_FILENAME
        loaded = load_stats(tmp_path)
        assert loaded == stats

    def test_missing_file_is_none(self, tmp_path):
        assert load_stats(tmp_path) is None

    def test_corrupt_file_is_none(self, tmp_path):
        (tmp_path / STATS_FILENAME).write_text("{not json")
        assert load_stats(tmp_path) is None

    def test_unknown_keys_ignored(self, tmp_path):
        payload = EngineStats(block_solves=1).to_dict()
        payload["from_the_future"] = 99
        (tmp_path / STATS_FILENAME).write_text(json.dumps(payload))
        loaded = load_stats(tmp_path)
        assert loaded is not None
        assert loaded.block_solves == 1
