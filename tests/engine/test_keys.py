"""Canonical digest properties: key-order independence, round-trips."""

import json

from hypothesis import given, settings

from repro.core import BlockParameters, GlobalParameters
from repro.engine import (
    block_digest,
    chain_digest,
    model_digest,
    task_seed,
)
from repro.gmb import MarkovBuilder
from repro.library import datacenter_model, e10000_model, workgroup_model
from repro.spec import model_to_spec, parse_spec

from ..property.test_property_spec import random_model


def _reorder(payload):
    """A deep copy of a JSON payload with every mapping key reversed."""
    if isinstance(payload, dict):
        return {
            key: _reorder(payload[key]) for key in reversed(list(payload))
        }
    if isinstance(payload, list):
        return [_reorder(item) for item in payload]
    return payload


class TestModelDigest:
    @given(model=random_model())
    @settings(max_examples=40, deadline=None)
    def test_invariant_under_key_reordering(self, model):
        spec = model_to_spec(model)
        reordered = json.loads(json.dumps(_reorder(spec)))
        assert list(reordered) != list(spec) or len(spec) == 1
        assert model_digest(parse_spec(spec)) == model_digest(
            parse_spec(reordered)
        )

    @given(model=random_model())
    @settings(max_examples=40, deadline=None)
    def test_invariant_under_writer_round_trip(self, model):
        restored = parse_spec(model_to_spec(model))
        assert model_digest(restored) == model_digest(model)

    def test_library_models_have_distinct_digests(self):
        digests = {
            model_digest(factory())
            for factory in (datacenter_model, e10000_model, workgroup_model)
        }
        assert len(digests) == 3

    def test_digest_stable_across_equal_builds(self):
        assert model_digest(datacenter_model()) == model_digest(
            datacenter_model()
        )

    def test_method_is_part_of_the_key(self):
        model = workgroup_model()
        assert model_digest(model, "direct") != model_digest(model, "gth")

    def test_parameter_change_changes_digest(self):
        from repro.analysis import with_block_changes

        base = workgroup_model()
        changed = with_block_changes(
            base, "Workgroup Server/Operating System", mtbf_hours=60_000.0
        )
        assert model_digest(changed) != model_digest(base)


class TestBlockDigest:
    def test_annotations_do_not_affect_the_key(self):
        g = GlobalParameters()
        a = BlockParameters(name="disk", mtbf_hours=1e5)
        b = a.with_changes(
            description="a label", part_number="HDD-36G"
        )
        assert block_digest(a, g) == block_digest(b, g)

    def test_solver_inputs_do_affect_the_key(self):
        g = GlobalParameters()
        a = BlockParameters(name="disk", mtbf_hours=1e5)
        assert block_digest(a, g) != block_digest(
            a.with_changes(mtbf_hours=2e5), g
        )
        assert block_digest(a, g) != block_digest(
            a, GlobalParameters(reboot_minutes=5.0)
        )
        assert block_digest(a, g, "direct") != block_digest(a, g, "gth")


class TestChainDigest:
    def _chain(self, rate=1e-3):
        return (
            MarkovBuilder("pair")
            .up("Ok")
            .down("Down")
            .arc("Ok", "Down", rate)
            .arc("Down", "Ok", 0.25)
            .build()
        )

    def test_equal_chains_share_a_key(self):
        assert chain_digest(self._chain()) == chain_digest(self._chain())

    def test_rate_change_changes_the_key(self):
        assert chain_digest(self._chain()) != chain_digest(
            self._chain(rate=2e-3)
        )


class TestTaskSeed:
    def test_deterministic_and_index_dependent(self):
        seeds = [task_seed(42, index) for index in range(100)]
        assert seeds == [task_seed(42, index) for index in range(100)]
        assert len(set(seeds)) == 100

    def test_base_dependent(self):
        assert task_seed(1, 0) != task_seed(2, 0)

    def test_none_stays_none(self):
        assert task_seed(None, 7) is None
