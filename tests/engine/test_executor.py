"""Batch executor: ordering, determinism, retry and timeout handling."""

import os
import signal
import time

import numpy as np
import pytest

from repro.engine import run_batch, seeded_tasks
from repro.engine.stats import StatsCollector
from repro.errors import EngineError


def _square(value):
    return value * value


def _draw(lo, hi, seed):
    rng = np.random.default_rng(seed)
    return float(rng.uniform(lo, hi))


def _explode(value):
    raise ValueError(f"boom {value}")


def _sleep_long(value):
    # Long enough to trip the timeout, short enough that the leaked
    # worker exits well before the interpreter does.
    time.sleep(3.0)
    return value


def _die_once(value, sentinel):
    # SIGKILL the worker the first time through; a retry on a rebuilt
    # pool (which sees the sentinel file) succeeds.
    if not os.path.exists(sentinel):
        with open(sentinel, "w") as handle:
            handle.write("died")
        os.kill(os.getpid(), signal.SIGKILL)
    return value * value


def _die_always(value):
    os.kill(os.getpid(), signal.SIGKILL)


class TestSerial:
    def test_results_in_task_order(self):
        assert run_batch(_square, [(3,), (1,), (2,)]) == [9, 1, 4]

    def test_empty_batch(self):
        assert run_batch(_square, []) == []

    def test_retry_then_fail_raises_engine_error(self):
        stats = StatsCollector()
        with pytest.raises(EngineError, match="failed after 3 attempt"):
            run_batch(_explode, [(1,)], retries=2, stats=stats)
        snapshot = stats.snapshot()
        assert snapshot.tasks_retried == 2
        assert snapshot.tasks_failed == 1

    def test_serial_retries_transient_failures(self):
        calls = []

        def flaky(value):
            calls.append(value)
            if len(calls) < 3:
                raise ValueError("transient")
            return value

        assert run_batch(flaky, [(7,)], retries=3) == [7]
        assert len(calls) == 3

    def test_invalid_policy_rejected(self):
        with pytest.raises(EngineError):
            run_batch(_square, [(1,)], jobs=0)
        with pytest.raises(EngineError):
            run_batch(_square, [(1,)], retries=-1)


class TestParallel:
    def test_pool_matches_serial(self):
        tasks = [(value,) for value in range(20)]
        assert run_batch(_square, tasks, jobs=3) == run_batch(
            _square, tasks
        )

    def test_seeded_tasks_are_jobs_invariant(self):
        tasks = seeded_tasks([(0.0, 1.0)] * 16, base_seed=123)
        serial = run_batch(_draw, tasks, jobs=1)
        parallel = run_batch(_draw, tasks, jobs=4)
        assert serial == parallel
        assert len(set(serial)) == len(serial)  # streams are distinct

    def test_pool_failure_raises_engine_error(self):
        stats = StatsCollector()
        with pytest.raises(EngineError, match="failed"):
            run_batch(_explode, [(1,), (2,)], jobs=2, retries=1,
                      stats=stats)
        assert stats.snapshot().tasks_failed == 1

    def test_stats_record_completions(self):
        stats = StatsCollector()
        run_batch(_square, [(1,), (2,), (3,)], jobs=2, stats=stats)
        snapshot = stats.snapshot()
        assert snapshot.tasks_submitted == 3
        assert snapshot.tasks_completed == 3
        assert snapshot.jobs == 2
        assert snapshot.busy_seconds >= 0.0


class TestPoolCrash:
    def test_killed_worker_is_retried_on_a_rebuilt_pool(self, tmp_path):
        stats = StatsCollector()
        sentinel = str(tmp_path / "died")
        results = run_batch(
            _die_once, [(7, sentinel)], jobs=2, retries=1, stats=stats
        )
        assert results == [49]
        snapshot = stats.snapshot()
        assert snapshot.counters["pool_breaks"] >= 1
        assert snapshot.tasks_retried >= 1

    def test_sibling_tasks_survive_one_crash(self, tmp_path):
        # The crash poisons every in-flight future; the rebuilt pool
        # must still deliver every task's result, in task order.
        sentinel = str(tmp_path / "died")
        tasks = [(value, sentinel) for value in range(6)]
        results = run_batch(_die_once, tasks, jobs=2, retries=1)
        assert results == [value * value for value in range(6)]

    def test_repeated_crashes_raise_a_typed_error(self):
        start = time.perf_counter()
        stats = StatsCollector()
        with pytest.raises(EngineError, match="crashed the worker pool"):
            run_batch(
                _die_always, [(1,)], jobs=2, retries=1, stats=stats
            )
        # Must fail promptly (no hang waiting on a dead pool) and
        # record the abandoned task.
        assert time.perf_counter() - start < 30.0
        assert stats.snapshot().tasks_failed == 1


class TestTimeout:
    def test_hung_task_times_out(self):
        start = time.perf_counter()
        with pytest.raises(EngineError, match="timed out"):
            run_batch(
                _sleep_long, [(1,)], jobs=2, timeout=0.4, retries=0
            )
        # The batch must fail promptly, not wait out the sleep (the
        # pool shutdown itself must not join the stuck worker).
        assert time.perf_counter() - start < 2.5


class TestSeededTasks:
    def test_appends_one_seed_per_task(self):
        tasks = seeded_tasks([("a",), ("b",)], base_seed=9)
        assert [task[0] for task in tasks] == ["a", "b"]
        assert tasks[0][1] != tasks[1][1]

    def test_none_base_keeps_tasks_unseeded(self):
        assert seeded_tasks([("a",)], base_seed=None) == [("a", None)]
