"""Engine facade: cached solving, sweeps, uncertainty, simulation."""

import dataclasses

import pytest

from repro import compute_measures, translate
from repro.analysis import (
    UncertainField,
    propagate_uncertainty,
    sweep_block_field,
)
from repro.engine import Engine, SolveCache
from repro.errors import SolverError
from repro.library import (
    ClusterParameters,
    cluster_availability,
    cluster_chain,
    datacenter_model,
    e10000_model,
    workgroup_model,
)
from repro.semimarkov import Lognormal
from repro.validation import simulate_system_availability

CPU = "Data Center System/Server Box/CPU Module"
OS = "Workgroup Server/Operating System"


class TestCachedSolve:
    @pytest.mark.parametrize(
        "factory", [datacenter_model, e10000_model, workgroup_model],
        ids=["datacenter", "e10000", "workgroup"],
    )
    def test_cold_and_warm_measures_bit_identical(self, factory):
        model = factory()
        engine = Engine()
        cold = compute_measures(engine.solve(model))
        after_cold = engine.stats_snapshot()
        # A *fresh* model object (new digest computation, warm cache).
        warm = compute_measures(engine.solve(factory()))
        for field in dataclasses.fields(cold):
            assert getattr(warm, field.name) == getattr(
                cold, field.name
            ), field.name
        snapshot = engine.stats_snapshot()
        assert snapshot.system_cache_hits == 1
        # The whole-model hit short-circuits the walk: no further
        # block-level work of any kind.
        assert snapshot.block_lookups == after_cold.block_lookups

    def test_engine_matches_plain_translate(self):
        model = datacenter_model()
        assert Engine().solve(model).availability == (
            translate(model).availability
        )

    def test_block_cache_shared_across_different_models(self):
        engine = Engine()
        engine.solve(workgroup_model())
        first = engine.stats_snapshot().block_solves
        # Same blocks, different model object with a changed sibling:
        # only the changed block may be re-solved.
        from repro.analysis import with_block_changes

        changed = with_block_changes(
            workgroup_model(), OS, mtbf_hours=45_000.0
        )
        engine.solve(changed)
        snapshot = engine.stats_snapshot()
        assert snapshot.block_solves == first + 1
        assert snapshot.block_cache_hits > 0

    def test_disabled_cache_still_solves(self):
        engine = Engine(cache=False)
        model = workgroup_model()
        a = engine.solve(model)
        b = engine.solve(model)
        assert a.availability == b.availability
        snapshot = engine.stats_snapshot()
        assert snapshot.system_cache_hits == 0
        assert snapshot.block_cache_hits == 0

    def test_cluster_chain_cached_solve_bit_identical(self):
        parameters = ClusterParameters()
        engine = Engine()
        cold = engine.solve_chain(cluster_chain(parameters))
        warm = engine.solve_chain(cluster_chain(parameters))
        assert warm == cold
        assert engine.stats_snapshot().block_cache_hits == 1
        assert cold["__availability__"] == pytest.approx(
            cluster_availability(parameters), abs=0.0
        )

    def test_persistent_layer_survives_engine_restart(self, tmp_path):
        model = e10000_model()
        Engine(cache_dir=tmp_path).solve(model)
        rewarmed = Engine(cache_dir=tmp_path)
        solution = rewarmed.solve(model)
        snapshot = rewarmed.stats_snapshot()
        assert snapshot.block_solves == 0
        assert snapshot.disk_hits > 0
        assert solution.availability == translate(model).availability

    def test_invalid_jobs_rejected(self):
        with pytest.raises(SolverError):
            Engine(jobs=0)


class TestSweeps:
    VALUES = [50_000.0, 100_000.0, 200_000.0, 400_000.0]

    def test_sibling_blocks_are_not_resolved_per_point(self):
        model = datacenter_model()
        engine = Engine()
        engine.solve(model)  # warm the block cache
        blocks_after_solve = engine.stats_snapshot().block_solves
        engine.sweep_block_field(model, CPU, "mtbf_hours", self.VALUES)
        snapshot = engine.stats_snapshot()
        # Each point re-solves only the swept block, nothing else.
        assert snapshot.block_solves == blocks_after_solve + len(
            self.VALUES
        )
        assert snapshot.cache_hit_rate > 0.0

    def test_parallel_and_serial_sweeps_identical(self):
        model = datacenter_model()
        serial = Engine(jobs=1).sweep_block_field(
            model, CPU, "mtbf_hours", self.VALUES
        )
        parallel = Engine(jobs=2).sweep_block_field(
            model, CPU, "mtbf_hours", self.VALUES
        )
        assert parallel == serial

    def test_wrapper_equals_engine_method(self):
        model = datacenter_model()
        engine = Engine()
        assert sweep_block_field(
            model, CPU, "mtbf_hours", self.VALUES, engine=engine
        ) == Engine().sweep_block_field(
            model, CPU, "mtbf_hours", self.VALUES
        )

    def test_global_sweep_parallel_matches_serial(self):
        model = workgroup_model()
        values = [12.0, 24.0, 96.0]
        serial = Engine(jobs=1).sweep_global_field(
            model, "mttm_hours", values
        )
        parallel = Engine(jobs=2).sweep_global_field(
            model, "mttm_hours", values
        )
        assert parallel == serial


class TestUncertainty:
    def test_jobs_do_not_change_the_numbers(self):
        model = workgroup_model()
        uncertain = [
            UncertainField(
                OS, "mtbf_hours", Lognormal.from_mean_cv(30_000.0, 0.5)
            )
        ]
        serial = Engine(jobs=1).propagate_uncertainty(
            model, uncertain, samples=8, seed=11
        )
        parallel = Engine(jobs=2).propagate_uncertainty(
            model, uncertain, samples=8, seed=11
        )
        assert serial.availability_samples == parallel.availability_samples
        assert serial.mean_availability == parallel.mean_availability

    def test_wrapper_routes_through_engine(self):
        engine = Engine()
        model = workgroup_model()
        uncertain = [
            UncertainField(
                OS, "mtbf_hours", Lognormal.from_mean_cv(30_000.0, 0.3)
            )
        ]
        result = propagate_uncertainty(
            model, uncertain, samples=6, seed=3, engine=engine
        )
        assert result.samples == 6
        assert engine.stats_snapshot().block_lookups > 0

    def test_validation_errors_preserved(self):
        engine = Engine()
        with pytest.raises(SolverError):
            engine.propagate_uncertainty(workgroup_model(), [], samples=5)
        with pytest.raises(SolverError):
            engine.propagate_uncertainty(
                workgroup_model(),
                [UncertainField(
                    OS, "mtbf_hours", Lognormal.from_mean_cv(3e4, 0.3)
                )],
                samples=1,
            )


class TestSimulation:
    def test_serial_and_parallel_replications_identical(self):
        solution = translate(workgroup_model())
        serial = Engine(jobs=1).simulate_system(
            solution, horizon=4_000.0, replications=10, seed=21
        )
        parallel = Engine(jobs=3).simulate_system(
            solution, horizon=4_000.0, replications=10, seed=21
        )
        assert serial.mean == parallel.mean
        assert serial.low == parallel.low
        assert serial.high == parallel.high

    def test_simulator_jobs_parameter_routes_through_engine(self):
        solution = translate(workgroup_model())
        a = simulate_system_availability(
            solution, horizon=4_000.0, replications=10, seed=21, jobs=1
        )
        b = Engine(jobs=1).simulate_system(
            solution, horizon=4_000.0, replications=10, seed=21
        )
        assert a.mean == b.mean

    def test_engine_interval_contains_analytic_value(self):
        solution = translate(workgroup_model())
        result = Engine().simulate_system(
            solution, horizon=30_000.0, replications=40, seed=0
        )
        assert result.contains(solution.availability)


class TestSharedCacheAndStats:
    def test_engines_can_share_one_cache(self):
        cache = SolveCache()
        Engine(cache=cache).solve(workgroup_model())
        second = Engine(cache=cache)
        second.solve(workgroup_model())
        snapshot = second.stats_snapshot()
        assert snapshot.block_solves == 0
        assert snapshot.system_cache_hits == 1

    def test_save_stats_round_trips(self, tmp_path):
        from repro.engine import load_stats

        engine = Engine()
        engine.solve(workgroup_model())
        engine.save_stats(tmp_path)
        loaded = load_stats(tmp_path)
        assert loaded is not None
        assert loaded.block_solves == (
            engine.stats_snapshot().block_solves
        )
