"""Tests for the command-line interface."""

import json
from pathlib import Path

import pytest

from repro import datacenter_model, save_spec, workgroup_model
from repro.cli import main


@pytest.fixture(scope="module")
def spec_path(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli") / "model.json"
    save_spec(workgroup_model(), path)
    return str(path)


class TestSolve:
    def test_prints_measures(self, spec_path, capsys):
        assert main(["solve", spec_path]) == 0
        out = capsys.readouterr().out
        assert "availability" in out
        assert "yearly downtime" in out
        assert "Workgroup Server" in out

    def test_mission_override(self, spec_path, capsys):
        assert main(["solve", spec_path, "--mission", "100"]) == 0
        out = capsys.readouterr().out
        assert "100 h" in out


class TestTreeAndReport:
    def test_tree(self, spec_path, capsys):
        assert main(["tree", spec_path]) == 0
        out = capsys.readouterr().out
        assert "Mirrored Disk" in out
        assert "Type 0" in out

    def test_report(self, spec_path, capsys):
        assert main(["report", spec_path]) == 0
        out = capsys.readouterr().out
        assert "# RAS model report" in out


class TestBudget:
    def test_rows_printed(self, spec_path, capsys):
        assert main(["budget", spec_path]) == 0
        out = capsys.readouterr().out
        assert "Operating System" in out
        assert "share" in out


class TestDot:
    def test_chain_export(self, spec_path, capsys):
        assert main(
            ["dot", spec_path, "Workgroup Server/Operating System"]
        ) == 0
        out = capsys.readouterr().out
        assert out.startswith("digraph")

    def test_passthrough_block_errors(self, tmp_path, capsys):
        path = tmp_path / "dc.json"
        save_spec(datacenter_model(), path)
        code = main(["dot", str(path), "Data Center System/Server Box"])
        assert code == 2
        assert "pass-through" in capsys.readouterr().err


class TestSweep:
    def test_table_printed(self, spec_path, capsys):
        assert main([
            "sweep", spec_path, "Workgroup Server/Operating System",
            "mtbf_hours", "20000", "40000",
        ]) == 0
        out = capsys.readouterr().out
        assert "20000" in out and "40000" in out

    def test_downtime_monotone_in_output(self, spec_path, capsys):
        main([
            "sweep", spec_path, "Workgroup Server/Operating System",
            "mtbf_hours", "20000", "40000",
        ])
        lines = capsys.readouterr().out.strip().splitlines()[1:]
        downtimes = [float(line.split()[-1]) for line in lines]
        assert downtimes[0] > downtimes[1]

    def test_range_shorthand_expands(self, spec_path, capsys):
        assert main([
            "sweep", spec_path, "Workgroup Server/Operating System",
            "mtbf_hours", "20000:40000:3",
        ]) == 0
        lines = capsys.readouterr().out.strip().splitlines()[1:]
        assert len(lines) == 3
        assert [float(line.split()[0]) for line in lines] == [
            20000.0, 30000.0, 40000.0,
        ]

    def test_ranges_mix_with_plain_values(self, spec_path, capsys):
        assert main([
            "sweep", spec_path, "Workgroup Server/Operating System",
            "mtbf_hours", "10000", "20000:40000:2",
        ]) == 0
        lines = capsys.readouterr().out.strip().splitlines()[1:]
        assert len(lines) == 3

    def test_malformed_range_is_a_clear_error(self, spec_path, capsys):
        code = main([
            "sweep", spec_path, "Workgroup Server/Operating System",
            "mtbf_hours", "20000:40000",
        ])
        assert code == 2
        err = capsys.readouterr().err
        assert "20000:40000" in err
        assert "start:stop:count" in err

    def test_range_count_below_two_rejected(self, spec_path, capsys):
        code = main([
            "sweep", spec_path, "Workgroup Server/Operating System",
            "mtbf_hours", "1:2:1",
        ])
        assert code == 2
        assert "count" in capsys.readouterr().err

    @pytest.mark.parametrize("token", ["1:2:0", "1:2:-3"])
    def test_non_positive_range_count_is_a_clear_error(
        self, spec_path, capsys, token
    ):
        code = main([
            "sweep", spec_path, "Workgroup Server/Operating System",
            "mtbf_hours", token,
        ])
        assert code == 2
        err = capsys.readouterr().err
        assert token in err
        assert "positive" in err

    def test_absurd_range_count_is_refused_before_allocating(
        self, spec_path, capsys
    ):
        code = main([
            "sweep", spec_path, "Workgroup Server/Operating System",
            "mtbf_hours", "1:2:999999999",
        ])
        assert code == 2
        assert "exceeds" in capsys.readouterr().err


class TestValidate:
    def test_agreement(self, spec_path, capsys):
        code = main([
            "validate", spec_path,
            "--replications", "20", "--horizon", "20000", "--seed", "1",
        ])
        out = capsys.readouterr().out
        assert "PASS" in out
        assert code == 0


class TestRequirement:
    def test_met_requirement_exits_zero(self, spec_path, capsys):
        assert main(["requirement", spec_path, "--nines", "2.5"]) == 0
        out = capsys.readouterr().out
        assert "MEETS" in out

    def test_missed_requirement_exits_nonzero(self, spec_path, capsys):
        assert main(["requirement", spec_path, "--nines", "5"]) == 1
        out = capsys.readouterr().out
        assert "MISSES" in out

    def test_downtime_budget_form(self, spec_path, capsys):
        assert main(
            ["requirement", spec_path, "--downtime", "1000"]
        ) == 0
        assert "margin" in capsys.readouterr().out


class TestCompare:
    def test_side_by_side(self, spec_path, tmp_path, capsys):
        path2 = tmp_path / "dc.json"
        save_spec(datacenter_model(), path2)
        assert main(["compare", spec_path, str(path2)]) == 0
        out = capsys.readouterr().out
        assert "Workgroup Server" in out
        assert "Data Center System" in out
        assert "availability" in out


class TestDiff:
    def test_identical_specs(self, spec_path, capsys):
        assert main(["diff", spec_path, spec_path]) == 0
        assert "identical" in capsys.readouterr().out

    def test_changed_spec_reports_impact(self, spec_path, tmp_path, capsys):
        import json

        payload = json.loads(Path(spec_path).read_text())
        for block in payload["diagram"]["blocks"]:
            if block["name"] == "Operating System":
                block["mtbf_hours"] = 300_000.0
        changed = tmp_path / "changed.json"
        changed.write_text(json.dumps(payload))
        assert main(["diff", spec_path, str(changed)]) == 0
        out = capsys.readouterr().out
        assert "mtbf_hours" in out
        assert "min/yr" in out


class TestParts:
    def test_builtin_catalog(self, capsys):
        assert main(["parts"]) == 0
        out = capsys.readouterr().out
        assert "CPU-400" in out
        assert "HDD-36G" in out


class TestVersion:
    def test_version_flag_prints_and_exits(self, capsys):
        from repro import __version__

        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0
        assert __version__ in capsys.readouterr().out


class TestEngineFlags:
    def test_sweep_jobs_matches_serial(self, spec_path, capsys):
        argv = [
            "sweep", spec_path, "Workgroup Server/Operating System",
            "mtbf_hours", "20000", "40000",
        ]
        assert main(argv + ["--no-cache"]) == 0
        serial = capsys.readouterr().out
        assert main(argv + ["--jobs", "2", "--no-cache"]) == 0
        assert capsys.readouterr().out == serial

    def test_no_cache_solve(self, spec_path, capsys):
        assert main(["solve", spec_path, "--no-cache"]) == 0
        assert "availability" in capsys.readouterr().out

    def test_cache_dir_populates_stats(self, spec_path, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        assert main(["solve", spec_path, "--cache-dir", cache_dir]) == 0
        capsys.readouterr()
        assert main(["stats", "--cache-dir", cache_dir]) == 0
        out = capsys.readouterr().out
        assert "engine stats" in out
        assert "persistent cache" in out

    def test_stats_without_history_is_friendly(self, tmp_path, capsys):
        assert main(["stats", "--cache-dir", str(tmp_path / "empty")]) == 0
        assert "no engine stats" in capsys.readouterr().out

    def test_second_solve_hits_persistent_cache(
        self, spec_path, tmp_path, capsys
    ):
        cache_dir = str(tmp_path / "cache")
        main(["solve", spec_path, "--cache-dir", cache_dir])
        main(["solve", spec_path, "--cache-dir", cache_dir])
        capsys.readouterr()
        main(["stats", "--cache-dir", cache_dir])
        out = capsys.readouterr().out
        # The second run recomputed nothing: every block came back from
        # the persistent layer.
        assert "block solves         : 0 computed" in out
        assert "(0 from disk)" not in out


class TestStatsJson:
    def test_stats_json_is_machine_readable(
        self, spec_path, tmp_path, capsys
    ):
        cache_dir = str(tmp_path / "cache")
        assert main(["solve", spec_path, "--cache-dir", cache_dir]) == 0
        capsys.readouterr()
        assert main(["stats", "--cache-dir", cache_dir, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["engine"]["system_solves"] == 1
        assert payload["cache"]["disk_entries"] > 0
        assert 0.0 <= payload["derived"]["cache_hit_rate"] <= 1.0

    def test_stats_json_without_history(self, tmp_path, capsys):
        empty = str(tmp_path / "empty")
        assert main(["stats", "--cache-dir", empty, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["engine"] is None
        assert payload["cache"] == {"disk_entries": 0, "disk_bytes": 0}

    def test_stats_json_matches_the_service_metrics_shape(
        self, spec_path, tmp_path, capsys
    ):
        from repro.engine import SolveCache, load_stats, metrics_payload

        cache_dir = str(tmp_path / "cache")
        main(["solve", spec_path, "--cache-dir", cache_dir])
        capsys.readouterr()
        main(["stats", "--cache-dir", cache_dir, "--json"])
        printed = json.loads(capsys.readouterr().out)
        expected = metrics_payload(
            load_stats(cache_dir),
            disk_usage=SolveCache(cache_dir=cache_dir).disk_usage(),
        )
        assert printed == expected


class TestServeParser:
    def test_serve_flags_parse(self):
        from repro.cli import build_parser

        args = build_parser().parse_args([
            "serve", "--host", "0.0.0.0", "--port", "9000",
            "--jobs", "4", "--cache-dir", "/tmp/c", "--max-queue",
            "128", "--request-timeout", "5", "--warm-start",
        ])
        assert args.host == "0.0.0.0"
        assert args.port == 9000
        assert args.jobs == 4
        assert args.max_queue == 128
        assert args.request_timeout == 5.0
        assert args.warm_start

    def test_serve_defaults(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["serve"])
        assert args.host == "127.0.0.1"
        assert args.port == 8080
        assert args.max_queue == 64
        assert args.request_timeout == 30.0
        assert not args.warm_start


class TestJobsCli:
    def _submit(self, spec_path, db, extra=()):
        return main([
            "jobs", "submit", spec_path,
            "--kind", "sweep",
            "--block", "Workgroup Server/Operating System",
            "--field", "mtbf_hours",
            "--values", "20000:40000:3",
            "--db", db, *extra,
        ])

    def test_submit_then_dedup(self, spec_path, tmp_path, capsys):
        db = str(tmp_path / "jobs.sqlite3")
        assert self._submit(spec_path, db) == 0
        first = capsys.readouterr().out
        assert "submitted" in first
        assert self._submit(spec_path, db) == 0
        assert "deduplicated" in capsys.readouterr().out

    def test_status_and_list(self, spec_path, tmp_path, capsys):
        db = str(tmp_path / "jobs.sqlite3")
        self._submit(spec_path, db)
        job_id = capsys.readouterr().out.split()[0]
        assert main(["jobs", "status", job_id, "--db", db]) == 0
        out = capsys.readouterr().out
        assert job_id in out
        assert "queued" in out
        assert main(["jobs", "list", "--db", db]) == 0
        assert job_id in capsys.readouterr().out

    def test_cancel(self, spec_path, tmp_path, capsys):
        db = str(tmp_path / "jobs.sqlite3")
        self._submit(spec_path, db)
        job_id = capsys.readouterr().out.split()[0]
        assert main(["jobs", "cancel", job_id, "--db", db]) == 0
        assert "cancelled" in capsys.readouterr().out

    def test_status_unknown_id_errors(self, tmp_path, capsys):
        db = str(tmp_path / "jobs.sqlite3")
        code = main(["jobs", "status", "job-missing", "--db", db])
        assert code == 2
        assert "no job" in capsys.readouterr().err

    def test_worker_once_drains_the_queue(self, spec_path, tmp_path,
                                          capsys):
        db = str(tmp_path / "jobs.sqlite3")
        self._submit(spec_path, db)
        job_id = capsys.readouterr().out.split()[0]
        assert main([
            "jobs", "worker", "--once", "--db", db,
            "--cache-dir", str(tmp_path / "cache"),
        ]) == 0
        out = capsys.readouterr().out
        assert "exiting after 1 job(s)" in out
        main(["jobs", "status", job_id, "--db", db])
        status = capsys.readouterr().out
        assert "succeeded" in status
        assert "result_digest" in status

    def test_worker_parser_defaults(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["jobs", "worker"])
        assert args.poll == 0.5
        assert args.lease_timeout == 60.0
        assert args.checkpoint_every == 25
        assert not args.once
        assert args.max_jobs is None

    def test_serve_jobs_db_flag_parses(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["serve", "--jobs-db", "/tmp/q.db"]
        )
        assert args.jobs_db == "/tmp/q.db"


class TestErrors:
    def test_bad_spec_path(self, capsys):
        code = main(["solve", "/nonexistent/model.json"])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_unknown_sweep_field(self, spec_path, capsys):
        code = main([
            "sweep", spec_path, "Workgroup Server/Operating System",
            "mtbf_hourz", "1",
        ])
        assert code == 2


class TestClusterCli:
    def test_coordinator_flags_parse(self):
        from repro.cli import build_parser

        args = build_parser().parse_args([
            "cluster", "coordinator", "--port", "8100",
            "--worker", "http://a:8101", "--worker", "http://b:8102",
            "--shard-size", "8", "--steal-after", "2",
            "--max-shard-attempts", "6", "--jobs-db", "/tmp/c.db",
        ])
        assert args.worker == ["http://a:8101", "http://b:8102"]
        assert args.shard_size == 8
        assert args.steal_after == 2.0
        assert args.max_shard_attempts == 6
        assert args.jobs_db == "/tmp/c.db"
        assert args.fanout_threshold == 2  # default

    def test_worker_flags_parse(self):
        from repro.cli import build_parser

        args = build_parser().parse_args([
            "cluster", "worker", "--coordinator", "http://c:8100",
            "--advertise", "http://me:8101",
            "--heartbeat-interval", "1.5",
        ])
        assert args.coordinator == "http://c:8100"
        assert args.advertise == "http://me:8101"
        assert args.heartbeat_interval == 1.5

    def test_worker_requires_a_coordinator(self, capsys):
        from repro.cli import build_parser

        with pytest.raises(SystemExit):
            build_parser().parse_args(["cluster", "worker"])

    def test_status_takes_a_url(self):
        from repro.cli import build_parser

        args = build_parser().parse_args([
            "cluster", "status", "http://c:8100", "--json"
        ])
        assert args.coordinator == "http://c:8100"
        assert args.json

    def test_sweep_cluster_flags_parse(self, spec_path):
        from repro.cli import build_parser

        args = build_parser().parse_args([
            "sweep", spec_path, "Workgroup Server/Operating System",
            "mtbf_hours", "1:2:4", "--cluster", "http://c:8100",
            "--cluster-timeout", "120",
        ])
        assert args.cluster == "http://c:8100"
        assert args.cluster_timeout == 120.0

    def test_status_against_a_live_coordinator(self, capsys):
        import asyncio

        from repro.service import Server, ServiceConfig

        async def go():
            server = Server(ServiceConfig(port=0, cluster=True))
            host, port = await server.start()
            try:
                return await asyncio.to_thread(
                    main, ["cluster", "status", f"http://{host}:{port}"]
                )
            finally:
                await server.shutdown()

        assert asyncio.run(go()) == 0
        out = capsys.readouterr().out
        assert "jobs completed" in out or "jobs_completed" in out


class TestDbCli:
    @pytest.fixture
    def cache_dir(self, tmp_path):
        from repro.jobs import JobStore
        from repro.studies.store import StudyStore

        JobStore(tmp_path / "jobs.sqlite3").close()
        studies = StudyStore(tmp_path / "studies")
        studies.submit("study-1", {"name": "s"})
        studies.close()
        return tmp_path

    def test_status_discovers_cache_databases(self, cache_dir, capsys):
        assert main([
            "db", "status", "--cache-dir", str(cache_dir)
        ]) == 0
        out = capsys.readouterr().out
        assert "jobs" in out and "studies" in out
        assert "wal" in out

    def test_status_json(self, cache_dir, capsys):
        assert main([
            "db", "status", "--cache-dir", str(cache_dir), "--json"
        ]) == 0
        statuses = json.loads(capsys.readouterr().out)
        by_name = {status["name"]: status for status in statuses}
        assert by_name["jobs"]["user_version"] == 1
        assert by_name["studies"]["tables"]["studies"] == 1

    def test_status_explicit_path(self, cache_dir, capsys):
        assert main([
            "db", "status", str(cache_dir / "jobs.sqlite3"), "--json"
        ]) == 0
        statuses = json.loads(capsys.readouterr().out)
        assert [status["name"] for status in statuses] == ["jobs"]

    def test_check_reports_ok(self, cache_dir, capsys):
        assert main([
            "db", "check", "--cache-dir", str(cache_dir)
        ]) == 0
        out = capsys.readouterr().out
        assert out.count(" ok ") == 2

    def test_check_exits_nonzero_on_corruption(self, tmp_path, capsys):
        from repro.jobs import JobStore

        path = tmp_path / "jobs.sqlite3"
        JobStore(path).close()
        data = bytearray(path.read_bytes())
        data[4096:4200] = b"\xff" * 104  # stomp the first table page
        path.write_bytes(bytes(data))
        assert main(["db", "check", str(path)]) == 1
        assert "CORRUPT" in capsys.readouterr().out

    def test_backup_round_trip(self, cache_dir, capsys):
        import sqlite3

        out_dir = cache_dir / "backups"
        assert main([
            "db", "backup", "--cache-dir", str(cache_dir),
            "--out-dir", str(out_dir),
        ]) == 0
        copies = sorted(p.name for p in out_dir.iterdir())
        assert copies == [
            "jobs.backup.sqlite3", "studies.backup.sqlite3"
        ]
        conn = sqlite3.connect(str(out_dir / "studies.backup.sqlite3"))
        try:
            count = conn.execute(
                "SELECT COUNT(*) FROM studies"
            ).fetchone()[0]
        finally:
            conn.close()
        assert count == 1

    def test_backup_out_requires_single_database(self, cache_dir, capsys):
        assert main([
            "db", "backup", "--cache-dir", str(cache_dir),
            "--out", str(cache_dir / "one.sqlite3"),
        ]) == 2
        assert "exactly one" in capsys.readouterr().err

    def test_empty_cache_dir_is_an_error(self, tmp_path, capsys):
        assert main(["db", "status", "--cache-dir", str(tmp_path)]) == 2
        assert "no store databases" in capsys.readouterr().err
