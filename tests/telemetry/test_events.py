"""Field-event records: tick grid, content ids, batch parsing."""

import pytest

from repro.library import e10000_model
from repro.core import translate
from repro.telemetry import (
    TICKS_PER_HOUR,
    FieldEvent,
    TelemetryError,
    event_from_dict,
    events_from_field_log,
    from_ticks,
    parse_events,
    to_ticks,
)
from repro.validation.field_data import generate_field_log


class TestTickGrid:
    def test_one_hour_is_the_grid_constant(self):
        assert to_ticks(1.0) == TICKS_PER_HOUR

    def test_round_trip_is_exact_on_the_grid(self):
        for hours in (0.0, 0.5, 123.456, 10_950.0):
            assert to_ticks(from_ticks(to_ticks(hours))) == to_ticks(hours)

    def test_non_numeric_time_is_rejected(self):
        with pytest.raises(TelemetryError):
            to_ticks("soon")
        with pytest.raises(TelemetryError):
            to_ticks(True)

    def test_non_finite_time_is_rejected(self):
        with pytest.raises(TelemetryError):
            to_ticks(float("inf"))
        with pytest.raises(TelemetryError):
            to_ticks(float("nan"))


class TestFieldEvent:
    def test_valid_event_round_trips_through_its_dict(self):
        event = FieldEvent("Sys/Disk", "srv/Disk#0", "failure", 100.0)
        parsed = event_from_dict(event.to_dict())
        assert parsed == event
        assert parsed.event_id == event.event_id

    def test_id_is_content_addressed(self):
        a = FieldEvent("Sys/Disk", "u#0", "failure", 100.0)
        b = FieldEvent("Sys/Disk", "u#0", "failure", 100.0)
        c = FieldEvent("Sys/Disk", "u#0", "failure", 100.5)
        assert a.event_id == b.event_id
        assert a.event_id != c.event_id
        assert a.event_id.startswith("evt-")

    def test_unknown_kind_is_rejected(self):
        with pytest.raises(TelemetryError, match="kind"):
            FieldEvent("Sys/Disk", "u#0", "maintenance", 1.0)

    def test_empty_part_or_unit_is_rejected(self):
        with pytest.raises(TelemetryError):
            FieldEvent("", "u#0", "failure", 1.0)
        with pytest.raises(TelemetryError):
            FieldEvent("Sys/Disk", "", "failure", 1.0)

    def test_negative_time_is_rejected(self):
        with pytest.raises(TelemetryError, match="non-negative"):
            FieldEvent("Sys/Disk", "u#0", "failure", -1.0)


class TestParseEvents:
    def test_non_list_body_is_rejected(self):
        with pytest.raises(TelemetryError, match="list"):
            parse_events({"part": "x"})
        with pytest.raises(TelemetryError, match="list"):
            parse_events("not a list")

    def test_malformed_entry_names_its_index(self):
        good = FieldEvent("Sys/Disk", "u#0", "failure", 1.0).to_dict()
        with pytest.raises(TelemetryError, match=r"events\[1\]"):
            parse_events([good, {"part": "Sys/Disk"}])

    def test_missing_field_is_named(self):
        with pytest.raises(TelemetryError, match="time_hours"):
            event_from_dict(
                {"part": "Sys/Disk", "unit": "u#0", "kind": "failure"}
            )

    def test_parse_preserves_order(self):
        raw = [
            FieldEvent("Sys/Disk", "u#0", "failure", t).to_dict()
            for t in (5.0, 1.0, 9.0)
        ]
        assert [e.time_hours for e in parse_events(raw)] == [5.0, 1.0, 9.0]


class TestFieldLogBridge:
    def test_outage_log_becomes_failure_repair_pairs(self):
        solution = translate(e10000_model())
        log = generate_field_log(
            solution, window_hours=10_950.0, seed=7
        )
        events = events_from_field_log(log, "E10000 Server")
        failures = [e for e in events if e.kind == "failure"]
        repairs = [e for e in events if e.kind == "repair"]
        assert len(failures) == len(log.events)
        # Repairs past the window edge are dropped, never invented.
        assert len(repairs) <= len(failures)
        for failure, outage in zip(failures, log.events):
            assert failure.time_hours == outage.start_hour
            assert failure.unit == log.server
            assert failure.part == "E10000 Server"
