"""Streaming rate estimation: exposure accounting, merges, digests."""

import pytest

from repro.telemetry import (
    FieldEvent,
    OutOfOrderError,
    RateEstimator,
    TelemetryError,
)
from repro.validation.intervals import poisson_rate_interval

PART = "Sys/Disk"


def _event(time_hours, unit="u#0", kind="failure", part=PART):
    return FieldEvent(part, unit, kind, time_hours)


class TestExposureAccounting:
    def test_up_and_down_time_split_around_the_outage(self):
        estimator = RateEstimator(window_hours=168.0)
        estimator.ingest(_event(100.0, kind="failure"))
        estimator.ingest(_event(110.0, kind="repair"))
        fitted = estimator.fit(window_end_hours=200.0)
        fit = fitted.part(PART)
        assert fit.failures == 1
        assert fit.repairs == 1
        assert fit.up_hours == pytest.approx(100.0 + 90.0)
        assert fit.down_hours == pytest.approx(10.0)
        assert fit.failure_rate == pytest.approx(1.0 / 190.0)
        assert fit.mtbf_hours == pytest.approx(190.0)
        assert fit.mttr_hours == pytest.approx(10.0)

    def test_tail_of_a_down_unit_extends_downtime(self):
        estimator = RateEstimator(window_hours=168.0)
        estimator.ingest(_event(50.0, kind="failure"))
        fit = estimator.fit(window_end_hours=100.0).part(PART)
        assert fit.up_hours == pytest.approx(50.0)
        assert fit.down_hours == pytest.approx(50.0)

    def test_interval_is_the_shared_garwood_bound(self):
        estimator = RateEstimator(window_hours=168.0)
        for i in range(4):
            estimator.ingest(_event(100.0 + 200.0 * i, kind="failure"))
            estimator.ingest(_event(101.0 + 200.0 * i, kind="repair"))
        fit = estimator.fit(confidence=0.90).part(PART)
        low, high = poisson_rate_interval(
            fit.failures, fit.up_hours, 0.90
        )
        assert (fit.rate_low, fit.rate_high) == (low, high)
        assert low < fit.failure_rate < high

    def test_failure_free_part_quotes_only_an_upper_bound(self):
        estimator = RateEstimator(window_hours=168.0)
        estimator.ingest(_event(500.0, kind="latent_detect"))
        fit = estimator.fit().part(PART)
        assert fit.failures == 0
        assert fit.failure_rate == 0.0
        assert fit.rate_low == 0.0
        low, high = poisson_rate_interval(0, 500.0, 0.95)
        assert fit.rate_high == high > 0.0
        assert fit.mtbf_hours is None


class TestIdempotence:
    def test_replayed_event_is_a_duplicate_not_a_double_count(self):
        estimator = RateEstimator(window_hours=168.0)
        event = _event(100.0)
        assert estimator.ingest(event) is True
        assert estimator.ingest(event) is False
        assert estimator.events_total == 1

    def test_replayed_batch_leaves_the_digest_unchanged(self):
        events = [_event(10.0), _event(20.0, kind="repair"), _event(30.0)]
        estimator = RateEstimator(window_hours=168.0)
        assert estimator.ingest_many(events) == (3, 0)
        digest = estimator.state_digest()
        assert estimator.ingest_many(events) == (0, 3)
        assert estimator.state_digest() == digest

    def test_out_of_order_event_is_rejected(self):
        estimator = RateEstimator(window_hours=168.0)
        estimator.ingest(_event(100.0))
        with pytest.raises(OutOfOrderError):
            estimator.ingest(_event(50.0, kind="repair"))


class TestMerge:
    def shards(self):
        a = RateEstimator(window_hours=168.0)
        a.ingest_many([_event(10.0, unit="u#0"),
                       _event(12.0, unit="u#0", kind="repair")])
        b = RateEstimator(window_hours=168.0)
        b.ingest_many([_event(200.0, unit="u#1")])
        c = RateEstimator(window_hours=168.0)
        c.ingest_many([_event(99.0, unit="u#2", part="Sys/CPU")])
        return a, b, c

    def single_pass(self):
        estimator = RateEstimator(window_hours=168.0)
        estimator.ingest_many([
            _event(10.0, unit="u#0"),
            _event(12.0, unit="u#0", kind="repair"),
            _event(99.0, unit="u#2", part="Sys/CPU"),
            _event(200.0, unit="u#1"),
        ])
        return estimator

    def test_merge_equals_the_single_pass_state(self):
        a, b, c = self.shards()
        merged = a.merge(b).merge(c)
        assert merged.state_digest() == self.single_pass().state_digest()

    def test_merge_is_associative_and_commutative(self):
        a, b, c = self.shards()
        left = a.merge(b).merge(c)
        right = a.merge(b.merge(c))
        swapped = c.merge(a).merge(b)
        assert (
            left.state_digest()
            == right.state_digest()
            == swapped.state_digest()
        )
        assert left.fit().digest() == right.fit().digest()

    def test_overlapping_units_refuse_to_merge(self):
        a, _, _ = self.shards()
        twin = RateEstimator(window_hours=168.0)
        twin.ingest(_event(500.0, unit="u#0"))
        with pytest.raises(ValueError, match="both"):
            a.merge(twin)

    def test_mismatched_window_ladders_refuse_to_merge(self):
        a, _, _ = self.shards()
        other = RateEstimator(window_hours=24.0)
        with pytest.raises(ValueError, match="configurations"):
            a.merge(other)


class TestSerialization:
    def test_state_round_trips_bit_identically(self):
        estimator = RateEstimator(window_hours=168.0)
        estimator.ingest_many(
            [_event(10.0), _event(15.0, kind="repair"), _event(40.0)]
        )
        restored = RateEstimator.from_dict(estimator.to_dict())
        assert restored.state_digest() == estimator.state_digest()
        assert restored.fit().digest() == estimator.fit().digest()
        # And the restored state keeps enforcing monotonicity.
        with pytest.raises(OutOfOrderError):
            restored.ingest(_event(20.0, kind="repair"))

    def test_unknown_state_format_is_rejected(self):
        payload = RateEstimator(window_hours=168.0).to_dict()
        payload["format"] = "telemetry-state/v999"
        with pytest.raises(TelemetryError, match="format"):
            RateEstimator.from_dict(payload)


class TestIngestOrderInvariance:
    def test_unit_interleaving_does_not_change_the_fit(self):
        stream_a = [_event(t, unit="u#0") for t in (10.0, 30.0, 50.0)]
        stream_b = [_event(t, unit="u#1") for t in (5.0, 25.0, 45.0)]
        orders = [
            stream_a + stream_b,
            stream_b + stream_a,
            [x for pair in zip(stream_a, stream_b) for x in pair],
        ]
        digests = set()
        for order in orders:
            estimator = RateEstimator(window_hours=168.0)
            estimator.ingest_many(order)
            digests.add(
                (estimator.state_digest(), estimator.fit().digest())
            )
        assert len(digests) == 1
