"""CUSUM drift detection: deterministic LLR over the window ladder."""

import math

import pytest

from repro.library import e10000_model
from repro.telemetry import (
    DETERIORATION,
    IMPROVEMENT,
    DriftConfig,
    FieldEvent,
    RateEstimator,
    TelemetryError,
    detect_drift,
    reference_rates,
    synthetic_field_events,
)

PART = "Sys/Disk"
WINDOW = 168.0


def fed_estimator(times, kind="failure"):
    estimator = RateEstimator(window_hours=WINDOW)
    for t in times:
        estimator.ingest(FieldEvent(PART, "u#0", kind, t))
    return estimator


class TestConfig:
    def test_shift_must_exceed_one(self):
        with pytest.raises(TelemetryError, match="shift"):
            DriftConfig(shift=1.0)

    def test_threshold_and_min_events_are_validated(self):
        with pytest.raises(TelemetryError, match="threshold"):
            DriftConfig(threshold=0.0)
        with pytest.raises(TelemetryError, match="min_events"):
            DriftConfig(min_events=0)

    def test_window_must_match_the_estimator_ladder(self):
        estimator = fed_estimator([10.0])
        with pytest.raises(TelemetryError, match="ladder"):
            detect_drift(
                estimator, {PART: 1e-4}, DriftConfig(window_hours=24.0)
            )


class TestDeterioration:
    def test_burst_of_failures_confirms_deterioration(self):
        # Reference expects ~1 failure per 10k hours; a dozen failures
        # inside one window (12 ln 2 > 8) is overwhelming evidence.
        estimator = fed_estimator([10.0 * (i + 1) for i in range(12)])
        report = detect_drift(estimator, {PART: 1e-4})
        verdict = report.part(PART)
        assert verdict.drifted
        assert verdict.direction == DETERIORATION
        assert report.drifted_parts == [PART]
        assert report.any_drift

    def test_statistic_matches_the_hand_computed_llr(self):
        # One failure at 100 h: a single window row with 100 h of
        # up-exposure and n = 1, so the CUSUM peak is exactly
        # max(0, ln(s) - (s - 1) * rate * T).
        estimator = fed_estimator([100.0])
        config = DriftConfig(
            window_hours=WINDOW, shift=2.0, threshold=8.0, min_events=1
        )
        report = detect_drift(estimator, {PART: 1e-4}, config)
        expected = math.log(2.0) - 1.0 * 1e-4 * 100.0
        assert report.part(PART).statistic_up == pytest.approx(expected)

    def test_min_events_gates_a_loud_but_thin_signal(self):
        estimator = fed_estimator([10.0, 20.0, 30.0])
        config = DriftConfig(
            window_hours=WINDOW, threshold=0.5, min_events=5
        )
        report = detect_drift(estimator, {PART: 1e-3}, config)
        verdict = report.part(PART)
        assert verdict.statistic_up >= config.threshold
        assert not verdict.drifted

    def test_on_spec_stream_stays_quiet(self):
        # Failures at roughly the reference rate: no confirmation.
        estimator = fed_estimator([5_000.0])
        estimator.ingest(FieldEvent(PART, "u#0", "repair", 5_010.0))
        report = detect_drift(estimator, {PART: 1e-4})
        assert not report.any_drift


class TestImprovement:
    def test_long_quiet_exposure_confirms_improvement(self):
        # 10 empty 168 h windows at an expected 0.01/h: each window
        # adds (1 - 1/s) * rate * T = 0.84 to the downward CUSUM.
        estimator = fed_estimator([1_680.0])
        report = detect_drift(estimator, {PART: 0.01})
        verdict = report.part(PART)
        assert verdict.drifted
        assert verdict.direction == IMPROVEMENT
        assert verdict.statistic_down >= verdict.threshold

    def test_improvement_needs_no_minimum_failures(self):
        estimator = fed_estimator([2_000.0], kind="latent_detect")
        report = detect_drift(
            estimator,
            {PART: 0.01},
            DriftConfig(window_hours=WINDOW, min_events=50),
        )
        assert report.part(PART).direction == IMPROVEMENT


class TestReferenceHandling:
    def test_parts_without_a_reference_are_skipped(self):
        estimator = fed_estimator([10.0])
        report = detect_drift(estimator, {"Sys/Other": 1e-4})
        assert report.parts == ()
        assert not report.any_drift

    def test_non_positive_reference_rate_is_rejected(self):
        estimator = fed_estimator([10.0])
        with pytest.raises(TelemetryError, match="positive"):
            detect_drift(estimator, {PART: 0.0})


class TestEndToEndRecipe:
    def test_shifted_boot_disk_is_the_only_confirmed_part(self):
        # The canonical trace of the calibration tests: ground truth
        # at 1 % of the Boot Disk's datasheet MTBF.
        model = e10000_model()
        events = synthetic_field_events(
            model,
            window_hours=10_950.0,
            seed=3,
            mtbf_shifts={"E10000 Server/Boot Disk": 0.01},
        )
        estimator = RateEstimator(window_hours=WINDOW)
        estimator.ingest_many(events)
        report = detect_drift(estimator, reference_rates(model))
        assert report.drifted_parts == ["E10000 Server/Boot Disk"]
        verdict = report.part("E10000 Server/Boot Disk")
        assert verdict.direction == DETERIORATION
        assert verdict.failures >= 5
        assert verdict.statistic_up >= verdict.threshold
