"""Calibration as a checkpointed job: planning, resume bit-identity."""

import pytest

from repro.engine import Engine
from repro.errors import SpecError
from repro.jobs import (
    Checkpointer,
    JobSpec,
    JobStore,
    execute_job,
    plan_job,
)
from repro.library import e10000_model
from repro.spec import model_to_spec
from repro.telemetry import FieldEvent, synthetic_field_events

BOOT_DISK = "E10000 Server/Boot Disk"


@pytest.fixture
def harness(tmp_path):
    store = JobStore(tmp_path / "jobs.sqlite3")
    checkpointer = Checkpointer(tmp_path / "checkpoints")
    engine = Engine(jobs=1, cache_dir=tmp_path / "cache")
    return store, checkpointer, engine


def calibration_spec(chunk_events=8, **params):
    merged = {
        "source": {
            "kind": "synthetic",
            "seed": 3,
            "window_hours": 10_950.0,
            "shifts": {BOOT_DISK: 0.01},
        },
        "chunk_events": chunk_events,
    }
    merged.update(params)
    return JobSpec(
        kind="calibration",
        spec=model_to_spec(e10000_model()),
        params=merged,
    )


def run_once(spec, store, checkpointer, engine, **kwargs):
    record, _ = store.submit(spec)
    leased = store.lease("test-worker")
    outcome = execute_job(leased, store, engine, checkpointer, **kwargs)
    return outcome, store.get(record.id)


class TestPlanning:
    def test_plan_chunks_the_event_stream(self, harness):
        _, _, engine = harness
        plan = plan_job(
            calibration_spec(chunk_events=8), e10000_model(), engine
        )
        events = synthetic_field_events(
            e10000_model(),
            window_hours=10_950.0,
            seed=3,
            mtbf_shifts={BOOT_DISK: 0.01},
        )
        assert plan.total == (len(events) + 7) // 8

    def test_unknown_source_kind_is_a_spec_error(self, harness):
        _, _, engine = harness
        with pytest.raises(SpecError, match="source"):
            plan_job(
                calibration_spec(source={"kind": "carrier-pigeon"}),
                e10000_model(),
                engine,
            )

    def test_out_of_order_event_source_fails_at_submission(self, harness):
        _, _, engine = harness
        events = [
            FieldEvent(BOOT_DISK, "u#0", "failure", 100.0).to_dict(),
            FieldEvent(BOOT_DISK, "u#0", "repair", 50.0).to_dict(),
        ]
        with pytest.raises(SpecError, match="order"):
            plan_job(
                calibration_spec(
                    source={"kind": "events", "events": events}
                ),
                e10000_model(),
                engine,
            )

    def test_invalid_drift_params_are_a_spec_error(self, harness):
        _, _, engine = harness
        with pytest.raises(SpecError, match="shift"):
            plan_job(
                calibration_spec(drift={"shift": 0.5}),
                e10000_model(),
                engine,
            )


class TestExecution:
    def test_calibration_job_publishes_a_drift_proposal(self, harness):
        store, checkpointer, engine = harness
        outcome, record = run_once(
            calibration_spec(), store, checkpointer, engine
        )
        assert outcome == "succeeded"
        result = record.result
        assert result["kind"] == "calibration"
        assert result["drifted"] is True
        assert result["accepted"] == result["events_total"]
        proposal = result["proposal"]
        assert proposal["drift"]["drifted_parts"] == [BOOT_DISK]
        assert proposal["provenance"]["source"] == "calibration"

    def test_explicit_event_source_round_trips(self, harness):
        store, checkpointer, engine = harness
        events = [
            event.to_dict()
            for event in synthetic_field_events(
                e10000_model(),
                window_hours=10_950.0,
                seed=3,
                mtbf_shifts={BOOT_DISK: 0.01},
            )
        ]
        outcome, record = run_once(
            calibration_spec(source={"kind": "events", "events": events}),
            store,
            checkpointer,
            engine,
        )
        assert outcome == "succeeded"
        assert record.result["events_total"] == len(events)


class TestResume:
    def test_preempted_calibration_resumes_bit_identically(
        self, harness, tmp_path
    ):
        store, checkpointer, engine = harness
        spec = calibration_spec(chunk_events=8)

        # The uninterrupted reference run, on its own store and cache.
        ref_store = JobStore(tmp_path / "ref.sqlite3")
        ref_ckpt = Checkpointer(tmp_path / "ref-checkpoints")
        ref_engine = Engine(jobs=1, cache_dir=tmp_path / "ref-cache")
        _, reference = run_once(
            spec, ref_store, ref_ckpt, ref_engine, checkpoint_every=1
        )

        # Interrupted run: stop after two one-chunk checkpoints.
        record, _ = store.submit(spec)
        leased = store.lease("w1")
        chunks = []
        outcome = execute_job(
            leased, store, engine, checkpointer, checkpoint_every=1,
            should_stop=lambda: len(chunks) >= 2 or chunks.append(None),
        )
        assert outcome == "released"
        checkpoint = checkpointer.load(record.id)
        assert len(checkpoint.values) == 2

        # Resume in a "new process": fresh engine, same checkpointer.
        fresh = Engine(jobs=1, cache_dir=tmp_path / "fresh-cache")
        resumed = store.lease("w2")
        assert execute_job(
            resumed, store, fresh, checkpointer, checkpoint_every=1
        ) == "succeeded"

        final = store.get(record.id)
        assert final.result == reference.result
        assert (
            final.result["proposal"]["proposal_digest"]
            == reference.result["proposal"]["proposal_digest"]
        )
        assert (
            final.result["state_digest"]
            == reference.result["state_digest"]
        )
