"""The closed loop: shifted trace -> drift -> proposal -> gated publish."""

import pytest

from repro.engine import Engine
from repro.library import e10000_model
from repro.registry import RegressionError, open_registry
from repro.spec import model_to_spec, parse_spec
from repro.telemetry import (
    NoDriftError,
    RateEstimator,
    build_proposal,
    publish_proposal,
    synthetic_field_events,
)

BOOT_DISK = "E10000 Server/Boot Disk"


@pytest.fixture(scope="module")
def engine():
    return Engine(jobs=1, cache=True)


@pytest.fixture(scope="module")
def shifted_estimator():
    """The canonical drifted state: Boot Disk at 1 % of its datasheet
    MTBF over a 15-month window."""
    events = synthetic_field_events(
        e10000_model(),
        window_hours=10_950.0,
        seed=3,
        mtbf_shifts={BOOT_DISK: 0.01},
    )
    estimator = RateEstimator(window_hours=168.0)
    estimator.ingest_many(events)
    return estimator


class TestBuildProposal:
    def test_no_drift_raises_a_conflict(self, engine):
        model = e10000_model()
        estimator = RateEstimator(window_hours=168.0)
        estimator.ingest_many(
            synthetic_field_events(model, window_hours=10_950.0, seed=3)
        )
        with pytest.raises(NoDriftError):
            build_proposal(estimator, model, engine)

    def test_proposal_refits_the_drifted_block(
        self, engine, shifted_estimator
    ):
        model = e10000_model()
        proposal = build_proposal(shifted_estimator, model, engine)
        assert proposal["kind"] == "calibration_proposal"
        assert proposal["drift"]["drifted_parts"] == [BOOT_DISK]
        fit = shifted_estimator.fit().part(BOOT_DISK)
        refit = proposal["refit"][BOOT_DISK]
        assert refit["old_mtbf_hours"] == pytest.approx(150_000.0)
        assert refit["new_mtbf_hours"] == pytest.approx(
            1.0 / fit.failure_rate
        )
        # The candidate spec itself carries the re-fitted MTBF.
        candidate = parse_spec(proposal["spec"])
        for _level, path, block in candidate.walk():
            if path == BOOT_DISK:
                assert block.parameters.mtbf_hours == pytest.approx(
                    refit["new_mtbf_hours"]
                )
        # A much worse disk must cost availability.
        assert proposal["evaluation"]["availability"] < 0.9999
        assert proposal["base_digest"] != proposal["candidate_digest"]

    def test_proposal_carries_calibration_provenance(
        self, engine, shifted_estimator
    ):
        proposal = build_proposal(
            shifted_estimator, e10000_model(), engine
        )
        provenance = proposal["provenance"]
        assert provenance["source"] == "calibration"
        assert provenance["event_window"]["events"] == (
            shifted_estimator.events_total
        )
        assert set(provenance["fitted_rates"]) == {BOOT_DISK}

    def test_proposal_digest_is_reproducible(
        self, engine, shifted_estimator
    ):
        first = build_proposal(shifted_estimator, e10000_model(), engine)
        second = build_proposal(shifted_estimator, e10000_model(), engine)
        assert first["proposal_digest"] == second["proposal_digest"]

    def test_ingest_order_does_not_change_the_proposal(self, engine):
        events = synthetic_field_events(
            e10000_model(),
            window_hours=10_950.0,
            seed=3,
            mtbf_shifts={BOOT_DISK: 0.01},
        )
        # Group per unit (preserving each unit's monotonic order) and
        # ingest the groups in reversed order — a legal reshuffle.
        by_unit = {}
        for event in events:
            by_unit.setdefault(event.unit, []).append(event)
        shuffled = [
            event
            for unit in sorted(by_unit, reverse=True)
            for event in by_unit[unit]
        ]
        straight = RateEstimator(window_hours=168.0)
        straight.ingest_many(events)
        permuted = RateEstimator(window_hours=168.0)
        permuted.ingest_many(shuffled)
        model = e10000_model()
        assert (
            build_proposal(straight, model, engine)["proposal_digest"]
            == build_proposal(permuted, model, engine)["proposal_digest"]
        )


class TestPublishGate:
    def publish_baseline(self, registry, spec, tag=None):
        return registry.publish(spec, "e10000", tag=tag)

    def test_untagged_publish_records_provenance(
        self, engine, shifted_estimator, tmp_path
    ):
        registry = open_registry(
            db_path=tmp_path / "registry.sqlite3", engine=engine
        )
        proposal = build_proposal(
            shifted_estimator, e10000_model(), engine
        )
        result = publish_proposal(registry, proposal, "e10000")
        assert result.created
        assert result.gate is None
        assert result.version.source == proposal["provenance"]
        assert result.version.source["source"] == "calibration"

    def test_gate_rejects_a_worsening_calibration(
        self, engine, shifted_estimator, tmp_path
    ):
        registry = open_registry(
            db_path=tmp_path / "registry.sqlite3", engine=engine
        )
        # The datasheet model holds the prod tag; the calibrated
        # candidate (Boot Disk at ~1.3 kh MTBF) is dramatically worse.
        self.publish_baseline(
            registry, model_to_spec(e10000_model()), tag="prod"
        )
        proposal = build_proposal(
            shifted_estimator, e10000_model(), engine
        )
        with pytest.raises(RegressionError):
            publish_proposal(registry, proposal, "e10000", tag="prod")
        # Un-tagged it still lands, and force overrides the gate.
        untagged = publish_proposal(registry, proposal, "e10000")
        assert untagged.version.digest == proposal["candidate_digest"]
        forced = publish_proposal(
            registry, proposal, "e10000", tag="prod", force=True
        )
        assert forced.gate["forced"] is True

    def test_gate_accepts_an_improving_calibration(
        self, engine, shifted_estimator, tmp_path
    ):
        registry = open_registry(
            db_path=tmp_path / "registry.sqlite3", engine=engine
        )
        # Baseline tag holder is worse than the calibrated rate, so the
        # same proposal now improves availability and passes the gate.
        degraded = model_to_spec(e10000_model())
        for block in degraded["diagram"]["blocks"]:
            if block["name"] == "Boot Disk":
                block["mtbf_hours"] = 200.0
        self.publish_baseline(registry, degraded, tag="prod")
        proposal = build_proposal(
            shifted_estimator, e10000_model(), engine
        )
        result = publish_proposal(
            registry, proposal, "e10000", tag="prod"
        )
        assert result.created
        assert result.gate is not None
        assert not result.gate.get("forced")
        assert result.gate["downtime_delta_minutes"] < 0
