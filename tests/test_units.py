"""Unit-conversion tests."""

import math

import pytest

from repro.errors import ParameterError
from repro import units


class TestDurationConversions:
    def test_minutes_to_hours(self):
        assert units.minutes(90.0) == pytest.approx(1.5)

    def test_hours_to_minutes_roundtrip(self):
        assert units.hours_to_minutes(units.minutes(37.0)) == pytest.approx(37.0)

    def test_zero_minutes(self):
        assert units.minutes(0.0) == 0.0


class TestFitConversions:
    def test_fit_to_rate(self):
        # 1000 FIT = 1e-6 failures per hour.
        assert units.fit_to_rate(1000.0) == pytest.approx(1e-6)

    def test_rate_to_fit_roundtrip(self):
        assert units.rate_to_fit(units.fit_to_rate(2345.0)) == pytest.approx(2345.0)

    def test_negative_fit_rejected(self):
        with pytest.raises(ParameterError):
            units.fit_to_rate(-1.0)


class TestMtbfConversions:
    def test_mtbf_to_rate(self):
        assert units.mtbf_to_rate(10_000.0) == pytest.approx(1e-4)

    def test_infinite_mtbf_means_never_fails(self):
        assert units.mtbf_to_rate(float("inf")) == 0.0

    def test_zero_mtbf_means_never_fails(self):
        assert units.mtbf_to_rate(0.0) == 0.0

    def test_negative_mtbf_rejected(self):
        with pytest.raises(ParameterError):
            units.mtbf_to_rate(-5.0)


class TestDowntime:
    def test_perfect_availability_has_zero_downtime(self):
        assert units.availability_to_yearly_downtime_minutes(1.0) == 0.0

    def test_three_nines_downtime(self):
        # 0.999 availability ~= 525.6 minutes/year.
        downtime = units.availability_to_yearly_downtime_minutes(0.999)
        assert downtime == pytest.approx(525.6, rel=1e-9)

    def test_roundtrip(self):
        downtime = units.availability_to_yearly_downtime_minutes(0.9987)
        back = units.yearly_downtime_minutes_to_availability(downtime)
        assert back == pytest.approx(0.9987)

    def test_out_of_range_availability_rejected(self):
        with pytest.raises(ParameterError):
            units.availability_to_yearly_downtime_minutes(1.5)

    def test_negative_downtime_rejected(self):
        with pytest.raises(ParameterError):
            units.yearly_downtime_minutes_to_availability(-1.0)


class TestNines:
    def test_three_nines(self):
        assert units.nines(0.999) == pytest.approx(3.0)

    def test_five_nines(self):
        assert units.nines(0.99999) == pytest.approx(5.0)

    def test_perfect_is_infinite(self):
        assert math.isinf(units.nines(1.0))

    def test_negative_rejected(self):
        with pytest.raises(ParameterError):
            units.nines(-0.1)
