"""Tests for the product model library."""

import pytest

from repro.core import compute_measures, translate
from repro.library import datacenter_model, e10000_model, workgroup_model
from repro.units import nines


class TestDataCenterStructure:
    """The model must match the paper's Figures 1-2 description."""

    def test_level1_has_four_blocks(self):
        model = datacenter_model()
        names = [block.name for block in model.root]
        assert names == [
            "Server Box",
            "Boot Drives, RAID1",
            "Storage 1, RAID5",
            "Storage 2, RAID5",
        ]

    def test_every_level1_block_has_subdiagram(self):
        # "The color for these four blocks are dark, which means each of
        # them has a subdiagram."
        model = datacenter_model()
        assert all(block.has_subdiagram for block in model.root)

    def test_server_box_has_19_blocks(self):
        # "This subdiagram consists of 19 blocks (System Board, CPU
        # Module, etc.)."
        model = datacenter_model()
        server_box = model.root.block("Server Box")
        assert len(server_box.subdiagram) == 19

    def test_server_box_contains_named_blocks(self):
        model = datacenter_model()
        names = {b.name for b in model.root.block("Server Box").subdiagram}
        assert {"System Board", "CPU Module"} <= names

    def test_raid5_is_6_of_5(self):
        model = datacenter_model()
        storage = model.root.block("Storage 1, RAID5")
        assert storage.parameters.quantity == 6
        assert storage.parameters.min_required == 5

    def test_boot_drives_mirrored(self):
        model = datacenter_model()
        boot = model.root.block("Boot Drives, RAID1")
        assert boot.parameters.quantity == 2
        assert boot.parameters.min_required == 1

    def test_model_validates(self):
        datacenter_model().validate()


class TestLibrarySolutions:
    @pytest.mark.parametrize(
        "factory", [datacenter_model, e10000_model, workgroup_model],
        ids=["datacenter", "e10000", "workgroup"],
    )
    def test_solves_to_plausible_availability(self, factory):
        solution = translate(factory())
        # Server-class availability: between two and six nines.
        assert 0.99 < solution.availability < 0.9999995

    def test_datacenter_measures_complete(self):
        solution = translate(datacenter_model())
        measures = compute_measures(solution)
        assert measures.yearly_downtime_minutes > 0
        assert measures.failures_per_year > 0
        assert 0 < measures.reliability_at_mission < 1
        assert measures.mttf_hours > 0

    def test_redundant_e10000_beats_workgroup(self):
        big = translate(e10000_model()).availability
        small = translate(workgroup_model()).availability
        assert nines(big) > nines(small)

    def test_custom_globals_accepted(self):
        from repro.core import GlobalParameters

        fast = translate(
            datacenter_model(
                global_parameters=GlobalParameters(
                    mttm_hours=0.0, mttrfid_hours=1.0,
                    reboot_minutes=5.0,
                )
            )
        ).availability
        slow = translate(
            datacenter_model(
                global_parameters=GlobalParameters(
                    mttm_hours=168.0, mttrfid_hours=24.0,
                    reboot_minutes=30.0,
                )
            )
        ).availability
        assert fast > slow

    def test_e10000_mission_window_is_15_months(self):
        model = e10000_model()
        assert model.global_parameters.mission_time_hours == pytest.approx(
            10_950.0
        )
