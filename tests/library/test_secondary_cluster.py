"""Tests for the primary/secondary (active-active) cluster extension."""

import pytest

from repro.errors import ParameterError
from repro.library import (
    ClusterParameters,
    cluster_availability,
    secondary_cluster_chain,
    secondary_cluster_measures,
)
from repro.markov import steady_state


class TestChainStructure:
    def test_five_states(self):
        chain = secondary_cluster_chain(ClusterParameters())
        assert set(chain.state_names) == {
            "BothUp", "Failover", "OneUp", "ManualRecovery", "AllDown",
        }

    def test_one_up_is_degraded_reward(self):
        chain = secondary_cluster_chain(
            ClusterParameters(), degraded_capacity=0.5
        )
        assert chain.state("OneUp").reward == pytest.approx(0.5)
        assert chain.state("OneUp").is_up

    def test_failover_hazard_is_doubled(self):
        p = ClusterParameters()
        chain = secondary_cluster_chain(p)
        assert chain.rate("BothUp", "Failover") == pytest.approx(
            2.0 / p.node_mtbf_hours
        )

    def test_bad_capacity_rejected(self):
        with pytest.raises(ParameterError, match="degraded capacity"):
            secondary_cluster_chain(ClusterParameters(), degraded_capacity=0.0)

    def test_chain_validates(self):
        secondary_cluster_chain(ClusterParameters()).validate()


class TestMeasures:
    def test_capacity_below_availability(self):
        measures = secondary_cluster_measures(ClusterParameters())
        assert measures["expected_capacity"] < measures["availability"]

    def test_full_capacity_when_degraded_capacity_is_one(self):
        measures = secondary_cluster_measures(
            ClusterParameters(), degraded_capacity=1.0
        )
        assert measures["expected_capacity"] == pytest.approx(
            measures["availability"], rel=1e-12
        )

    def test_time_on_one_node_positive(self):
        measures = secondary_cluster_measures(ClusterParameters())
        assert 0.0 < measures["time_on_one_node"] < 0.05

    def test_active_active_availability_below_standby(self):
        # Active-active exposes both nodes' faults to failover downtime,
        # so with identical parameters its availability trails the
        # primary/standby arrangement (where standby faults are free).
        p = ClusterParameters()
        active = secondary_cluster_measures(p)["availability"]
        standby = cluster_availability(p)
        assert active < standby

    def test_most_time_fully_up(self):
        pi = steady_state(secondary_cluster_chain(ClusterParameters()))
        assert pi["BothUp"] > 0.99
