"""Tests for the primary/standby cluster extension."""

import pytest

from repro.errors import ParameterError
from repro.library import (
    ClusterParameters,
    cluster_availability,
    cluster_chain,
)
from repro.markov import steady_state, steady_state_availability


class TestParameters:
    def test_defaults_valid(self):
        ClusterParameters()

    def test_bad_mtbf_rejected(self):
        with pytest.raises(ParameterError):
            ClusterParameters(node_mtbf_hours=0.0)

    def test_bad_failover_probability_rejected(self):
        with pytest.raises(ParameterError):
            ClusterParameters(p_failover_success=1.2)

    def test_bad_times_rejected(self):
        for field in (
            "failover_minutes", "manual_recovery_hours",
            "node_repair_hours", "emergency_repair_hours",
        ):
            with pytest.raises(ParameterError):
                ClusterParameters(**{field: 0.0})

    def test_with_changes(self):
        p = ClusterParameters().with_changes(node_mtbf_hours=5_000.0)
        assert p.node_mtbf_hours == 5_000.0


class TestChainStructure:
    def test_six_states(self):
        chain = cluster_chain(ClusterParameters())
        assert set(chain.state_names) == {
            "Ok", "Failover", "StandbyOnly", "PrimaryOnly",
            "ManualRecovery", "AllDown",
        }

    def test_up_down_partition(self):
        chain = cluster_chain(ClusterParameters())
        assert set(chain.up_states()) == {"Ok", "StandbyOnly", "PrimaryOnly"}

    def test_perfect_failover_drops_manual_recovery(self):
        chain = cluster_chain(ClusterParameters(p_failover_success=1.0))
        assert chain.rate("Failover", "ManualRecovery") == 0.0

    def test_chain_validates(self):
        cluster_chain(ClusterParameters()).validate()


class TestAvailabilityBehaviour:
    def test_high_availability_with_defaults(self):
        assert cluster_availability(ClusterParameters()) > 0.999

    def test_faster_failover_is_better(self):
        slow = cluster_availability(ClusterParameters(failover_minutes=30.0))
        fast = cluster_availability(ClusterParameters(failover_minutes=1.0))
        assert fast > slow

    def test_failover_success_matters(self):
        flaky = cluster_availability(
            ClusterParameters(p_failover_success=0.5)
        )
        solid = cluster_availability(
            ClusterParameters(p_failover_success=0.999)
        )
        assert solid > flaky

    def test_cluster_beats_single_node(self):
        # A single node with the same parameters: up MTBF, down repair.
        from repro.gmb import MarkovBuilder

        p = ClusterParameters()
        single = (
            MarkovBuilder("single")
            .up("Up")
            .down("Down")
            .arc("Up", "Down", 1.0 / p.node_mtbf_hours)
            .arc("Down", "Up", 1.0 / p.node_repair_hours)
            .build()
        )
        assert cluster_availability(p) > steady_state_availability(single)

    def test_most_time_spent_fully_up(self):
        pi = steady_state(cluster_chain(ClusterParameters()))
        assert pi["Ok"] > 0.99
