"""Tests for rendering and documentation generation."""

import pytest

from repro.core import GlobalParameters, generate_block_chain, translate
from repro.library import datacenter_model, workgroup_model
from repro.markov import steady_state
from repro.render import (
    chain_to_dot,
    model_report,
    render_chain_table,
    render_model_tree,
)


class TestModelTree:
    def test_contains_all_blocks(self):
        model = datacenter_model()
        text = render_model_tree(model)
        for _level, _path, block in model.walk():
            assert block.name in text

    def test_shows_model_types(self):
        text = render_model_tree(datacenter_model())
        assert "Type 0" in text
        assert "RBD" in text  # the pass-through Server Box

    def test_shows_redundancy(self):
        text = render_model_tree(datacenter_model())
        assert "N=6, K=5" in text  # the RAID5 arrays

    def test_indentation_tracks_level(self):
        text = render_model_tree(datacenter_model())
        lines = text.splitlines()
        server_box = next(l for l in lines if "Server Box" in l)
        cpu = next(l for l in lines if "CPU Module" in l)
        indent = lambda s: len(s) - len(s.lstrip())
        assert indent(cpu) > indent(server_box)


class TestChainTable:
    def test_lists_states_and_transitions(self, redundant_params):
        chain = generate_block_chain(redundant_params, GlobalParameters())
        text = render_chain_table(chain)
        for state in chain:
            assert state.name in text
        assert "rate/hour" in text

    def test_optional_probabilities(self, simple_pair_chain):
        pi = steady_state(simple_pair_chain)
        text = render_chain_table(simple_pair_chain, pi)
        assert "steady-state" in text


class TestDotExport:
    def test_valid_digraph_structure(self, simple_pair_chain):
        dot = chain_to_dot(simple_pair_chain)
        assert dot.startswith("digraph")
        assert dot.rstrip().endswith("}")
        assert '"Ok" -> "Down"' in dot

    def test_down_states_shaded(self, simple_pair_chain):
        dot = chain_to_dot(simple_pair_chain)
        down_line = next(
            line for line in dot.splitlines()
            if line.strip().startswith('"Down" [')
        )
        assert "filled" in down_line

    def test_labels_included_and_excludable(self, redundant_params):
        chain = generate_block_chain(redundant_params, GlobalParameters())
        with_labels = chain_to_dot(chain, include_labels=True)
        without = chain_to_dot(chain, include_labels=False)
        assert "latent" in with_labels
        assert "latent" not in without

    def test_quotes_escaped(self):
        from repro.markov import MarkovChain

        chain = MarkovChain('we "love" quotes')
        chain.add_state("Ok")
        assert r"\"love\"" in chain_to_dot(chain)


class TestModelDot:
    def test_model_to_dot_structure(self):
        from repro.render import model_to_dot

        model = datacenter_model()
        dot = model_to_dot(model)
        assert dot.startswith("digraph")
        assert '"Data Center System" -> ' in dot
        assert "Server Box" in dot
        assert "Type 3" in dot  # CPU module annotation
        assert "(RBD)" in dot   # pass-through Server Box

    def test_model_to_dot_rejects_wrong_type(self):
        from repro.render import model_to_dot

        with pytest.raises(TypeError):
            model_to_dot("not a model")

    def test_every_block_is_a_node(self):
        from repro.render import model_to_dot

        model = workgroup_model()
        dot = model_to_dot(model)
        for _level, path, _block in model.walk():
            assert f'"{path}"' in dot


class TestModelReport:
    def test_report_sections(self):
        model = workgroup_model()
        report = model_report(model)
        assert "# RAS model report: Workgroup Server" in report
        assert "## System measures" in report
        assert "## Block inventory" in report
        assert "## Downtime budget" in report

    def test_report_reuses_precomputed_solution(self):
        model = workgroup_model()
        solution = translate(model)
        report = model_report(model, solution=solution)
        assert f"{solution.availability:.9f}" in report

    def test_inventory_lists_every_block(self):
        model = datacenter_model()
        report = model_report(model)
        for _level, _path, block in model.walk():
            assert block.name in report
