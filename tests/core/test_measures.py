"""Tests for system-level measure computation."""

import math

import pytest

from repro.core import (
    BlockParameters,
    DiagramBlockModel,
    GlobalParameters,
    MGBlock,
    MGDiagram,
    compute_measures,
    translate,
)
from repro.core.measures import system_mttf
from repro.errors import SolverError
from repro.units import MINUTES_PER_YEAR


def simple_model(mtbf=10_000.0, mission=8760.0):
    root = MGDiagram(
        "sys",
        [MGBlock(BlockParameters(
            name="A", mtbf_hours=mtbf, transient_fit=0.0,
            p_correct_diagnosis=1.0,
        ))],
    )
    return DiagramBlockModel(
        root, GlobalParameters(mission_time_hours=mission)
    )


class TestBasicMeasures:
    def test_downtime_consistent_with_availability(self):
        solution = translate(simple_model())
        measures = compute_measures(solution)
        expected = (1 - measures.availability) * MINUTES_PER_YEAR
        assert measures.yearly_downtime_minutes == pytest.approx(expected)

    def test_failures_per_year(self):
        solution = translate(simple_model())
        measures = compute_measures(solution)
        assert measures.failures_per_year == pytest.approx(
            measures.failure_frequency * 8760.0
        )

    def test_mean_downtime_times_frequency_is_unavailability(self):
        solution = translate(simple_model())
        measures = compute_measures(solution)
        assert (
            measures.mean_downtime_hours * measures.failure_frequency
        ) == pytest.approx(1 - measures.availability, rel=1e-9)

    def test_mtbi_is_inverse_frequency(self):
        solution = translate(simple_model())
        measures = compute_measures(solution)
        assert measures.mean_time_between_interruptions == pytest.approx(
            1.0 / measures.failure_frequency
        )


class TestMissionMeasures:
    def test_mission_time_defaults_to_global(self):
        solution = translate(simple_model(mission=500.0))
        measures = compute_measures(solution)
        assert measures.mission_time_hours == 500.0

    def test_mission_override(self):
        solution = translate(simple_model())
        measures = compute_measures(solution, mission_time_hours=100.0)
        assert measures.mission_time_hours == 100.0

    def test_nonpositive_mission_rejected(self):
        solution = translate(simple_model())
        with pytest.raises(SolverError):
            compute_measures(solution, mission_time_hours=0.0)

    def test_reliability_close_to_exponential(self):
        # Single block failing at 1/mtbf: R(T) ~ exp(-T/mtbf).
        mtbf = 20_000.0
        solution = translate(simple_model(mtbf=mtbf))
        measures = compute_measures(solution, mission_time_hours=1_000.0)
        assert measures.reliability_at_mission == pytest.approx(
            math.exp(-1_000.0 / mtbf), rel=1e-6
        )

    def test_interval_rate_matches_reliability(self):
        solution = translate(simple_model())
        measures = compute_measures(solution, mission_time_hours=2_000.0)
        assert measures.interval_failure_rate == pytest.approx(
            -math.log(measures.reliability_at_mission) / 2_000.0, rel=1e-9
        )

    def test_interval_availability_bounds(self):
        solution = translate(simple_model())
        measures = compute_measures(solution)
        assert (
            measures.availability
            <= measures.interval_availability
            <= 1.0
        )


class TestSystemMTTF:
    def test_single_exponential_block(self):
        mtbf = 10_000.0
        solution = translate(simple_model(mtbf=mtbf))
        assert system_mttf(solution) == pytest.approx(mtbf, rel=1e-3)

    def test_series_blocks_sum_rates(self):
        root = MGDiagram(
            "sys",
            [
                MGBlock(BlockParameters(name="A", mtbf_hours=10_000.0,
                                        p_correct_diagnosis=1.0)),
                MGBlock(BlockParameters(name="B", mtbf_hours=15_000.0,
                                        p_correct_diagnosis=1.0)),
            ],
        )
        solution = translate(DiagramBlockModel(root))
        expected = 1.0 / (1 / 10_000.0 + 1 / 15_000.0)
        assert system_mttf(solution) == pytest.approx(expected, rel=1e-3)
