"""Tests for hierarchy translation (diagram -> RBD of chains)."""

import pytest

from repro.core import (
    BlockParameters,
    DiagramBlockModel,
    GlobalParameters,
    MGBlock,
    MGDiagram,
    aggregate_subdiagram,
    generate_block_chain,
    translate,
)
from repro.core.translator import diagram_rbd
from repro.errors import SpecError
from repro.markov import steady_state_availability


def leaf(name, **fields):
    return MGBlock(BlockParameters(name=name, **fields))


class TestSeriesComposition:
    def test_flat_diagram_is_product(self):
        root = MGDiagram(
            "sys",
            [
                leaf("A", mtbf_hours=10_000.0),
                leaf("B", mtbf_hours=20_000.0),
            ],
        )
        model = DiagramBlockModel(root)
        solution = translate(model)
        product = 1.0
        for block in solution.blocks:
            product *= block.availability
        assert solution.availability == pytest.approx(product, rel=1e-12)

    def test_block_availability_matches_direct_generation(self):
        g = GlobalParameters()
        p = BlockParameters(name="A", mtbf_hours=10_000.0)
        model = DiagramBlockModel(MGDiagram("sys", [MGBlock(p)]), g)
        solution = translate(model)
        expected = steady_state_availability(generate_block_chain(p, g))
        assert solution.availability == pytest.approx(expected, rel=1e-12)

    def test_solver_method_passthrough(self):
        root = MGDiagram("sys", [leaf("A", mtbf_hours=10_000.0)])
        model = DiagramBlockModel(root)
        direct = translate(model, method="direct").availability
        gth = translate(model, method="gth").availability
        assert direct == pytest.approx(gth, rel=1e-10)


class TestPassThroughBlocks:
    def make_model(self, quantity=1):
        sub = MGDiagram("box", [leaf("inner", mtbf_hours=10_000.0)])
        root = MGDiagram(
            "sys",
            [MGBlock(BlockParameters(name="box", quantity=quantity,
                                     min_required=quantity),
                     subdiagram=sub)],
        )
        return DiagramBlockModel(root)

    def test_passthrough_availability_is_subdiagram_product(self):
        solution = translate(self.make_model())
        box = solution.block("sys/box")
        inner = solution.block("sys/box/inner")
        assert box.chain is None
        assert box.availability == pytest.approx(inner.availability)

    def test_quantity_replicates_subassembly(self):
        single = translate(self.make_model(quantity=1)).availability
        double = translate(self.make_model(quantity=2)).availability
        assert double == pytest.approx(single**2, rel=1e-9)

    def test_block_lookup_by_path(self):
        solution = translate(self.make_model())
        with pytest.raises(SpecError, match="no solved block"):
            solution.block("sys/missing")


class TestAggregation:
    def test_aggregate_rates_sum(self):
        g = GlobalParameters()
        sub = MGDiagram(
            "shelf",
            [
                leaf("disk", quantity=3, min_required=3,
                     mtbf_hours=30_000.0, transient_fit=100.0),
                leaf("ctrl", mtbf_hours=60_000.0, transient_fit=50.0),
            ],
        )
        aggregate = aggregate_subdiagram(sub, g)
        expected_rate = 3 / 30_000.0 + 1 / 60_000.0
        assert 1.0 / aggregate.mtbf_hours == pytest.approx(expected_rate)
        assert aggregate.transient_fit == pytest.approx(3 * 100.0 + 50.0)

    def test_aggregate_weights_durations_by_rate(self):
        g = GlobalParameters()
        sub = MGDiagram(
            "shelf",
            [
                leaf("fast", mtbf_hours=1_000.0, diagnosis_minutes=10.0,
                     corrective_minutes=10.0, verification_minutes=10.0),
                leaf("slow", mtbf_hours=1_000.0, diagnosis_minutes=50.0,
                     corrective_minutes=50.0, verification_minutes=50.0),
            ],
        )
        aggregate = aggregate_subdiagram(sub, g)
        # Equal rates: simple average of the MTTR parts.
        assert aggregate.diagnosis_minutes == pytest.approx(30.0)

    def test_aggregate_never_failing_subdiagram(self):
        g = GlobalParameters()
        sub = MGDiagram(
            "shelf", [leaf("ghost", mtbf_hours=float("inf"))]
        )
        aggregate = aggregate_subdiagram(sub, g)
        assert aggregate.permanent_rate == 0.0

    def test_nested_aggregation(self):
        g = GlobalParameters()
        inner = MGDiagram("inner", [leaf("x", mtbf_hours=10_000.0)])
        outer = MGDiagram(
            "outer",
            [MGBlock(BlockParameters(name="wrap", quantity=2,
                                     min_required=2), subdiagram=inner)],
        )
        aggregate = aggregate_subdiagram(outer, g)
        # Two replicated inner assemblies in series: rates double.
        assert 1.0 / aggregate.mtbf_hours == pytest.approx(2 / 10_000.0)


class TestRedundantAggregateBlocks:
    def make_model(self, quantity=2, min_required=1):
        shelf = MGDiagram("shelf", [leaf("disk", mtbf_hours=30_000.0)])
        root = MGDiagram(
            "sys",
            [MGBlock(
                BlockParameters(
                    name="mirror", quantity=quantity,
                    min_required=min_required,
                    recovery="transparent", repair="transparent",
                ),
                subdiagram=shelf,
            )],
        )
        return DiagramBlockModel(root)

    def test_redundant_aggregate_generates_chain(self):
        solution = translate(self.make_model())
        mirror = solution.block("sys/mirror")
        assert mirror.chain is not None
        assert mirror.model_type == 1

    def test_mirroring_beats_single_shelf(self):
        mirrored = translate(self.make_model(2, 1)).availability
        single = translate(self.make_model(1, 1)).availability
        assert mirrored > single

    def test_effective_parameters_inherit_block_scenarios(self):
        solution = translate(self.make_model())
        mirror = solution.block("sys/mirror")
        assert mirror.effective.quantity == 2
        assert mirror.effective.mtbf_hours == pytest.approx(30_000.0)


class TestSystemFrequency:
    def test_series_frequency_formula(self):
        root = MGDiagram(
            "sys",
            [leaf("A", mtbf_hours=5_000.0), leaf("B", mtbf_hours=8_000.0)],
        )
        solution = translate(DiagramBlockModel(root))
        a, b = solution.blocks
        expected = (
            a.failure_frequency * b.availability
            + b.failure_frequency * a.availability
        )
        assert solution.failure_frequency == pytest.approx(expected, rel=1e-12)

    def test_frequency_positive(self):
        root = MGDiagram("sys", [leaf("A", mtbf_hours=5_000.0)])
        solution = translate(DiagramBlockModel(root))
        assert solution.failure_frequency > 0


class TestPointMeasures:
    def test_point_availability_starts_at_one(self):
        root = MGDiagram("sys", [leaf("A", mtbf_hours=5_000.0)])
        solution = translate(DiagramBlockModel(root))
        assert solution.point_availability(0.0) == pytest.approx(1.0)

    def test_reliability_decreases(self):
        root = MGDiagram("sys", [leaf("A", mtbf_hours=5_000.0)])
        solution = translate(DiagramBlockModel(root))
        r1 = solution.reliability(100.0)
        r2 = solution.reliability(1_000.0)
        assert 0 < r2 < r1 < 1

    def test_diagram_rbd_structure(self):
        root = MGDiagram("sys", [leaf("A"), leaf("B")])
        model = DiagramBlockModel(root)
        rbd = diagram_rbd(model)
        names = [leaf_.name for leaf_ in rbd.leaves()]
        assert names == ["sys/A", "sys/B"]
        assert rbd.availability({"sys/A": 0.9, "sys/B": 0.8}) == pytest.approx(0.72)
