"""Tests for the realistic-sojourn semi-Markov variants."""

import pytest

from repro.core import (
    BlockParameters,
    GlobalParameters,
    exponential_assumption_gap,
    generate_block_chain,
    semi_markov_variant,
)
from repro.errors import ModelError
from repro.markov import steady_state_availability
from repro.semimarkov import (
    Deterministic,
    Exponential,
    Lognormal,
    semi_markov_availability,
    simulate_interval_availability,
)


@pytest.fixture
def chain(stress_params, globals_default):
    return generate_block_chain(stress_params, globals_default)


class TestVariantConstruction:
    def test_structure_preserved(self, chain):
        variant = semi_markov_variant(chain)
        assert variant.state_names == chain.state_names
        for state in chain:
            entries = variant.kernel(state.name)
            targets = {entry.target for entry in entries}
            chain_targets = {
                t.target for t in chain.transitions()
                if t.source == state.name
            }
            assert targets == chain_targets

    def test_branch_probabilities_match_embedded_chain(self, chain):
        variant = semi_markov_variant(chain)
        for state in chain:
            exit_rate = chain.exit_rate(state.name)
            if exit_rate == 0:
                continue
            for entry in variant.kernel(state.name):
                expected = chain.rate(state.name, entry.target) / exit_rate
                assert entry.probability == pytest.approx(expected)

    def test_sojourn_means_match_holding_times(self, chain):
        variant = semi_markov_variant(chain)
        for state in chain:
            exit_rate = chain.exit_rate(state.name)
            if exit_rate == 0:
                continue
            for entry in variant.kernel(state.name):
                assert entry.distribution.mean() == pytest.approx(
                    1.0 / exit_rate, rel=1e-12
                )

    def test_shapes_follow_state_kinds(self, chain):
        variant = semi_markov_variant(chain, repair_cv=0.7)
        for state in chain:
            kind = state.meta.get("kind")
            entries = variant.kernel(state.name)
            if not entries:
                continue
            distribution = entries[0].distribution
            if kind in ("ar", "transient-ar", "reint", "reboot"):
                assert isinstance(distribution, Deterministic)
            elif kind in ("repair", "logistic", "service-error", "spf"):
                assert isinstance(distribution, Lognormal)
            else:
                assert isinstance(distribution, Exponential)

    def test_bad_cv_rejected(self, chain):
        with pytest.raises(ModelError, match="CV"):
            semi_markov_variant(chain, repair_cv=0.0)


class TestExponentialAssumption:
    def test_steady_state_availability_exactly_preserved(self, chain):
        variant = semi_markov_variant(chain, repair_cv=0.4)
        assert semi_markov_availability(variant) == pytest.approx(
            steady_state_availability(chain), rel=1e-10
        )

    def test_gap_summary_consistent(self, chain):
        gap = exponential_assumption_gap(chain, horizon=100.0, repair_cv=0.5)
        assert gap["steady_exponential"] == pytest.approx(
            gap["steady_variant"], rel=1e-10
        )
        assert gap["transient_gap"] == pytest.approx(
            abs(gap["point_exponential"] - gap["point_variant"]),
            rel=1e-12,
        )

    def test_transient_gap_exists_but_is_small(self, chain):
        gap = exponential_assumption_gap(chain, horizon=100.0, repair_cv=0.3)
        assert gap["transient_gap"] > 0.0
        assert gap["transient_gap"] < 1e-2

    def test_variant_agrees_with_monte_carlo(self, chain):
        # The variant is a real SMP: its Monte Carlo interval
        # availability must bracket the (shared) steady-state value
        # over a long horizon.
        variant = semi_markov_variant(chain)
        result = simulate_interval_availability(
            variant, horizon=30_000.0, replications=60, seed=13
        )
        assert result.contains(steady_state_availability(chain))
