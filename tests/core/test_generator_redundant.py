"""Tests for Markov Model Types 1-4 generation (paper Figure 4 et al.)."""

import pytest

from repro.core import (
    BlockParameters,
    GlobalParameters,
    generate_block_chain,
    generate_redundant_chain,
)
from repro.errors import ModelError
from repro.markov import steady_state_availability


def params(recovery="nontransparent", repair="transparent", **overrides):
    fields = dict(
        name="cpu",
        quantity=2,
        min_required=1,
        mtbf_hours=50_000.0,
        transient_fit=10_000.0,
        p_latent_fault=0.05,
        mttdlf_hours=24.0,
        recovery=recovery,
        ar_time_minutes=10.0,
        p_spf=0.02,
        spf_recovery_minutes=30.0,
        repair=repair,
        p_correct_diagnosis=0.95,
    )
    fields.update(overrides)
    return BlockParameters(**fields)


G = GlobalParameters()


class TestFigure4Structure:
    """Type 3, N=2, K=1 — the chain the paper draws in Figure 4."""

    def test_state_inventory(self):
        chain = generate_redundant_chain(params(), G)
        expected = {
            "Ok", "TF1", "Latent1", "AR1", "SPF1", "PF1", "TF2",
            "ServiceError1", "PF2", "ServiceError2",
        }
        assert set(chain.state_names) == expected

    def test_figure4_arcs_present(self):
        chain = generate_redundant_chain(params(), G)
        # Every arc the paper's prose describes for Figure 4:
        for source, target in [
            ("Ok", "AR1"),        # detected permanent fault
            ("AR1", "PF1"),       # AR works -> degraded mode
            ("AR1", "SPF1"),      # AR fails -> single point of failure
            ("Ok", "Latent1"),    # latent fault
            ("Latent1", "AR1"),   # latent detected after MTTDLF
            ("PF1", "Ok"),        # successful repair
            ("PF1", "ServiceError1"),  # imperfect repair
            ("PF1", "PF2"),       # second permanent fault
            ("PF1", "TF2"),       # second fault transient
            ("Latent1", "PF2"),   # second fault from latent
            ("Latent1", "TF2"),
            ("Ok", "TF1"),        # first transient fault
            ("TF1", "Ok"),        # AR clears it
            ("TF2", "PF1"),       # AR clears second transient
        ]:
            assert chain.rate(source, target) > 0, f"{source}->{target} missing"

    def test_up_states_are_ok_pf1_latent1(self):
        chain = generate_redundant_chain(params(), G)
        assert set(chain.up_states()) == {"Ok", "PF1", "Latent1"}

    def test_detected_fault_rate(self):
        p = params()
        chain = generate_redundant_chain(p, G)
        expected = 2 * p.permanent_rate * (1 - p.p_latent_fault)
        assert chain.rate("Ok", "AR1") == pytest.approx(expected)

    def test_latent_fault_rate(self):
        p = params()
        chain = generate_redundant_chain(p, G)
        expected = 2 * p.permanent_rate * p.p_latent_fault
        assert chain.rate("Ok", "Latent1") == pytest.approx(expected)

    def test_boundary_rate_includes_all_permanents(self):
        # PF1 -> PF2 carries the full K * lam_p (no latent split).
        p = params()
        chain = generate_redundant_chain(p, G)
        assert chain.rate("PF1", "PF2") == pytest.approx(p.permanent_rate)

    def test_deferred_vs_immediate_repair_rates(self):
        p = params()
        chain = generate_redundant_chain(p, G)
        deferred = 1.0 / (G.mttm_hours + p.service_response_hours + p.mttr_hours)
        immediate = 1.0 / (p.service_response_hours + p.mttr_hours)
        assert chain.rate("PF1", "Ok") == pytest.approx(
            deferred * p.p_correct_diagnosis
        )
        assert chain.rate("PF2", "PF1") == pytest.approx(
            immediate * p.p_correct_diagnosis
        )

    def test_ar_branch_probabilities(self):
        p = params()
        chain = generate_redundant_chain(p, G)
        alpha = 1.0 / p.ar_time_hours
        assert chain.rate("AR1", "PF1") == pytest.approx(alpha * (1 - p.p_spf))
        assert chain.rate("AR1", "SPF1") == pytest.approx(alpha * p.p_spf)

    def test_spf_recovers_to_pf(self):
        p = params()
        chain = generate_redundant_chain(p, G)
        assert chain.rate("SPF1", "PF1") == pytest.approx(
            1.0 / p.spf_recovery_hours
        )


class TestTypeVariants:
    def test_type1_has_no_ar_or_tf_states(self):
        chain = generate_redundant_chain(
            params(recovery="transparent", repair="transparent"), G
        )
        assert not any(name.startswith(("AR", "TF")) for name in chain.state_names)

    def test_type1_transparent_failure_branch(self):
        p = params(recovery="transparent", repair="transparent")
        chain = generate_redundant_chain(p, G)
        detected = 2 * p.permanent_rate * (1 - p.p_latent_fault)
        assert chain.rate("Ok", "PF1") == pytest.approx(
            detected * (1 - p.p_spf)
        )
        assert chain.rate("Ok", "SPF1") > 0  # recovery failure still modeled

    def test_type2_has_reintegration_states(self):
        chain = generate_redundant_chain(
            params(recovery="transparent", repair="nontransparent"), G
        )
        assert "Reint1" in chain and "Reint2" in chain
        assert not chain.state("Reint1").is_up

    def test_type4_is_superset_of_type3_states(self):
        type3 = generate_redundant_chain(params(), G)
        type4 = generate_redundant_chain(
            params(repair="nontransparent"), G
        )
        assert set(type3.state_names) <= set(type4.state_names)

    def test_availability_ordering_type1_best_type4_worst(self):
        values = {}
        for recovery in ("transparent", "nontransparent"):
            for repair in ("transparent", "nontransparent"):
                chain = generate_redundant_chain(
                    params(recovery=recovery, repair=repair), G
                )
                values[(recovery, repair)] = steady_state_availability(chain)
        best = values[("transparent", "transparent")]
        worst = values[("nontransparent", "nontransparent")]
        assert best >= max(values.values())
        assert worst <= min(values.values())


class TestConditionalStates:
    def test_no_latents_when_plf_zero(self):
        chain = generate_redundant_chain(params(p_latent_fault=0.0), G)
        assert "Latent1" not in chain

    def test_no_spf_when_pspf_zero(self):
        chain = generate_redundant_chain(params(p_spf=0.0), G)
        assert "SPF1" not in chain

    def test_no_service_error_when_pcd_one(self):
        chain = generate_redundant_chain(params(p_correct_diagnosis=1.0), G)
        assert not any(
            name.startswith("ServiceError") for name in chain.state_names
        )

    def test_no_tf_when_no_transients(self):
        chain = generate_redundant_chain(params(transient_fit=0.0), G)
        assert not any(name.startswith("TF") for name in chain.state_names)

    def test_pruning_when_permanent_rate_zero(self):
        # Only transient machinery should remain reachable.
        chain = generate_redundant_chain(
            params(mtbf_hours=float("inf"), p_latent_fault=0.0), G
        )
        assert "Ok" in chain
        assert "PF2" not in chain
        chain.validate()


class TestLargerRedundancy:
    def test_paper_quote_states_repeat_per_level(self):
        # "if N-K > 1, states TF1, AR1, PF1 and Latent1 will be repeated".
        chain = generate_redundant_chain(
            params(quantity=4, min_required=1), G
        )
        for level in (1, 2, 3):
            for prefix in ("AR", "PF", "Latent", "SPF"):
                assert f"{prefix}{level}" in chain, f"{prefix}{level} missing"
        assert "TF4" in chain  # transient at the boundary level
        assert "PF4" in chain  # the system-down level

    def test_state_count_grows_linearly_in_depth(self):
        counts = []
        for n in (2, 3, 4, 5, 6):
            chain = generate_redundant_chain(
                params(quantity=n, min_required=1), G
            )
            counts.append(chain.n_states)
        increments = [b - a for a, b in zip(counts, counts[1:])]
        assert len(set(increments)) == 1  # constant per-level increment

    def test_active_unit_scaling(self):
        # Fault rate from level j uses (N - j) active units.
        p = params(quantity=4, min_required=1)
        chain = generate_redundant_chain(p, G)
        detected = p.permanent_rate * (1 - p.p_latent_fault)
        assert chain.rate("Ok", "AR1") == pytest.approx(4 * detected)
        assert chain.rate("PF1", "AR2") == pytest.approx(3 * detected)
        assert chain.rate("PF2", "AR3") == pytest.approx(2 * detected)
        assert chain.rate("PF3", "PF4") == pytest.approx(1 * p.permanent_rate)

    def test_more_redundancy_is_better_with_transparent_recovery(self):
        # With transparent, SPF-free recovery and perfect diagnosis the
        # only down state is the deep-fault level, so extra spares
        # strictly reduce downtime.
        quiet = dict(
            recovery="transparent", repair="transparent", p_spf=0.0,
            p_correct_diagnosis=1.0,
        )
        a2 = steady_state_availability(
            generate_redundant_chain(
                params(quantity=2, min_required=1, **quiet), G
            )
        )
        a3 = steady_state_availability(
            generate_redundant_chain(
                params(quantity=3, min_required=1, **quiet), G
            )
        )
        assert a3 > a2

    def test_extra_spares_can_hurt_with_nontransparent_recovery(self):
        # A real phenomenon the MG framework captures: when every
        # detected fault costs a reboot-style AR outage, adding a third
        # unit adds fault events faster than it removes double-fault
        # exposure (double faults were already negligible at this MTBF).
        a2 = steady_state_availability(
            generate_redundant_chain(params(quantity=2, min_required=1), G)
        )
        a3 = steady_state_availability(
            generate_redundant_chain(params(quantity=3, min_required=1), G)
        )
        assert a3 < a2

    def test_availability_better_than_type0(self):
        # Redundancy must beat the same component without a spare.
        p0 = BlockParameters(
            name="cpu", quantity=1, min_required=1,
            mtbf_hours=50_000.0, transient_fit=10_000.0,
            p_correct_diagnosis=0.95,
        )
        a0 = steady_state_availability(generate_block_chain(p0, G))
        a1 = steady_state_availability(generate_block_chain(params(), G))
        assert a1 > a0


class TestValidation:
    def test_non_redundant_rejected(self):
        p = BlockParameters(name="x", quantity=2, min_required=2)
        with pytest.raises(ModelError, match="requires N > K"):
            generate_redundant_chain(p, G)

    def test_every_generated_chain_is_valid(self):
        for recovery in ("transparent", "nontransparent"):
            for repair in ("transparent", "nontransparent"):
                for n, k in [(2, 1), (3, 2), (5, 2)]:
                    chain = generate_redundant_chain(
                        params(
                            recovery=recovery, repair=repair,
                            quantity=n, min_required=k,
                        ),
                        G,
                    )
                    chain.validate()

    def test_meta_levels_recorded(self):
        chain = generate_redundant_chain(params(), G)
        assert chain.state("PF1").meta["level"] == 1
        assert chain.state("PF2").meta["level"] == 2
        assert chain.state("TF1").meta["level"] == 0
