"""Edge-case tests for system measures and reporting."""

import math

import pytest

from repro.core import (
    BlockParameters,
    DiagramBlockModel,
    GlobalParameters,
    MGBlock,
    MGDiagram,
    compute_measures,
    translate,
)
from repro.render import model_report, render_model_tree


def unfailable_model() -> DiagramBlockModel:
    root = MGDiagram(
        "Ideal",
        [MGBlock(BlockParameters(
            name="Ghost", mtbf_hours=float("inf"), transient_fit=0.0,
        ))],
    )
    return DiagramBlockModel(root, GlobalParameters())


class TestUnfailableModel:
    def test_perfect_availability(self):
        solution = translate(unfailable_model())
        assert solution.availability == 1.0
        assert solution.failure_frequency == 0.0

    def test_measures_do_not_hang(self):
        measures = compute_measures(translate(unfailable_model()))
        assert measures.availability == 1.0
        assert measures.yearly_downtime_minutes == 0.0
        assert math.isinf(measures.mttf_hours)
        assert math.isinf(measures.mean_time_between_interruptions)
        assert measures.reliability_at_mission == 1.0
        assert measures.interval_failure_rate == 0.0

    def test_report_renders(self):
        report = model_report(unfailable_model())
        assert "Ghost" in report
        assert "inf" in report  # the nines row

    def test_tree_renders(self):
        assert "Ghost" in render_model_tree(unfailable_model())


class TestThreeLevelHierarchy:
    def make_model(self):
        inner = MGDiagram(
            "Module",
            [MGBlock(BlockParameters(name="Chip", mtbf_hours=1e6))],
        )
        middle = MGDiagram(
            "Board",
            [MGBlock(BlockParameters(name="Module"), subdiagram=inner),
             MGBlock(BlockParameters(name="Connector", mtbf_hours=5e6))],
        )
        root = MGDiagram(
            "System",
            [MGBlock(BlockParameters(name="Board", quantity=2,
                                     min_required=2), subdiagram=middle)],
        )
        return DiagramBlockModel(root)

    def test_three_levels_solve(self):
        model = self.make_model()
        assert model.depth() == 3
        solution = translate(model)
        # Two boards in series, each a chip + connector in series.
        chip = solution.block("System/Board/Module/Chip").availability
        connector = solution.block("System/Board/Connector").availability
        expected = (chip * connector) ** 2
        assert solution.availability == pytest.approx(expected, rel=1e-12)

    def test_tree_shows_level_three(self):
        text = render_model_tree(self.make_model())
        assert "Chip" in text

    def test_measures_complete(self):
        measures = compute_measures(translate(self.make_model()))
        assert 0 < measures.reliability_at_mission < 1
        assert measures.mttf_hours > 0


class TestErrorHierarchy:
    def test_all_errors_are_rascad_errors(self):
        from repro.errors import (
            DatabaseError,
            ModelError,
            ParameterError,
            RascadError,
            SolverError,
            SpecError,
        )

        for exc_type in (SpecError, ParameterError, ModelError,
                         SolverError, DatabaseError):
            assert issubclass(exc_type, RascadError)
        assert issubclass(ParameterError, SpecError)
