"""Tests for performability (capacity) rewards."""

import pytest

from repro.core import (
    BlockParameters,
    GlobalParameters,
    capacity_oriented_availability,
    expected_capacity,
    generate_block_chain,
    with_capacity_rewards,
)
from repro.errors import ModelError
from repro.markov import MarkovChain, steady_state_availability


def cpu_block(**overrides):
    fields = dict(
        name="cpu",
        quantity=16,
        min_required=14,
        mtbf_hours=200_000.0,
        recovery="nontransparent",
        repair="transparent",
        p_spf=0.005,
    )
    fields.update(overrides)
    return BlockParameters(**fields)


class TestCapacityRewards:
    def test_levels_map_to_fractions(self):
        p = cpu_block()
        chain = generate_block_chain(p, GlobalParameters())
        rewarded = with_capacity_rewards(chain, p)
        assert rewarded.state("Ok").reward == pytest.approx(1.0)
        assert rewarded.state("PF1").reward == pytest.approx(15 / 16)
        assert rewarded.state("PF2").reward == pytest.approx(14 / 16)

    def test_down_states_stay_zero(self):
        p = cpu_block()
        chain = generate_block_chain(p, GlobalParameters())
        rewarded = with_capacity_rewards(chain, p)
        for state in rewarded:
            if not chain.state(state.name).is_up:
                assert state.reward == 0.0

    def test_transitions_preserved(self):
        p = cpu_block()
        chain = generate_block_chain(p, GlobalParameters())
        rewarded = with_capacity_rewards(chain, p)
        assert len(rewarded.transitions()) == len(chain.transitions())
        for transition in chain.transitions():
            assert rewarded.rate(
                transition.source, transition.target
            ) == pytest.approx(transition.rate)

    def test_rejects_chain_without_level_metadata(self):
        bare = MarkovChain()
        bare.add_state("Up")
        bare.add_state("Down", reward=0.0)
        bare.add_transition("Up", "Down", 1.0)
        bare.add_transition("Down", "Up", 1.0)
        with pytest.raises(ModelError, match="level metadata"):
            with_capacity_rewards(bare, cpu_block())


class TestCapacityMeasures:
    def test_capacity_at_most_availability(self):
        p = cpu_block()
        result = capacity_oriented_availability(p)
        assert result["expected_capacity"] <= result["availability"]
        assert result["capacity_gap"] >= 0.0

    def test_gap_grows_with_repair_deferral(self):
        p = cpu_block()
        fast = expected_capacity(
            p, GlobalParameters(mttm_hours=1.0)
        )
        slow = expected_capacity(
            p, GlobalParameters(mttm_hours=336.0)
        )
        # Longer deferral = more time in degraded levels = less capacity.
        assert fast > slow

    def test_type0_capacity_equals_availability(self):
        # No degraded levels: the two measures coincide.
        p = BlockParameters(name="board", mtbf_hours=100_000.0)
        result = capacity_oriented_availability(p)
        assert result["capacity_gap"] == pytest.approx(0.0, abs=1e-15)

    def test_capacity_matches_manual_reward_sum(self):
        p = cpu_block()
        g = GlobalParameters()
        chain = generate_block_chain(p, g)
        rewarded = with_capacity_rewards(chain, p)
        assert expected_capacity(p, g) == pytest.approx(
            steady_state_availability(rewarded), rel=1e-12
        )
