"""Tests for Markov Model Type 0 generation (paper Figure 3)."""

import pytest

from repro.core import (
    BlockParameters,
    GlobalParameters,
    classify_model_type,
    generate_block_chain,
    generate_type0_chain,
)
from repro.errors import ModelError
from repro.markov import steady_state, steady_state_availability


class TestClassification:
    def test_no_redundancy_is_type0(self):
        p = BlockParameters(name="x", quantity=3, min_required=3)
        assert classify_model_type(p) == 0

    @pytest.mark.parametrize(
        "recovery,repair,expected",
        [
            ("transparent", "transparent", 1),
            ("transparent", "nontransparent", 2),
            ("nontransparent", "transparent", 3),
            ("nontransparent", "nontransparent", 4),
        ],
    )
    def test_redundant_types(self, recovery, repair, expected):
        p = BlockParameters(
            name="x", quantity=2, min_required=1,
            recovery=recovery, repair=repair,
        )
        assert classify_model_type(p) == expected


class TestStructure:
    def test_full_state_set(self, type0_params, globals_default):
        chain = generate_type0_chain(type0_params, globals_default)
        assert chain.state_names == [
            "Ok", "Logistic", "Repair", "ServiceError", "Reboot"
        ]

    def test_only_ok_is_up(self, type0_params, globals_default):
        chain = generate_type0_chain(type0_params, globals_default)
        assert chain.up_states() == ["Ok"]

    def test_perfect_diagnosis_drops_service_error(
        self, type0_params, globals_default
    ):
        p = type0_params.with_changes(p_correct_diagnosis=1.0)
        chain = generate_type0_chain(p, globals_default)
        assert "ServiceError" not in chain

    def test_no_transients_drops_reboot(self, type0_params, globals_default):
        p = type0_params.with_changes(transient_fit=0.0)
        chain = generate_type0_chain(p, globals_default)
        assert "Reboot" not in chain

    def test_zero_response_time_merges_logistic(
        self, type0_params, globals_default
    ):
        p = type0_params.with_changes(service_response_hours=0.0)
        chain = generate_type0_chain(p, globals_default)
        assert "Logistic" not in chain
        assert chain.rate("Ok", "Repair") > 0

    def test_never_failing_block_is_single_state(self, globals_default):
        p = BlockParameters(
            name="x", mtbf_hours=float("inf"), transient_fit=0.0
        )
        chain = generate_type0_chain(p, globals_default)
        assert chain.state_names == ["Ok"]
        assert steady_state_availability(chain) == 1.0

    def test_redundant_parameters_rejected(self, globals_default):
        p = BlockParameters(name="x", quantity=2, min_required=1)
        with pytest.raises(ModelError, match="Type 0 requires"):
            generate_type0_chain(p, globals_default)

    def test_dispatch_from_generate_block_chain(
        self, type0_params, globals_default
    ):
        chain = generate_block_chain(type0_params, globals_default)
        assert chain.name.endswith("#type0")


class TestRates:
    def test_failure_rate_scales_with_quantity(self, globals_default):
        base = BlockParameters(name="x", quantity=1, min_required=1,
                               mtbf_hours=1e5)
        triple = base.with_changes(quantity=3, min_required=3)
        chain1 = generate_type0_chain(base, globals_default)
        chain3 = generate_type0_chain(triple, globals_default)
        assert chain3.rate("Ok", "Logistic") == pytest.approx(
            3 * chain1.rate("Ok", "Logistic")
        )

    def test_repair_branches_on_pcd(self, type0_params, globals_default):
        chain = generate_type0_chain(type0_params, globals_default)
        pcd = type0_params.p_correct_diagnosis
        mttr = type0_params.mttr_hours
        assert chain.rate("Repair", "Ok") == pytest.approx(pcd / mttr)
        assert chain.rate("Repair", "ServiceError") == pytest.approx(
            (1 - pcd) / mttr
        )

    def test_reboot_rate_uses_global_tboot(self, type0_params):
        g = GlobalParameters(reboot_minutes=30.0)
        chain = generate_type0_chain(type0_params, g)
        assert chain.rate("Reboot", "Ok") == pytest.approx(2.0)

    def test_service_error_exit_uses_mttrfid(self, type0_params):
        g = GlobalParameters(mttrfid_hours=4.0)
        chain = generate_type0_chain(type0_params, g)
        assert chain.rate("ServiceError", "Ok") == pytest.approx(0.25)


class TestSolution:
    def test_availability_closed_form_without_transients(
        self, globals_default
    ):
        # Ok -> Logistic -> Repair -> Ok with perfect diagnosis reduces
        # to a cyclic chain with availability MTBF/(MTBF+Tresp+MTTR).
        p = BlockParameters(
            name="x", mtbf_hours=10_000.0, transient_fit=0.0,
            service_response_hours=4.0, p_correct_diagnosis=1.0,
            diagnosis_minutes=30.0, corrective_minutes=20.0,
            verification_minutes=10.0,
        )
        chain = generate_type0_chain(p, globals_default)
        availability = steady_state_availability(chain)
        expected = 10_000.0 / (10_000.0 + 4.0 + 1.0)
        assert availability == pytest.approx(expected, rel=1e-9)

    def test_downtime_increases_with_response_time(
        self, type0_params, globals_default
    ):
        slow = type0_params.with_changes(service_response_hours=24.0)
        fast = type0_params.with_changes(service_response_hours=1.0)
        a_slow = steady_state_availability(
            generate_type0_chain(slow, globals_default)
        )
        a_fast = steady_state_availability(
            generate_type0_chain(fast, globals_default)
        )
        assert a_fast > a_slow

    def test_imperfect_diagnosis_hurts(self, type0_params, globals_default):
        good = type0_params.with_changes(p_correct_diagnosis=1.0)
        bad = type0_params.with_changes(p_correct_diagnosis=0.5)
        a_good = steady_state_availability(
            generate_type0_chain(good, globals_default)
        )
        a_bad = steady_state_availability(
            generate_type0_chain(bad, globals_default)
        )
        assert a_good > a_bad

    def test_state_meta_levels(self, type0_params, globals_default):
        chain = generate_type0_chain(type0_params, globals_default)
        assert chain.state("Ok").meta["kind"] == "base"
        assert chain.state("Repair").meta["kind"] == "repair"
