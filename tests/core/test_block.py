"""Tests for the diagram/block model tree."""

import pytest

from repro.core import (
    BlockParameters,
    DiagramBlockModel,
    GlobalParameters,
    MGBlock,
    MGDiagram,
)
from repro.errors import SpecError


def leaf(name: str, **fields) -> MGBlock:
    return MGBlock(BlockParameters(name=name, **fields))


def two_level_model() -> DiagramBlockModel:
    sub = MGDiagram("Server Box", [leaf("CPU"), leaf("Memory")])
    root = MGDiagram(
        "System",
        [MGBlock(BlockParameters(name="Server Box"), subdiagram=sub),
         leaf("Storage", quantity=3)],
    )
    return DiagramBlockModel(root, GlobalParameters())


class TestDiagram:
    def test_empty_name_rejected(self):
        with pytest.raises(SpecError):
            MGDiagram("")

    def test_duplicate_block_names_rejected(self):
        diagram = MGDiagram("d", [leaf("A")])
        with pytest.raises(SpecError, match="already contains"):
            diagram.add_block(leaf("A"))

    def test_block_lookup(self):
        diagram = MGDiagram("d", [leaf("A"), leaf("B")])
        assert diagram.block("B").name == "B"
        with pytest.raises(SpecError, match="no block"):
            diagram.block("C")

    def test_len_and_iter(self):
        diagram = MGDiagram("d", [leaf("A"), leaf("B")])
        assert len(diagram) == 2
        assert [b.name for b in diagram] == ["A", "B"]


class TestWalk:
    def test_levels_follow_paper_numbering(self):
        model = two_level_model()
        levels = {path: level for level, path, _ in model.walk()}
        assert levels["System/Server Box"] == 1
        assert levels["System/Server Box/CPU"] == 2
        assert levels["System/Storage"] == 1

    def test_document_order(self):
        model = two_level_model()
        paths = [path for _, path, _ in model.walk()]
        assert paths == [
            "System/Server Box",
            "System/Server Box/CPU",
            "System/Server Box/Memory",
            "System/Storage",
        ]

    def test_depth(self):
        assert two_level_model().depth() == 2

    def test_block_count(self):
        assert two_level_model().block_count() == 4

    def test_component_count_sums_leaf_quantities(self):
        # CPU(1) + Memory(1) + Storage(3); pass-through Server Box excluded.
        assert two_level_model().component_count() == 5

    def test_find_by_path(self):
        model = two_level_model()
        assert model.find("System/Server Box/Memory").name == "Memory"
        with pytest.raises(SpecError, match="no block at path"):
            model.find("System/Nowhere")


class TestValidate:
    def test_valid_model_passes(self):
        two_level_model().validate()

    def test_empty_diagram_rejected(self):
        diagram = MGDiagram("d", [leaf("A")])
        diagram.blocks.clear()
        model = DiagramBlockModel(diagram)
        with pytest.raises(SpecError, match="no blocks"):
            model.validate()

    def test_shared_diagram_rejected(self):
        shared = MGDiagram("shared", [leaf("X")])
        root = MGDiagram(
            "root",
            [
                MGBlock(BlockParameters(name="A"), subdiagram=shared),
                MGBlock(BlockParameters(name="B"), subdiagram=shared),
            ],
        )
        with pytest.raises(SpecError, match="tree"):
            DiagramBlockModel(root).validate()

    def test_duplicate_names_injected_after_construction(self):
        diagram = MGDiagram("d", [leaf("A"), leaf("B")])
        diagram.blocks[1] = leaf("A")  # bypass add_block checking
        with pytest.raises(SpecError, match="duplicate"):
            DiagramBlockModel(diagram).validate()

    def test_model_name_defaults_to_root(self):
        model = two_level_model()
        assert model.name == "System"
