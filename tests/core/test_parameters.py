"""Tests for the engineering-language parameter dataclasses."""

import pytest

from repro.core import BlockParameters, GlobalParameters, Scenario
from repro.errors import ParameterError


class TestScenario:
    def test_parse_strings(self):
        assert Scenario.parse("transparent") is Scenario.TRANSPARENT
        assert Scenario.parse("NonTransparent ") is Scenario.NONTRANSPARENT

    def test_parse_passthrough(self):
        assert Scenario.parse(Scenario.TRANSPARENT) is Scenario.TRANSPARENT

    def test_parse_rejects_garbage(self):
        with pytest.raises(ParameterError, match="scenario"):
            Scenario.parse("sometimes")


class TestBlockParameterValidation:
    def test_minimal_block(self):
        p = BlockParameters(name="x")
        assert p.quantity == 1 and p.min_required == 1

    def test_empty_name_rejected(self):
        with pytest.raises(ParameterError, match="name"):
            BlockParameters(name="")

    def test_bad_quantity_rejected(self):
        with pytest.raises(ParameterError, match="quantity"):
            BlockParameters(name="x", quantity=0)

    def test_k_greater_than_n_rejected(self):
        with pytest.raises(ParameterError, match="1 <= K <= N"):
            BlockParameters(name="x", quantity=2, min_required=3)

    def test_zero_k_rejected(self):
        with pytest.raises(ParameterError, match="1 <= K <= N"):
            BlockParameters(name="x", quantity=2, min_required=0)

    def test_nonpositive_mtbf_rejected(self):
        with pytest.raises(ParameterError, match="MTBF"):
            BlockParameters(name="x", mtbf_hours=0.0)

    def test_negative_fit_rejected(self):
        with pytest.raises(ParameterError, match="FIT"):
            BlockParameters(name="x", transient_fit=-1.0)

    def test_zero_total_mttr_rejected(self):
        with pytest.raises(ParameterError, match="total MTTR"):
            BlockParameters(
                name="x",
                diagnosis_minutes=0.0,
                corrective_minutes=0.0,
                verification_minutes=0.0,
            )

    def test_probability_bounds(self):
        for field in ("p_correct_diagnosis", "p_latent_fault", "p_spf"):
            with pytest.raises(ParameterError):
                BlockParameters(name="x", **{field: 1.5})

    def test_scenario_strings_accepted(self):
        p = BlockParameters(name="x", recovery="nontransparent")
        assert p.recovery is Scenario.NONTRANSPARENT

    def test_negative_service_response_rejected(self):
        with pytest.raises(ParameterError, match="service response"):
            BlockParameters(name="x", service_response_hours=-1.0)


class TestDerivedQuantities:
    def test_mttr_hours(self):
        p = BlockParameters(
            name="x",
            diagnosis_minutes=30.0,
            corrective_minutes=20.0,
            verification_minutes=10.0,
        )
        assert p.mttr_hours == pytest.approx(1.0)

    def test_permanent_rate(self):
        assert BlockParameters(
            name="x", mtbf_hours=10_000.0
        ).permanent_rate == pytest.approx(1e-4)

    def test_infinite_mtbf_never_fails(self):
        p = BlockParameters(name="x", mtbf_hours=float("inf"))
        assert p.permanent_rate == 0.0

    def test_transient_rate_from_fit(self):
        p = BlockParameters(name="x", transient_fit=1000.0)
        assert p.transient_rate == pytest.approx(1e-6)

    def test_redundancy_flags(self):
        assert BlockParameters(name="x", quantity=3, min_required=2).is_redundant
        assert not BlockParameters(name="x", quantity=3, min_required=3).is_redundant

    def test_redundancy_depth(self):
        p = BlockParameters(name="x", quantity=5, min_required=2)
        assert p.redundancy_depth == 3

    def test_minute_fields_convert(self):
        p = BlockParameters(
            name="x", quantity=2, min_required=1,
            ar_time_minutes=30.0, spf_recovery_minutes=90.0,
            reintegration_minutes=6.0,
        )
        assert p.ar_time_hours == pytest.approx(0.5)
        assert p.spf_recovery_hours == pytest.approx(1.5)
        assert p.reintegration_hours == pytest.approx(0.1)

    def test_with_changes(self):
        p = BlockParameters(name="x", mtbf_hours=1e5)
        q = p.with_changes(mtbf_hours=2e5)
        assert q.mtbf_hours == 2e5
        assert p.mtbf_hours == 1e5
        assert q.name == "x"

    def test_with_changes_validates(self):
        p = BlockParameters(name="x")
        with pytest.raises(ParameterError):
            p.with_changes(mtbf_hours=-5.0)


class TestGlobalParameters:
    def test_defaults_are_valid(self):
        g = GlobalParameters()
        assert g.reboot_hours == pytest.approx(g.reboot_minutes / 60.0)

    def test_nonpositive_reboot_rejected(self):
        with pytest.raises(ParameterError, match="reboot"):
            GlobalParameters(reboot_minutes=0.0)

    def test_negative_mttm_rejected(self):
        with pytest.raises(ParameterError, match="MTTM"):
            GlobalParameters(mttm_hours=-1.0)

    def test_zero_mttm_allowed(self):
        assert GlobalParameters(mttm_hours=0.0).mttm_hours == 0.0

    def test_nonpositive_mttrfid_rejected(self):
        with pytest.raises(ParameterError, match="MTTRFID"):
            GlobalParameters(mttrfid_hours=0.0)

    def test_nonpositive_mission_rejected(self):
        with pytest.raises(ParameterError, match="mission"):
            GlobalParameters(mission_time_hours=0.0)

    def test_with_changes(self):
        g = GlobalParameters().with_changes(mttm_hours=1.0)
        assert g.mttm_hours == 1.0
