"""Numerical tests for the uniformization internals."""

import numpy as np
import pytest
from scipy.stats import poisson

from repro.errors import SolverError
from repro.markov import MarkovChain
from repro.markov.transient import (
    _poisson_pmf_series,
    _poisson_tail,
    uniformization_terms,
)


def generator(lam=0.3, mu=1.7):
    q = np.array([[-lam, lam], [mu, -mu]])
    return q


class TestUniformizationTerms:
    def test_dtmc_rows_sum_to_one(self):
        p, lam, _n = uniformization_terms(generator(), t=5.0)
        np.testing.assert_allclose(p.sum(axis=1), 1.0, atol=1e-12)

    def test_dtmc_is_stochastic(self):
        p, _lam, _n = uniformization_terms(generator(), t=5.0)
        assert (p >= -1e-15).all()

    def test_rate_dominates_diagonal(self):
        q = generator(0.3, 1.7)
        _p, lam, _n = uniformization_terms(q, t=1.0)
        assert lam >= -q.diagonal().min()

    def test_truncation_covers_tail(self):
        q = generator()
        _p, lam, n_terms = uniformization_terms(q, t=40.0, tol=1e-12)
        assert _poisson_tail(lam * 40.0, n_terms - 1) < 1e-12

    def test_zero_generator(self):
        p, lam, n_terms = uniformization_terms(np.zeros((3, 3)), t=10.0)
        assert lam == 0.0
        np.testing.assert_allclose(p, np.eye(3))
        assert n_terms == 1

    def test_negative_time_rejected(self):
        with pytest.raises(SolverError):
            uniformization_terms(generator(), t=-1.0)


class TestPoissonSeries:
    @pytest.mark.parametrize("mean", [0.1, 3.0, 50.0, 2_000.0])
    def test_matches_scipy_pmf(self, mean):
        n = int(mean + 10 * np.sqrt(mean) + 20)
        series = _poisson_pmf_series(mean, n)
        expected = poisson.pmf(np.arange(n), mean)
        np.testing.assert_allclose(series, expected, rtol=1e-10, atol=1e-300)

    def test_mass_nearly_one_with_full_window(self):
        mean = 100.0
        n = int(mean + 12 * np.sqrt(mean) + 20)
        series = _poisson_pmf_series(mean, n)
        assert series.sum() == pytest.approx(1.0, abs=1e-10)

    def test_large_mean_stability(self):
        # Direct pmf computation overflows around mean ~1e3 without the
        # log-space path; this must stay finite and normalized.
        mean = 5e4
        n = int(mean + 12 * np.sqrt(mean))
        series = _poisson_pmf_series(mean, n)
        assert np.isfinite(series).all()
        assert series.sum() == pytest.approx(1.0, abs=1e-8)


class TestStiffHorizons:
    def test_large_lambda_t_still_accurate(self):
        # lam*t = 3.4e4: many terms, but the result must match expm.
        from repro.markov import (
            transient_probabilities,
            transient_probabilities_expm,
        )

        chain = MarkovChain()
        chain.add_state("Up")
        chain.add_state("Down", reward=0.0)
        chain.add_transition("Up", "Down", 1e-3)
        chain.add_transition("Down", "Up", 3.4)
        t = 1e4
        uni = transient_probabilities(chain, t)
        exp = transient_probabilities_expm(chain, t)
        np.testing.assert_allclose(uni, exp, atol=1e-9)
