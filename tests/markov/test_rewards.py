"""Tests for Markov reward measures."""

import math

import numpy as np
import pytest

from repro.errors import SolverError
from repro.gmb import MarkovBuilder
from repro.markov import (
    expected_reward_rate,
    failure_frequency,
    interval_availability,
    interval_reward,
    recovery_frequency,
    steady_state_availability,
)


def two_state(lam=0.02, mu=0.5):
    return (
        MarkovBuilder("pair")
        .up("Ok")
        .down("Down")
        .arc("Ok", "Down", lam)
        .arc("Down", "Ok", mu)
        .build()
    )


class TestExpectedRewardRate:
    def test_basic(self):
        value = expected_reward_rate(
            np.array([0.25, 0.75]), np.array([1.0, 0.2])
        )
        assert value == pytest.approx(0.25 + 0.15)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(SolverError):
            expected_reward_rate(np.array([1.0]), np.array([1.0, 0.0]))


class TestSteadyStateAvailability:
    def test_two_state(self):
        chain = two_state(0.02, 0.5)
        assert steady_state_availability(chain) == pytest.approx(
            0.5 / 0.52, rel=1e-9
        )

    def test_partial_rewards_count(self):
        chain = (
            MarkovBuilder("perf")
            .up("Full", reward=1.0)
            .up("Half", reward=0.5)
            .arc("Full", "Half", 1.0)
            .arc("Half", "Full", 1.0)
            .build()
        )
        assert steady_state_availability(chain) == pytest.approx(0.75)


class TestIntervalReward:
    def test_matches_closed_form(self):
        # Integral of A(t) for the two-state model has a closed form.
        lam, mu = 0.1, 0.9
        chain = two_state(lam, mu)
        horizon = 7.0
        total = lam + mu
        steady = mu / total
        transient_part = lam / total**2 * (1 - math.exp(-total * horizon))
        expected = steady + transient_part / horizon
        value = interval_availability(chain, horizon)
        assert value == pytest.approx(expected, rel=1e-8)

    def test_zero_horizon_returns_initial_reward(self):
        chain = two_state()
        assert interval_reward(chain, 0.0) == pytest.approx(1.0)

    def test_negative_horizon_rejected(self):
        with pytest.raises(SolverError):
            interval_reward(two_state(), -1.0)

    def test_ode_and_uniformization_agree(self):
        chain = two_state(0.05, 0.6)
        uni = interval_reward(chain, 25.0, method="uniformization")
        ode = interval_reward(chain, 25.0, method="ode")
        assert uni == pytest.approx(ode, rel=1e-6)

    def test_unknown_method_rejected(self):
        with pytest.raises(SolverError, match="unknown interval-reward"):
            interval_reward(two_state(), 1.0, method="nope")

    def test_interval_availability_between_point_and_steady(self):
        # A(0)=1 >= IA(T) >= A(inf) for a monotone two-state model.
        chain = two_state(0.1, 0.4)
        ia = interval_availability(chain, 10.0)
        steady = steady_state_availability(chain)
        assert steady < ia < 1.0


class TestIntervalFrequencies:
    def test_long_horizon_converges_to_steady_state(self):
        from repro.markov import (
            interval_failure_frequency,
            interval_recovery_frequency,
        )

        chain = two_state(0.05, 0.5)
        value = interval_failure_frequency(chain, 2_000.0)
        assert value == pytest.approx(failure_frequency(chain), rel=1e-3)
        recovery = interval_recovery_frequency(chain, 2_000.0)
        assert recovery == pytest.approx(
            recovery_frequency(chain), rel=1e-3
        )

    def test_short_horizon_failure_rate_near_raw_rate(self):
        # Starting up, the system fails at nearly the raw rate until the
        # first failures accumulate.
        from repro.markov import interval_failure_frequency

        lam = 0.05
        chain = two_state(lam, 0.5)
        value = interval_failure_frequency(chain, 0.01)
        assert value == pytest.approx(lam, rel=1e-2)

    def test_failure_exceeds_recovery_from_up_start(self):
        # Over a finite window starting up there are at least as many
        # up->down crossings as completed recoveries.
        from repro.markov import (
            interval_failure_frequency,
            interval_recovery_frequency,
        )

        chain = two_state(0.05, 0.5)
        for horizon in (1.0, 10.0, 100.0):
            fails = interval_failure_frequency(chain, horizon)
            recovers = interval_recovery_frequency(chain, horizon)
            assert fails >= recovers - 1e-12

    def test_matches_closed_form(self):
        # For the two-state model: (1/T) int lam * A(t) dt, with the
        # closed-form A(t) integral used in TestIntervalReward.
        import math

        from repro.markov import interval_failure_frequency

        lam, mu = 0.1, 0.9
        chain = two_state(lam, mu)
        horizon = 7.0
        total = lam + mu
        steady = mu / total
        transient_part = lam / total**2 * (1 - math.exp(-total * horizon))
        expected = lam * (steady + transient_part / horizon)
        value = interval_failure_frequency(chain, horizon)
        assert value == pytest.approx(expected, rel=1e-8)


class TestCrossingFrequencies:
    def test_two_state_frequency(self):
        lam, mu = 0.02, 0.5
        chain = two_state(lam, mu)
        pi_up = mu / (lam + mu)
        assert failure_frequency(chain) == pytest.approx(pi_up * lam, rel=1e-9)

    def test_failure_equals_recovery_in_steady_state(self):
        chain = two_state(0.07, 0.3)
        assert failure_frequency(chain) == pytest.approx(
            recovery_frequency(chain), rel=1e-9
        )

    def test_multi_state_balance(self, redundant_params, globals_default):
        from repro.core import generate_block_chain

        chain = generate_block_chain(redundant_params, globals_default)
        assert failure_frequency(chain) == pytest.approx(
            recovery_frequency(chain), rel=1e-6
        )
