"""Tests for transient solvers (uniformization, expm, ODE)."""

import math

import numpy as np
import pytest

from repro.errors import SolverError
from repro.markov import (
    MarkovChain,
    transient_curve,
    transient_probabilities,
    transient_probabilities_expm,
    transient_probabilities_ode,
    solve_steady_state,
)

METHODS = [
    transient_probabilities,
    transient_probabilities_expm,
    transient_probabilities_ode,
]


def two_state(lam: float, mu: float) -> MarkovChain:
    chain = MarkovChain("pair")
    chain.add_state("Ok")
    chain.add_state("Down", reward=0.0)
    chain.add_transition("Ok", "Down", lam)
    chain.add_transition("Down", "Ok", mu)
    return chain


def two_state_availability(lam: float, mu: float, t: float) -> float:
    """Closed form: A(t) = mu/(lam+mu) + lam/(lam+mu) e^{-(lam+mu)t}."""
    total = lam + mu
    return mu / total + lam / total * math.exp(-total * t)


@pytest.mark.parametrize("method", METHODS)
class TestAgainstClosedForm:
    def test_two_state_point_availability(self, method):
        lam, mu = 0.02, 0.7
        chain = two_state(lam, mu)
        for t in (0.1, 1.0, 5.0, 50.0):
            p = method(chain, t)
            assert p[0] == pytest.approx(
                two_state_availability(lam, mu, t), rel=1e-6
            )

    def test_time_zero_returns_initial(self, method):
        chain = two_state(0.1, 1.0)
        np.testing.assert_allclose(method(chain, 0.0), [1.0, 0.0])

    def test_probabilities_sum_to_one(self, method):
        chain = two_state(0.3, 0.9)
        p = method(chain, 2.5)
        assert p.sum() == pytest.approx(1.0, abs=1e-8)

    def test_long_horizon_approaches_steady_state(self, method):
        chain = two_state(0.2, 0.8)
        p = method(chain, 200.0)
        np.testing.assert_allclose(
            p, solve_steady_state(chain), atol=1e-6
        )

    def test_custom_initial_distribution(self, method):
        chain = two_state(0.2, 0.8)
        p0 = np.array([0.0, 1.0])
        p = method(chain, 0.0, p0=p0)
        np.testing.assert_allclose(p, p0)


class TestMethodCrossAgreement:
    def test_three_state_chain(self):
        chain = MarkovChain("tri")
        for name in "ABC":
            chain.add_state(name)
        chain.add_transition("A", "B", 0.5)
        chain.add_transition("B", "C", 1.5)
        chain.add_transition("C", "A", 0.25)
        chain.add_transition("B", "A", 0.75)
        t = 3.7
        uni = transient_probabilities(chain, t)
        exp = transient_probabilities_expm(chain, t)
        ode = transient_probabilities_ode(chain, t)
        np.testing.assert_allclose(uni, exp, atol=1e-9)
        np.testing.assert_allclose(uni, ode, atol=1e-7)


class TestUniformizationEdges:
    def test_absorbing_chain(self):
        chain = MarkovChain()
        chain.add_state("A")
        chain.add_state("B", reward=0.0)
        chain.add_transition("A", "B", 1.0)
        p = transient_probabilities(chain, 2.0)
        assert p[0] == pytest.approx(math.exp(-2.0), rel=1e-9)

    def test_no_transitions(self):
        chain = MarkovChain()
        chain.add_state("A")
        chain.add_state("B", reward=0.0)
        p = transient_probabilities(chain, 10.0)
        np.testing.assert_allclose(p, [1.0, 0.0])

    def test_negative_time_rejected(self):
        chain = two_state(0.1, 1.0)
        with pytest.raises(SolverError):
            transient_probabilities(chain, -1.0)

    def test_bad_initial_shape_rejected(self):
        chain = two_state(0.1, 1.0)
        with pytest.raises(SolverError, match="shape"):
            transient_probabilities(chain, 1.0, p0=np.array([1.0]))

    def test_non_distribution_initial_rejected(self):
        chain = two_state(0.1, 1.0)
        with pytest.raises(SolverError, match="probability distribution"):
            transient_probabilities(chain, 1.0, p0=np.array([0.7, 0.7]))


class TestTransientCurve:
    def test_curve_matches_pointwise(self):
        chain = two_state(0.05, 0.5)
        times = [0.0, 1.0, 10.0]
        curve = transient_curve(chain, times)
        for t, p in zip(times, curve):
            np.testing.assert_allclose(
                p, transient_probabilities(chain, t), atol=1e-12
            )

    def test_unknown_method_rejected(self):
        chain = two_state(0.05, 0.5)
        with pytest.raises(SolverError, match="unknown transient method"):
            transient_curve(chain, [1.0], method="nope")
