"""Tests for the three steady-state solvers.

Analytic references: for the two-state repairable component with
failure rate lam and repair rate mu the stationary availability is
mu / (lam + mu); for a cyclic chain the stationary vector is
proportional to the inverse exit rates.
"""

import numpy as np
import pytest

from repro.errors import SolverError
from repro.gmb import MarkovBuilder
from repro.markov import (
    MarkovChain,
    solve_steady_state,
    solve_steady_state_gth,
    solve_steady_state_power,
    steady_state,
)

SOLVERS = [solve_steady_state, solve_steady_state_gth, solve_steady_state_power]


def two_state(lam: float, mu: float) -> MarkovChain:
    return (
        MarkovBuilder("pair")
        .up("Ok")
        .down("Down")
        .arc("Ok", "Down", lam)
        .arc("Down", "Ok", mu)
        .build()
    )


@pytest.mark.parametrize("solver", SOLVERS)
class TestAgainstClosedForms:
    def test_two_state(self, solver):
        chain = two_state(1e-3, 0.25)
        pi = solver(chain)
        expected = 0.25 / (1e-3 + 0.25)
        assert pi[0] == pytest.approx(expected, rel=1e-8)
        assert pi.sum() == pytest.approx(1.0)

    def test_cycle_inverse_exit_rates(self, solver):
        chain = MarkovChain("cycle")
        for name in "ABC":
            chain.add_state(name)
        chain.add_transition("A", "B", 1.0)
        chain.add_transition("B", "C", 2.0)
        chain.add_transition("C", "A", 4.0)
        pi = solver(chain)
        expected = np.array([1.0, 0.5, 0.25])
        expected /= expected.sum()
        np.testing.assert_allclose(pi, expected, rtol=1e-8)

    def test_birth_death(self, solver):
        # M/M/1/2-style: detailed balance gives pi_k ~ (lam/mu)^k.
        lam, mu = 0.3, 1.1
        chain = MarkovChain("bd")
        for name in ("S0", "S1", "S2"):
            chain.add_state(name)
        chain.add_transition("S0", "S1", lam)
        chain.add_transition("S1", "S2", lam)
        chain.add_transition("S1", "S0", mu)
        chain.add_transition("S2", "S1", mu)
        pi = solver(chain)
        rho = lam / mu
        expected = np.array([1.0, rho, rho**2])
        expected /= expected.sum()
        np.testing.assert_allclose(pi, expected, rtol=1e-7)

    def test_single_state(self, solver):
        chain = MarkovChain()
        chain.add_state("only")
        np.testing.assert_allclose(solver(chain), [1.0])

    def test_accepts_bare_generator(self, solver):
        q = np.array([[-1.0, 1.0], [2.0, -2.0]])
        pi = solver(q)
        np.testing.assert_allclose(pi, [2 / 3, 1 / 3], rtol=1e-8)


class TestSolverAgreementOnStiffChain:
    def test_nine_decades_of_rates(self):
        # Rates span 1e-9 .. 10 per hour; GTH must agree with direct.
        chain = MarkovChain("stiff")
        chain.add_state("Up")
        chain.add_state("Rare", reward=0.0)
        chain.add_state("Fast", reward=0.0)
        chain.add_transition("Up", "Rare", 1e-9)
        chain.add_transition("Rare", "Up", 1e-2)
        chain.add_transition("Up", "Fast", 5.0)
        chain.add_transition("Fast", "Up", 10.0)
        direct = solve_steady_state(chain)
        gth = solve_steady_state_gth(chain)
        np.testing.assert_allclose(direct, gth, rtol=1e-9)


class TestInputChecking:
    def test_non_square_rejected(self):
        with pytest.raises(SolverError, match="square"):
            solve_steady_state(np.zeros((2, 3)))

    def test_bad_row_sums_rejected(self):
        q = np.array([[-1.0, 0.5], [1.0, -1.0]])
        with pytest.raises(SolverError, match="sum to zero"):
            solve_steady_state(q)

    def test_negative_off_diagonal_rejected(self):
        q = np.array([[1.0, -1.0], [2.0, -2.0]])
        with pytest.raises(SolverError):
            solve_steady_state(q)

    def test_power_iteration_rejects_no_transitions(self):
        q = np.zeros((2, 2))
        with pytest.raises(SolverError):
            solve_steady_state_power(q)


class TestNamedInterface:
    def test_returns_dict_keyed_by_state(self, simple_pair_chain):
        pi = steady_state(simple_pair_chain)
        assert set(pi) == {"Ok", "Down"}
        assert sum(pi.values()) == pytest.approx(1.0)

    def test_method_selection(self, simple_pair_chain):
        for method in ("direct", "gth", "power"):
            pi = steady_state(simple_pair_chain, method=method)
            assert pi["Ok"] == pytest.approx(0.25 / 0.251, rel=1e-6)

    def test_unknown_method_rejected(self, simple_pair_chain):
        with pytest.raises(SolverError, match="unknown steady-state method"):
            steady_state(simple_pair_chain, method="magic")
