"""Tests for the MarkovChain data structure."""

import numpy as np
import pytest

from repro.errors import ModelError
from repro.markov import MarkovChain


def make_triangle() -> MarkovChain:
    chain = MarkovChain("triangle")
    chain.add_state("A", reward=1.0)
    chain.add_state("B", reward=0.5)
    chain.add_state("C", reward=0.0)
    chain.add_transition("A", "B", 2.0)
    chain.add_transition("B", "C", 3.0)
    chain.add_transition("C", "A", 4.0)
    return chain


class TestConstruction:
    def test_states_keep_insertion_order(self):
        chain = make_triangle()
        assert chain.state_names == ["A", "B", "C"]

    def test_duplicate_state_rejected(self):
        chain = MarkovChain()
        chain.add_state("A")
        with pytest.raises(ModelError, match="duplicate"):
            chain.add_state("A")

    def test_ensure_state_is_idempotent(self):
        chain = MarkovChain()
        first = chain.ensure_state("A", reward=0.5)
        second = chain.ensure_state("A", reward=0.9)
        assert first is second
        assert chain.state("A").reward == 0.5

    def test_negative_reward_rejected(self):
        chain = MarkovChain()
        with pytest.raises(ModelError, match="negative reward"):
            chain.add_state("A", reward=-1.0)

    def test_transition_to_unknown_state_rejected(self):
        chain = MarkovChain()
        chain.add_state("A")
        with pytest.raises(ModelError, match="unknown target"):
            chain.add_transition("A", "B", 1.0)
        with pytest.raises(ModelError, match="unknown source"):
            chain.add_transition("B", "A", 1.0)

    def test_self_loop_rejected(self):
        chain = MarkovChain()
        chain.add_state("A")
        with pytest.raises(ModelError, match="self-loop"):
            chain.add_transition("A", "A", 1.0)

    def test_negative_rate_rejected(self):
        chain = MarkovChain()
        chain.add_state("A")
        chain.add_state("B")
        with pytest.raises(ModelError, match="negative rate"):
            chain.add_transition("A", "B", -0.5)

    def test_zero_rate_is_dropped(self):
        chain = MarkovChain()
        chain.add_state("A")
        chain.add_state("B")
        chain.add_transition("A", "B", 0.0)
        assert chain.rate("A", "B") == 0.0
        assert not chain.transitions()

    def test_parallel_arcs_accumulate(self):
        chain = MarkovChain()
        chain.add_state("A")
        chain.add_state("B")
        chain.add_transition("A", "B", 1.0, label="x")
        chain.add_transition("A", "B", 2.5, label="y")
        assert chain.rate("A", "B") == pytest.approx(3.5)
        (transition,) = chain.transitions()
        assert "x" in transition.label and "y" in transition.label


class TestInspection:
    def test_up_and_down_states(self):
        chain = make_triangle()
        assert chain.up_states() == ["A", "B"]
        assert chain.down_states() == ["C"]

    def test_reward_vector(self):
        chain = make_triangle()
        np.testing.assert_allclose(chain.reward_vector(), [1.0, 0.5, 0.0])

    def test_exit_rate(self):
        chain = make_triangle()
        assert chain.exit_rate("A") == pytest.approx(2.0)

    def test_index_and_state_errors(self):
        chain = make_triangle()
        assert chain.index("B") == 1
        with pytest.raises(ModelError):
            chain.index("missing")
        with pytest.raises(ModelError):
            chain.state("missing")

    def test_contains(self):
        chain = make_triangle()
        assert "A" in chain
        assert "Z" not in chain


class TestGeneratorMatrix:
    def test_rows_sum_to_zero(self):
        q = make_triangle().generator_matrix()
        np.testing.assert_allclose(q.sum(axis=1), 0.0, atol=1e-14)

    def test_off_diagonal_rates(self):
        q = make_triangle().generator_matrix()
        assert q[0, 1] == pytest.approx(2.0)
        assert q[1, 2] == pytest.approx(3.0)
        assert q[2, 0] == pytest.approx(4.0)

    def test_diagonal_is_negative_exit_rate(self):
        q = make_triangle().generator_matrix()
        assert q[0, 0] == pytest.approx(-2.0)


class TestStructure:
    def test_irreducible(self):
        assert make_triangle().is_irreducible()

    def test_reducible_detected(self):
        chain = MarkovChain()
        chain.add_state("A")
        chain.add_state("B", reward=0.0)
        chain.add_transition("A", "B", 1.0)
        assert not chain.is_irreducible()

    def test_validate_accepts_absorbing_chain(self):
        chain = MarkovChain()
        chain.add_state("A")
        chain.add_state("B", reward=0.0)
        chain.add_transition("A", "B", 1.0)
        # B is absorbing, so reducibility is allowed (reliability model).
        chain.validate()

    def test_validate_rejects_empty(self):
        with pytest.raises(ModelError, match="no states"):
            MarkovChain().validate()

    def test_validate_rejects_all_down(self):
        chain = MarkovChain()
        chain.add_state("Down", reward=0.0)
        with pytest.raises(ModelError, match="no up state"):
            chain.validate()

    def test_validate_rejects_reducible_without_absorbing(self):
        chain = MarkovChain()
        chain.add_state("A")
        chain.add_state("B", reward=0.0)
        chain.add_state("C")
        chain.add_transition("A", "B", 1.0)
        chain.add_transition("B", "A", 1.0)
        chain.add_transition("C", "A", 1.0)  # C unreachable, not absorbing
        with pytest.raises(ModelError, match="reducible"):
            chain.validate()

    def test_absorbing_states(self):
        chain = MarkovChain()
        chain.add_state("A")
        chain.add_state("B", reward=0.0)
        chain.add_transition("A", "B", 1.0)
        assert chain.absorbing_states() == ["B"]


class TestDerivedChains:
    def test_copy_is_independent(self):
        chain = make_triangle()
        clone = chain.copy()
        clone.add_state("D")
        assert "D" not in chain
        assert clone.rate("A", "B") == chain.rate("A", "B")

    def test_scaled_multiplies_rates(self):
        chain = make_triangle()
        scaled = chain.scaled(2.0)
        assert scaled.rate("A", "B") == pytest.approx(4.0)

    def test_scaled_rejects_nonpositive_factor(self):
        with pytest.raises(ModelError):
            make_triangle().scaled(0.0)

    def test_initial_distribution_defaults_to_first_state(self):
        chain = make_triangle()
        np.testing.assert_allclose(chain.initial_distribution(), [1, 0, 0])

    def test_initial_distribution_named(self):
        chain = make_triangle()
        np.testing.assert_allclose(
            chain.initial_distribution("C"), [0, 0, 1]
        )
