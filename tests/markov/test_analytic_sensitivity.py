"""Tests for exact stationary-vector sensitivities."""

import pytest

from repro.core import generate_block_chain
from repro.errors import SolverError
from repro.gmb import MarkovBuilder
from repro.markov import (
    MarkovChain,
    all_rate_sensitivities,
    rate_sensitivity,
    stationary_derivative,
    steady_state_availability,
)


def two_state(lam=0.02, mu=0.5):
    return (
        MarkovBuilder("pair")
        .up("Ok")
        .down("Down")
        .arc("Ok", "Down", lam)
        .arc("Down", "Ok", mu)
        .build()
    )


class TestClosedForms:
    def test_failure_rate_derivative(self):
        lam, mu = 0.02, 0.5
        value = rate_sensitivity(two_state(lam, mu), "Ok", "Down")
        assert value == pytest.approx(-mu / (lam + mu) ** 2, rel=1e-9)

    def test_repair_rate_derivative(self):
        lam, mu = 0.02, 0.5
        value = rate_sensitivity(two_state(lam, mu), "Down", "Ok")
        assert value == pytest.approx(lam / (lam + mu) ** 2, rel=1e-9)

    def test_derivatives_sum_to_zero_over_states(self):
        # d(pi)/dq preserves normalisation: components sum to 0.
        dpi = stationary_derivative(two_state(), "Ok", "Down")
        assert sum(dpi.values()) == pytest.approx(0.0, abs=1e-12)


class TestAgainstFiniteDifferences:
    def test_generated_chain_arcs(self, stress_params, globals_default):
        chain = generate_block_chain(stress_params, globals_default)

        def availability_with(source, target, delta):
            variant = MarkovChain(chain.name)
            for state in chain:
                variant.add_state(
                    state.name, reward=state.reward, meta=state.meta
                )
            for t in chain.transitions():
                rate = t.rate
                if (t.source, t.target) == (source, target):
                    rate += delta
                variant.add_transition(t.source, t.target, rate)
            return steady_state_availability(variant)

        for transition in chain.transitions()[:8]:
            exact = rate_sensitivity(
                chain, transition.source, transition.target
            )
            # A generous step: central differences on near-1
            # availabilities suffer catastrophic cancellation when the
            # perturbation is too small relative to machine epsilon.
            step = max(transition.rate * 1e-3, 1e-8)
            hi = availability_with(transition.source, transition.target, step)
            lo = availability_with(transition.source, transition.target, -step)
            numeric = (hi - lo) / (2.0 * step)
            assert exact == pytest.approx(numeric, rel=1e-4, abs=1e-10)


class TestSignsAndRanking:
    def test_failure_arcs_negative_repair_arcs_positive(self):
        chain = two_state()
        assert rate_sensitivity(chain, "Ok", "Down") < 0
        assert rate_sensitivity(chain, "Down", "Ok") > 0

    def test_ranking_sorted_by_magnitude(
        self, redundant_params, globals_default
    ):
        chain = generate_block_chain(redundant_params, globals_default)
        ranked = all_rate_sensitivities(chain)
        magnitudes = [abs(value) for _s, _t, value in ranked]
        assert magnitudes == sorted(magnitudes, reverse=True)

    def test_every_arc_covered(self, redundant_params, globals_default):
        chain = generate_block_chain(redundant_params, globals_default)
        ranked = all_rate_sensitivities(chain)
        assert len(ranked) == len(chain.transitions())


class TestValidation:
    def test_self_loop_rejected(self):
        with pytest.raises(SolverError, match="self-loop"):
            stationary_derivative(two_state(), "Ok", "Ok")

    def test_single_state_rejected(self):
        from repro.errors import RascadError

        chain = MarkovChain()
        chain.add_state("only")
        with pytest.raises(RascadError):
            stationary_derivative(chain, "only", "elsewhere")

    def test_unknown_state_rejected(self):
        from repro.errors import ModelError

        with pytest.raises(ModelError):
            stationary_derivative(two_state(), "Ok", "Nowhere")
