"""Tests for parametric sensitivity and sweeps."""

import pytest

from repro.errors import SolverError
from repro.gmb import MarkovBuilder
from repro.markov import (
    parametric_sensitivity,
    steady_state_availability,
    sweep,
)


def factory(lam: float):
    return (
        MarkovBuilder("pair")
        .up("Ok")
        .down("Down")
        .arc("Ok", "Down", lam)
        .arc("Down", "Ok", 0.5)
        .build()
    )


class TestSweep:
    def test_values_and_order_preserved(self):
        points = sweep(factory, steady_state_availability, [0.01, 0.02, 0.05])
        assert [value for value, _ in points] == [0.01, 0.02, 0.05]

    def test_availability_decreases_with_failure_rate(self):
        points = sweep(factory, steady_state_availability, [0.01, 0.02, 0.05])
        measures = [measure for _, measure in points]
        assert measures[0] > measures[1] > measures[2]

    def test_matches_closed_form(self):
        ((_, measure),) = sweep(factory, steady_state_availability, [0.1])
        assert measure == pytest.approx(0.5 / 0.6, rel=1e-9)


class TestSensitivity:
    def test_derivative_matches_closed_form(self):
        # dA/dlam = -mu / (lam + mu)^2.
        lam, mu = 0.05, 0.5
        derivative = parametric_sensitivity(
            factory, steady_state_availability, at=lam
        )
        expected = -mu / (lam + mu) ** 2
        assert derivative == pytest.approx(expected, rel=1e-5)

    def test_zero_point_rejected(self):
        with pytest.raises(SolverError):
            parametric_sensitivity(factory, steady_state_availability, at=0.0)
