"""Tests for absorbing-chain reliability analysis."""

import math

import pytest

from repro.errors import ModelError, SolverError
from repro.gmb import MarkovBuilder
from repro.markov import (
    MarkovChain,
    absorbing_variant,
    hazard_rate,
    interval_failure_rate,
    mean_time_to_failure,
    reliability_at,
    reliability_curve,
)


def repairable(lam=0.01, mu=0.5):
    return (
        MarkovBuilder("pair")
        .up("Ok")
        .down("Down")
        .arc("Ok", "Down", lam)
        .arc("Down", "Ok", mu)
        .build()
    )


def standby_pair(lam=0.01, mu=1.0):
    """Two-unit standby with repair; failure = both units dead."""
    return (
        MarkovBuilder("standby")
        .up("Both")
        .up("One")
        .down("None")
        .arc("Both", "One", lam)
        .arc("One", "None", lam)
        .arc("One", "Both", mu)
        .arc("None", "One", mu)
        .build()
    )


class TestAbsorbingVariant:
    def test_down_states_become_absorbing(self):
        variant = absorbing_variant(repairable())
        assert variant.exit_rate("Down") == 0.0

    def test_up_transitions_preserved(self):
        chain = repairable(0.03, 0.4)
        variant = absorbing_variant(chain)
        assert variant.rate("Ok", "Down") == pytest.approx(0.03)

    def test_rejects_all_up_chain(self):
        chain = MarkovChain()
        chain.add_state("A")
        with pytest.raises(ModelError, match="no down state"):
            absorbing_variant(chain)


class TestMTTF:
    def test_exponential_component(self):
        # Single up state: MTTF = 1/lam regardless of repair.
        assert mean_time_to_failure(repairable(0.02)) == pytest.approx(50.0)

    def test_standby_pair_closed_form(self):
        # First-step analysis gives tau_One = (lam + mu) / lam^2 and
        # tau_Both = 1/lam + tau_One = (2 lam + mu) / lam^2.
        lam, mu = 0.01, 1.0
        value = mean_time_to_failure(standby_pair(lam, mu))
        expected = (2 * lam + mu) / lam**2
        assert value == pytest.approx(expected, rel=1e-9)

    def test_start_state_selection(self):
        lam, mu = 0.01, 1.0
        from_one = mean_time_to_failure(standby_pair(lam, mu), start="One")
        from_both = mean_time_to_failure(standby_pair(lam, mu), start="Both")
        assert from_one < from_both

    def test_down_start_rejected(self):
        with pytest.raises(ModelError, match="down state"):
            mean_time_to_failure(repairable(), start="Down")

    def test_unfailable_chain_returns_inf(self):
        chain = MarkovChain()
        chain.add_state("A")
        chain.add_state("B")
        chain.add_transition("A", "B", 1.0)
        chain.add_transition("B", "A", 1.0)
        assert mean_time_to_failure(chain) == math.inf


class TestReliability:
    def test_exponential_closed_form(self):
        chain = repairable(0.05)
        for t in (1.0, 10.0, 40.0):
            assert reliability_at(chain, t) == pytest.approx(
                math.exp(-0.05 * t), rel=1e-8
            )

    def test_repair_does_not_affect_reliability(self):
        # Reliability treats first failure as final.
        slow = repairable(0.05, mu=0.01)
        fast = repairable(0.05, mu=10.0)
        assert reliability_at(slow, 5.0) == pytest.approx(
            reliability_at(fast, 5.0), rel=1e-10
        )

    def test_monotone_decreasing(self):
        chain = standby_pair()
        values = reliability_curve(chain, [0.0, 10.0, 100.0, 1000.0])
        assert values[0] == pytest.approx(1.0)
        assert all(a >= b for a, b in zip(values, values[1:]))

    def test_ode_method_agrees(self):
        chain = standby_pair()
        assert reliability_at(chain, 55.0, method="ode") == pytest.approx(
            reliability_at(chain, 55.0), rel=1e-6
        )


class TestHazardAndIntervalRate:
    def test_exponential_hazard_is_constant(self):
        chain = repairable(0.03)
        assert hazard_rate(chain, 5.0) == pytest.approx(0.03, rel=1e-4)
        assert hazard_rate(chain, 50.0) == pytest.approx(0.03, rel=1e-4)

    def test_interval_rate_of_exponential(self):
        chain = repairable(0.02)
        assert interval_failure_rate(chain, 30.0) == pytest.approx(
            0.02, rel=1e-8
        )

    def test_standby_hazard_increases_from_zero(self):
        chain = standby_pair()
        early = hazard_rate(chain, 0.5)
        late = hazard_rate(chain, 50.0)
        assert early < late

    def test_nonpositive_horizon_rejected(self):
        with pytest.raises(SolverError):
            interval_failure_rate(repairable(), 0.0)

    def test_negative_time_rejected(self):
        with pytest.raises(SolverError):
            hazard_rate(repairable(), -1.0)
