"""Tests for exact chain lumping."""

import pytest

from repro.errors import ModelError
from repro.markov import (
    MarkovChain,
    is_lumpable,
    lump,
    lump_by_meta,
    solve_steady_state,
    steady_state,
    steady_state_availability,
)


def per_unit_pair(lam=0.01, mu=0.5) -> MarkovChain:
    """Two identical units tracked individually: UU, UD, DU, DD."""
    chain = MarkovChain("pair-per-unit")
    chain.add_state("UU", reward=1.0)
    chain.add_state("UD", reward=1.0)
    chain.add_state("DU", reward=1.0)
    chain.add_state("DD", reward=0.0)
    chain.add_transition("UU", "UD", lam)
    chain.add_transition("UU", "DU", lam)
    chain.add_transition("UD", "DD", lam)
    chain.add_transition("DU", "DD", lam)
    chain.add_transition("UD", "UU", mu)
    chain.add_transition("DU", "UU", mu)
    chain.add_transition("DD", "UD", mu)
    chain.add_transition("DD", "DU", mu)
    return chain


SYMMETRIC = [["UU"], ["UD", "DU"], ["DD"]]


class TestLumpability:
    def test_symmetric_partition_is_lumpable(self):
        assert is_lumpable(per_unit_pair(), SYMMETRIC)

    def test_asymmetric_rates_break_lumpability(self):
        chain = per_unit_pair()
        chain.add_transition("UD", "UU", 0.3)  # unequal repair rates
        assert not is_lumpable(chain, SYMMETRIC)

    def test_mixed_rewards_break_lumpability(self):
        chain = MarkovChain()
        chain.add_state("A", reward=1.0)
        chain.add_state("B", reward=0.5)
        chain.add_state("C", reward=0.0)
        chain.add_transition("A", "C", 1.0)
        chain.add_transition("B", "C", 1.0)
        chain.add_transition("C", "A", 0.5)
        chain.add_transition("C", "B", 0.5)
        assert not is_lumpable(chain, [["A", "B"], ["C"]])

    def test_trivial_partition_always_lumpable(self):
        chain = per_unit_pair()
        singletons = [[name] for name in chain.state_names]
        assert is_lumpable(chain, singletons)


class TestPartitionValidation:
    def test_missing_state_rejected(self):
        with pytest.raises(ModelError, match="misses"):
            is_lumpable(per_unit_pair(), [["UU"], ["UD", "DU"]])

    def test_duplicate_state_rejected(self):
        with pytest.raises(ModelError, match="appears in classes"):
            is_lumpable(
                per_unit_pair(), [["UU", "UD"], ["UD", "DU"], ["DD"]]
            )

    def test_unknown_state_rejected(self):
        with pytest.raises(ModelError, match="unknown state"):
            is_lumpable(per_unit_pair(), [["UU", "XX"], ["UD", "DU"], ["DD"]])

    def test_empty_class_rejected(self):
        with pytest.raises(ModelError, match="empty"):
            is_lumpable(per_unit_pair(), [[], ["UU", "UD", "DU", "DD"]])


class TestQuotient:
    def test_quotient_rates_are_birth_death(self):
        lam, mu = 0.01, 0.5
        quotient = lump(
            per_unit_pair(lam, mu), SYMMETRIC, names=["2up", "1up", "0up"]
        )
        assert quotient.rate("2up", "1up") == pytest.approx(2 * lam)
        assert quotient.rate("1up", "0up") == pytest.approx(lam)
        assert quotient.rate("1up", "2up") == pytest.approx(mu)
        assert quotient.rate("0up", "1up") == pytest.approx(2 * mu)

    def test_steady_state_preserved_classwise(self):
        chain = per_unit_pair()
        quotient = lump(chain, SYMMETRIC, names=["2up", "1up", "0up"])
        fine = steady_state(chain)
        coarse = steady_state(quotient)
        assert coarse["2up"] == pytest.approx(fine["UU"], rel=1e-9)
        assert coarse["1up"] == pytest.approx(
            fine["UD"] + fine["DU"], rel=1e-9
        )
        assert coarse["0up"] == pytest.approx(fine["DD"], rel=1e-9)

    def test_availability_preserved(self):
        chain = per_unit_pair()
        quotient = lump(chain, SYMMETRIC)
        assert steady_state_availability(quotient) == pytest.approx(
            steady_state_availability(chain), rel=1e-12
        )

    def test_non_lumpable_partition_rejected(self):
        chain = per_unit_pair()
        with pytest.raises(ModelError, match="not ordinarily lumpable"):
            lump(chain, [["UU", "DD"], ["UD", "DU"]])

    def test_name_count_mismatch_rejected(self):
        with pytest.raises(ModelError, match="names"):
            lump(per_unit_pair(), SYMMETRIC, names=["a", "b"])

    def test_duplicate_names_rejected(self):
        with pytest.raises(ModelError, match="unique"):
            lump(per_unit_pair(), SYMMETRIC, names=["a", "a", "b"])


class TestAgainstGenerator:
    def test_hand_built_per_unit_model_lumps_to_mg_shape(self):
        """A per-unit duplex (transparent everything, perfect repair)
        lumps to the same birth-death structure MG generates."""
        from repro.core import (
            BlockParameters,
            GlobalParameters,
            generate_block_chain,
        )

        g = GlobalParameters(mttm_hours=0.0)
        p = BlockParameters(
            name="pair", quantity=2, min_required=1,
            mtbf_hours=1_000.0, transient_fit=0.0,
            recovery="transparent", repair="transparent",
            p_spf=0.0, p_latent_fault=0.0, p_correct_diagnosis=1.0,
            service_response_hours=0.0,
            diagnosis_minutes=30.0, corrective_minutes=0.0,
            verification_minutes=0.0,
        )
        generated = generate_block_chain(p, g)
        # Hand-build the per-unit model with the same rates, but with
        # only one repair action in progress at a time (MG semantics).
        lam = p.permanent_rate
        mu = 1.0 / p.mttr_hours
        chain = per_unit_pair(lam, mu)
        # MG repairs one unit per service action: from DD only one
        # repair proceeds; halve the DD exit to match (2*mu -> mu each
        # arm is the difference between the models). Rebuild explicitly:
        manual = MarkovChain("manual")
        manual.add_state("2up", reward=1.0)
        manual.add_state("1up", reward=1.0)
        manual.add_state("0up", reward=0.0)
        manual.add_transition("2up", "1up", 2 * lam)
        manual.add_transition("1up", "0up", lam)
        manual.add_transition("1up", "2up", mu)
        manual.add_transition("0up", "1up", mu)
        assert steady_state_availability(generated) == pytest.approx(
            steady_state_availability(manual), rel=1e-9
        )


class TestLumpByMeta:
    def test_groups_by_metadata(self):
        chain = MarkovChain()
        chain.add_state("a1", reward=1.0, meta={"group": "up"})
        chain.add_state("a2", reward=1.0, meta={"group": "up"})
        chain.add_state("d", reward=0.0, meta={"group": "down"})
        chain.add_transition("a1", "d", 0.2)
        chain.add_transition("a2", "d", 0.2)
        chain.add_transition("d", "a1", 0.5)
        chain.add_transition("d", "a2", 0.5)
        chain.add_transition("a1", "a2", 3.0)  # internal churn allowed
        quotient = lump_by_meta(chain, "group")
        assert set(quotient.state_names) == {"up", "down"}
        assert quotient.rate("up", "down") == pytest.approx(0.2)
        assert quotient.rate("down", "up") == pytest.approx(1.0)

    def test_missing_key_rejected(self):
        chain = MarkovChain()
        chain.add_state("a")
        with pytest.raises(ModelError, match="metadata key"):
            lump_by_meta(chain, "group")
