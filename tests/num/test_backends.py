"""The steady-state backend registry and its five solvers."""

import numpy as np
import pytest

from repro.errors import SolverError
from repro.gmb import MarkovBuilder
from repro.num import (
    SolverOptions,
    absorption_times,
    as_operator,
    backend_names,
    get_backend,
    solve_steady,
    steady_backends,
)
from repro.num.backends import UnknownBackendError

EXPECTED_BACKENDS = (
    "dense-direct",
    "gth",
    "power",
    "sparse-direct",
    "sparse-iterative",
)


def two_state(lam=1e-3, mu=0.25):
    return (
        MarkovBuilder("pair")
        .up("Ok")
        .down("Down")
        .arc("Ok", "Down", lam)
        .arc("Down", "Ok", mu)
        .build()
    )


def birth_death(n=12, lam=0.3, mu=1.1):
    builder = MarkovBuilder("bd")
    for i in range(n):
        builder.up(f"S{i}")
    for i in range(n - 1):
        builder.arc(f"S{i}", f"S{i + 1}", lam)
        builder.arc(f"S{i + 1}", f"S{i}", mu)
    return builder.build()


class TestRegistry:
    def test_all_expected_backends_registered(self):
        assert backend_names() == tuple(sorted(EXPECTED_BACKENDS))

    def test_get_backend_returns_named_entries(self):
        for name in EXPECTED_BACKENDS:
            backend = get_backend(name)
            assert backend.name == name
            assert backend.representation in ("dense", "sparse", "any")
            assert backend.summary

    def test_unknown_backend_error_carries_valid_names(self):
        with pytest.raises(UnknownBackendError) as excinfo:
            get_backend("magic")
        assert excinfo.value.name == "magic"
        assert set(excinfo.value.valid) == set(backend_names())

    def test_steady_backends_iterates_registry(self):
        registry = steady_backends()
        assert set(registry) == set(backend_names())
        assert all(
            backend.name == name for name, backend in registry.items()
        )


class TestBackendsAgree:
    @pytest.mark.parametrize("name", EXPECTED_BACKENDS)
    def test_two_state_closed_form(self, name):
        chain = two_state(1e-3, 0.25)
        pi = solve_steady(chain, SolverOptions(steady_method=name))
        assert pi[0] == pytest.approx(0.25 / (1e-3 + 0.25), rel=1e-8)
        assert pi.sum() == pytest.approx(1.0)

    @pytest.mark.parametrize("name", EXPECTED_BACKENDS)
    def test_birth_death_detailed_balance(self, name):
        chain = birth_death()
        pi = solve_steady(chain, SolverOptions(steady_method=name))
        rho = 0.3 / 1.1
        expected = rho ** np.arange(12)
        expected /= expected.sum()
        np.testing.assert_allclose(pi, expected, rtol=1e-7)

    def test_sparse_backends_accept_dense_operators(self):
        # Capability dispatch: the operator is coerced into the
        # representation the backend requires.
        op = as_operator(two_state(), representation="dense")
        pi = solve_steady(op, SolverOptions(steady_method="sparse-direct"))
        assert pi.sum() == pytest.approx(1.0)

    def test_dense_backends_accept_sparse_operators(self):
        op = as_operator(two_state(), representation="sparse")
        pi = solve_steady(op, SolverOptions(steady_method="dense-direct"))
        assert pi.sum() == pytest.approx(1.0)


class TestFailureModes:
    def test_sparse_direct_reports_singular_systems(self):
        # Two disconnected components: the stationary distribution is
        # not unique, so the normalised system is singular.  (Built as
        # a raw matrix because MarkovBuilder rejects reducible chains.)
        block = np.array([[-1.0, 1.0], [1.0, -1.0]])
        q = np.zeros((4, 4))
        q[:2, :2] = block
        q[2:, 2:] = block
        with pytest.raises(SolverError):
            solve_steady(q, SolverOptions(steady_method="sparse-direct"))

    def test_solve_steady_rejects_unknown_backend_late(self):
        options = SolverOptions()
        object.__setattr__(options, "steady_method", "bogus")
        with pytest.raises(SolverError):
            solve_steady(two_state(), options)


class TestAbsorptionTimes:
    def test_dense_and_sparse_agree_on_mttf_system(self):
        # Absorbing two-state chain: MTTF from the up state is 1/lam.
        lam = 1e-3
        chain = (
            MarkovBuilder("absorbing")
            .up("Ok")
            .down("Failed")
            .arc("Ok", "Failed", lam)
            .build()
        )
        up_index = [0]
        dense = absorption_times(
            as_operator(chain, representation="dense", validate=False),
            up_index,
        )
        sparse = absorption_times(
            as_operator(chain, representation="sparse", validate=False),
            up_index,
        )
        assert dense[0] == pytest.approx(1.0 / lam)
        assert sparse[0] == pytest.approx(1.0 / lam)
