"""GeneratorOperator: construction, representation selection, validation."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.errors import SolverError
from repro.gmb import MarkovBuilder
from repro.num import (
    SPARSE_STATE_FLOOR,
    GeneratorOperator,
    as_operator,
    validate_generator,
)


def two_state(lam=1e-3, mu=0.25):
    return (
        MarkovBuilder("pair")
        .up("Ok")
        .down("Down")
        .arc("Ok", "Down", lam)
        .arc("Down", "Ok", mu)
        .build()
    )


def ring_chain(n):
    builder = MarkovBuilder("ring")
    for i in range(n):
        builder.up(f"S{i}")
    for i in range(n):
        builder.arc(f"S{i}", f"S{(i + 1) % n}", 1.0 + i * 0.01)
    return builder.build()


class TestFromChain:
    def test_dense_matches_generator_matrix_bitwise(self):
        chain = two_state()
        op = GeneratorOperator.from_chain(chain, representation="dense")
        np.testing.assert_array_equal(op.dense(), chain.generator_matrix())

    def test_sparse_agrees_with_dense(self):
        chain = ring_chain(12)
        dense = GeneratorOperator.from_chain(chain, representation="dense")
        sparse = GeneratorOperator.from_chain(chain, representation="sparse")
        assert sparse.representation == "sparse"
        np.testing.assert_allclose(
            sparse.sparse().toarray(), dense.dense(), atol=0.0
        )

    def test_sparse_path_never_densifies(self):
        chain = ring_chain(8)
        op = GeneratorOperator.from_chain(chain, representation="sparse")
        assert sp.issparse(op.sparse())
        assert op.nnz == 8 + 8  # one arc plus one diagonal per state

    def test_auto_stays_dense_below_the_state_floor(self):
        op = GeneratorOperator.from_chain(two_state())
        assert op.representation == "dense"

    def test_auto_goes_sparse_for_large_sparse_chains(self):
        chain = ring_chain(SPARSE_STATE_FLOOR)
        op = GeneratorOperator.from_chain(chain)
        assert op.representation == "sparse"

    def test_with_representation_round_trips(self):
        chain = ring_chain(6)
        dense = GeneratorOperator.from_chain(chain, representation="dense")
        sparse = dense.with_representation("sparse")
        back = sparse.with_representation("dense")
        np.testing.assert_allclose(back.dense(), dense.dense(), atol=0.0)


class TestApply:
    def test_apply_is_vector_times_q_both_representations(self):
        chain = ring_chain(7)
        v = np.linspace(0.0, 1.0, 7)
        v /= v.sum()
        dense = GeneratorOperator.from_chain(chain, representation="dense")
        sparse = GeneratorOperator.from_chain(chain, representation="sparse")
        expected = v @ dense.dense()
        np.testing.assert_allclose(dense.apply(v), expected, atol=1e-15)
        np.testing.assert_allclose(sparse.apply(v), expected, atol=1e-15)

    def test_uniformization_rate_is_max_exit_rate(self):
        chain = two_state(lam=1e-3, mu=0.25)
        op = GeneratorOperator.from_chain(chain)
        assert op.uniformization_rate() == pytest.approx(0.25)


class TestValidation:
    def test_negative_off_diagonal_rejected(self):
        q = np.array([[-1.0, 1.0], [2.0, -1.0]])
        q[0, 1] = -1.0
        with pytest.raises(SolverError, match="negative off-diagonal"):
            validate_generator(q)

    def test_bad_row_sums_rejected(self):
        q = np.array([[-1.0, 2.0], [0.5, -0.5]])
        with pytest.raises(SolverError, match="rows do not sum to zero"):
            validate_generator(q)

    def test_sparse_validation_matches_dense(self):
        q = np.array([[-1.0, 2.0], [0.5, -0.5]])
        with pytest.raises(SolverError, match="rows do not sum to zero"):
            validate_generator(sp.csr_matrix(q))

    def test_from_matrix_rejects_non_square(self):
        with pytest.raises(SolverError, match="square"):
            GeneratorOperator.from_matrix(np.zeros((2, 3)))

    def test_as_operator_accepts_chain_matrix_and_operator(self):
        chain = two_state()
        from_chain = as_operator(chain)
        from_matrix = as_operator(chain.generator_matrix())
        np.testing.assert_array_equal(
            from_chain.dense(), from_matrix.dense()
        )
        assert as_operator(from_chain) is from_chain
