"""SolverOptions: canonicalisation, validation, and cache tokens."""

import pytest

from repro.errors import SolverError
from repro.num import (
    DEFAULT_OPTIONS,
    SolverOptions,
    as_options,
    backend_names,
)
from repro.num.backends import UnknownBackendError


class TestCanonicalisation:
    def test_direct_alias_canonicalises_to_dense_direct(self):
        assert SolverOptions(steady_method="direct").steady_method == (
            "dense-direct"
        )
        assert SolverOptions(steady_method="dense").steady_method == (
            "dense-direct"
        )
        assert SolverOptions(steady_method="sparse").steady_method == (
            "sparse-direct"
        )

    def test_aliases_compare_and_hash_equal(self):
        assert SolverOptions(steady_method="direct") == SolverOptions()
        assert hash(SolverOptions(steady_method="direct")) == hash(
            SolverOptions()
        )

    def test_cache_token_identical_for_aliases(self):
        assert (
            SolverOptions(steady_method="direct").cache_token()
            == DEFAULT_OPTIONS.cache_token()
        )

    def test_cache_token_distinguishes_backends_and_tolerances(self):
        tokens = {
            SolverOptions(steady_method=name).cache_token()
            for name in backend_names()
        }
        assert len(tokens) == len(backend_names())
        assert (
            SolverOptions(tolerance=1e-10).cache_token()
            != DEFAULT_OPTIONS.cache_token()
        )


class TestValidation:
    def test_unknown_backend_lists_valid_names(self):
        with pytest.raises(UnknownBackendError) as excinfo:
            SolverOptions(steady_method="magic")
        message = str(excinfo.value)
        for name in backend_names():
            assert name in message

    def test_unknown_backend_is_a_solver_error(self):
        with pytest.raises(SolverError):
            SolverOptions(steady_method="magic")

    def test_unknown_transient_method(self):
        with pytest.raises(SolverError, match="unknown transient method"):
            SolverOptions(transient_method="magic")

    def test_unknown_representation(self):
        with pytest.raises(SolverError, match="unknown representation"):
            SolverOptions(representation="ragged")

    @pytest.mark.parametrize("bad", [0.0, -1e-9, 2.0, "tight", None])
    def test_bad_tolerance_rejected(self, bad):
        with pytest.raises(SolverError, match="tolerance"):
            SolverOptions(tolerance=bad)


class TestConversion:
    def test_round_trips_through_dict(self):
        options = SolverOptions(
            steady_method="gth",
            transient_method="expm",
            representation="sparse",
            tolerance=1e-9,
        )
        assert SolverOptions.from_dict(options.to_dict()) == options

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(SolverError, match="unknown solver option"):
            SolverOptions.from_dict({"steady": "gth"})

    def test_from_dict_rejects_non_string_methods(self):
        with pytest.raises(SolverError, match="must be a string"):
            SolverOptions.from_dict({"steady_method": 3})

    def test_as_options_accepts_all_spellings(self):
        assert as_options(None) is DEFAULT_OPTIONS
        assert as_options("gth").steady_method == "gth"
        assert as_options({"steady_method": "power"}).steady_method == (
            "power"
        )
        options = SolverOptions(steady_method="gth")
        assert as_options(options) is options

    def test_as_options_rejects_other_types(self):
        with pytest.raises(SolverError):
            as_options(42)

    def test_with_changes_revalidates(self):
        options = DEFAULT_OPTIONS.with_changes(steady_method="power")
        assert options.steady_method == "power"
        with pytest.raises(SolverError):
            DEFAULT_OPTIONS.with_changes(steady_method="magic")
