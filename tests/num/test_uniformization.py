"""The shared uniformization core and its grid evaluator.

The load-bearing contract here is *grid identity*: evaluating a whole
time grid through one power sequence must match per-point evaluation to
1e-12 (and in fact exactly), at every layer that routes through
:func:`repro.num.transient_grid`.
"""

import numpy as np
import pytest
from scipy.linalg import expm
from scipy.stats import poisson

from repro.errors import SolverError
from repro.gmb import MarkovBuilder
from repro.markov.mttf import reliability_at, reliability_curve
from repro.markov.transient import transient_curve, transient_probabilities
from repro.num import (
    GeneratorOperator,
    interval_reward_value,
    poisson_pmf_series,
    poisson_truncation,
    stiffness,
    transient_distribution,
    transient_grid,
    uniformized,
)


def two_state(lam=1e-3, mu=0.25):
    return (
        MarkovBuilder("pair")
        .up("Ok")
        .down("Down")
        .arc("Ok", "Down", lam)
        .arc("Down", "Ok", mu)
        .build()
    )


def repairable(n=6):
    """A birth-death repair chain with one down state at the end."""
    builder = MarkovBuilder("rep")
    for i in range(n - 1):
        builder.up(f"S{i}")
    builder.down(f"S{n - 1}")
    for i in range(n - 1):
        builder.arc(f"S{i}", f"S{i + 1}", 0.01 * (i + 1))
        builder.arc(f"S{i + 1}", f"S{i}", 0.5)
    return builder.build()


class TestPoissonMachinery:
    def test_pmf_series_matches_scipy(self):
        mean = 7.3
        series = poisson_pmf_series(mean, 40)
        np.testing.assert_allclose(
            series, poisson.pmf(np.arange(40), mean), rtol=1e-12
        )

    def test_truncation_leaves_tail_below_tol(self):
        for mean in (0.5, 10.0, 500.0):
            n_terms = poisson_truncation(mean, 1e-12)
            assert poisson.sf(n_terms - 1, mean) <= 1e-12

    def test_zero_mean_needs_one_term(self):
        assert poisson_truncation(0.0, 1e-12) == 1


class TestTransientDistribution:
    @pytest.mark.parametrize("representation", ["dense", "sparse"])
    def test_matches_matrix_exponential(self, representation):
        chain = repairable()
        op = GeneratorOperator.from_chain(chain, representation=representation)
        p0 = chain.initial_distribution()
        for t in (0.5, 10.0, 200.0):
            expected = p0 @ expm(chain.generator_matrix() * t)
            got = transient_distribution(op, t, p0=p0)
            np.testing.assert_allclose(got, expected, atol=1e-10)

    def test_time_zero_returns_initial_vector(self):
        chain = two_state()
        op = GeneratorOperator.from_chain(chain)
        p0 = chain.initial_distribution()
        np.testing.assert_array_equal(
            transient_distribution(op, 0.0, p0=p0), p0
        )

    def test_negative_time_rejected(self):
        op = GeneratorOperator.from_chain(two_state())
        with pytest.raises(SolverError, match="non-negative"):
            transient_distribution(op, -1.0)

    def test_bad_initial_vector_rejected(self):
        op = GeneratorOperator.from_chain(two_state())
        with pytest.raises(SolverError, match="probability distribution"):
            transient_distribution(op, 1.0, p0=np.array([0.7, 0.7]))


class TestGridIdentity:
    """Grid evaluation == per-point evaluation, the central invariant."""

    TIMES = [0.0, 0.1, 1.0, 8.0, 24.0, 100.0, 720.0]

    @pytest.mark.parametrize("representation", ["dense", "sparse"])
    def test_transient_grid_matches_per_point(self, representation):
        chain = repairable()
        op = GeneratorOperator.from_chain(chain, representation=representation)
        p0 = chain.initial_distribution()
        grid = transient_grid(op, self.TIMES, p0=p0)
        for t, vector in zip(self.TIMES, grid):
            single = transient_distribution(op, t, p0=p0)
            np.testing.assert_allclose(vector, single, atol=1e-12, rtol=0.0)

    def test_transient_curve_matches_per_point_calls(self):
        chain = repairable()
        curve = transient_curve(chain, self.TIMES)
        for t, vector in zip(self.TIMES, curve):
            single = transient_probabilities(chain, t)
            np.testing.assert_allclose(vector, single, atol=1e-12, rtol=0.0)

    def test_reliability_curve_matches_reliability_at(self):
        chain = repairable()
        curve = reliability_curve(chain, self.TIMES)
        for t, value in zip(self.TIMES, curve):
            assert value == pytest.approx(
                reliability_at(chain, t), abs=1e-12
            )


class TestIntervalReward:
    def test_two_state_interval_availability_closed_form(self):
        lam, mu = 1e-3, 0.25
        chain = two_state(lam, mu)
        op = GeneratorOperator.from_chain(chain)
        rewards = np.array([1.0, 0.0])
        p0 = chain.initial_distribution()
        horizon = 100.0
        s = lam + mu
        expected = mu / s + lam / (s * s * horizon) * (
            1.0 - np.exp(-s * horizon)
        )
        got = interval_reward_value(op, horizon, rewards, p0)
        assert got == pytest.approx(expected, rel=1e-9)


class TestUniformizedOperator:
    def test_dense_and_sparse_apply_agree(self):
        chain = repairable()
        dense_apply, dense_lam = uniformized(
            GeneratorOperator.from_chain(chain, representation="dense")
        )
        sparse_apply, sparse_lam = uniformized(
            GeneratorOperator.from_chain(chain, representation="sparse")
        )
        assert dense_lam == pytest.approx(sparse_lam)
        v = chain.initial_distribution()
        np.testing.assert_allclose(
            dense_apply(v), sparse_apply(v), atol=1e-15
        )

    def test_stiffness_is_rate_times_horizon(self):
        op = GeneratorOperator.from_chain(two_state(1e-3, 0.25))
        assert stiffness(op, 1000.0) == pytest.approx(
            op.uniformization_rate() * 1000.0
        )
