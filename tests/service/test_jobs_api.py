"""The /v1/jobs endpoints: submit, dedup, inspect, cancel, metrics."""

import asyncio
import json

from repro.engine import Engine
from repro.jobs import JobStore, open_store
from repro.library import e10000_model
from repro.service.app import App, render_prometheus
from repro.service.protocol import Request
from repro.service.queue import SolveQueue
from repro.spec import model_to_spec


def _request(method, path, payload=None, query=None):
    body = json.dumps(payload).encode() if payload is not None else b""
    return Request(
        method=method, path=path, query=dict(query or {}),
        headers={}, body=body,
    )


def call(requests, tmp_path, with_store=True):
    """Run requests against a fresh App wired to a temp job store."""

    async def go():
        engine = Engine(cache_dir=tmp_path / "cache")
        queue = SolveQueue(engine)
        queue.start()
        store = (
            JobStore(tmp_path / "jobs.sqlite3") if with_store else None
        )
        app = App(engine, queue, jobs=store)
        responses = []
        for request in requests:
            response = await app.handle(request)
            payload = (
                json.loads(response.body)
                if response.content_type.startswith("application/json")
                else response.body.decode()
            )
            responses.append((response.status, payload))
        await queue.close()
        return responses, engine, store

    return asyncio.run(go())


def submit_payload(**overrides):
    payload = {
        "kind": "sweep",
        "spec": model_to_spec(e10000_model()),
        "params": {
            "field": "mtbf_hours",
            "block": "E10000 Server/Operating System",
            "values": [1e5, 2e5, 3e5],
        },
    }
    payload.update(overrides)
    return payload


class TestSubmit:
    def test_new_job_is_202_queued(self, tmp_path):
        responses, _, store = call(
            [_request("POST", "/v1/jobs", submit_payload())], tmp_path
        )
        status, payload = responses[0]
        assert status == 202
        assert payload["created"] is True
        assert payload["job"]["state"] == "queued"
        assert store.get(payload["job"]["id"]).kind == "sweep"

    def test_resubmission_is_200_deduped(self, tmp_path):
        responses, engine, _ = call(
            [
                _request("POST", "/v1/jobs", submit_payload()),
                _request("POST", "/v1/jobs", submit_payload()),
            ],
            tmp_path,
        )
        (first_status, first), (second_status, second) = responses
        assert (first_status, second_status) == (202, 200)
        assert second["created"] is False
        assert second["job"]["id"] == first["job"]["id"]
        snapshot = engine.stats.snapshot()
        assert snapshot.counters["jobs_submitted"] == 1
        assert snapshot.counters["jobs_dedup_hits"] == 1

    def test_range_shorthand_values(self, tmp_path):
        payload = submit_payload()
        payload["params"]["values"] = "1e5:3e5:3"
        responses, _, store = call(
            [_request("POST", "/v1/jobs", payload)], tmp_path
        )
        status, body = responses[0]
        assert status == 202
        record = store.get(body["job"]["id"])
        assert record.spec.params["values"] == [1e5, 2e5, 3e5]

    def test_malformed_range_is_400(self, tmp_path):
        payload = submit_payload()
        payload["params"]["values"] = "1e5:3e5"
        responses, _, _ = call(
            [_request("POST", "/v1/jobs", payload)], tmp_path
        )
        status, body = responses[0]
        assert status == 400
        assert body["error"]["code"] == "invalid_spec"

    def test_unknown_kind_is_400(self, tmp_path):
        responses, _, _ = call(
            [_request("POST", "/v1/jobs", submit_payload(kind="magic"))],
            tmp_path,
        )
        status, body = responses[0]
        assert status == 400

    def test_malformed_spec_is_400(self, tmp_path):
        responses, _, _ = call(
            [_request(
                "POST", "/v1/jobs",
                submit_payload(spec={"diagram": {}}),
            )],
            tmp_path,
        )
        status, body = responses[0]
        assert status == 400
        assert body["error"]["code"] == "invalid_spec"


class TestInspect:
    def test_list_reports_jobs_and_counts(self, tmp_path):
        responses, _, _ = call(
            [
                _request("POST", "/v1/jobs", submit_payload()),
                _request("GET", "/v1/jobs"),
            ],
            tmp_path,
        )
        status, body = responses[1]
        assert status == 200
        assert len(body["jobs"]) == 1
        assert body["counts"]["queued"] == 1

    def test_get_returns_the_job(self, tmp_path):
        responses, _, _ = call(
            [_request("POST", "/v1/jobs", submit_payload())], tmp_path
        )
        job_id = responses[0][1]["job"]["id"]
        responses, _, _ = call(
            [
                _request("POST", "/v1/jobs", submit_payload()),
                _request("GET", f"/v1/jobs/{job_id}"),
            ],
            tmp_path,
        )
        status, body = responses[1]
        assert status == 200
        assert body["job"]["id"] == job_id

    def test_unknown_id_is_404(self, tmp_path):
        responses, _, _ = call(
            [_request("GET", "/v1/jobs/job-missing")], tmp_path
        )
        status, body = responses[0]
        assert status == 404
        assert body["error"]["code"] == "job_not_found"

    def test_jobs_disabled_without_a_store(self, tmp_path):
        responses, _, _ = call(
            [_request("GET", "/v1/jobs")], tmp_path, with_store=False
        )
        status, body = responses[0]
        assert status == 503
        assert body["error"]["code"] == "jobs_disabled"


class TestCancel:
    def test_cancel_queued_job(self, tmp_path):
        responses, _, _ = call(
            [_request("POST", "/v1/jobs", submit_payload())], tmp_path
        )
        job_id = responses[0][1]["job"]["id"]
        responses, _, _ = call(
            [
                _request("POST", "/v1/jobs", submit_payload()),
                _request("POST", f"/v1/jobs/{job_id}/cancel"),
            ],
            tmp_path,
        )
        status, body = responses[1]
        assert status == 200
        assert body["job"]["state"] == "cancelled"


class TestMetrics:
    def test_job_gauges_in_json_metrics(self, tmp_path):
        responses, _, _ = call(
            [
                _request("POST", "/v1/jobs", submit_payload()),
                _request("GET", "/metrics"),
            ],
            tmp_path,
        )
        status, body = responses[1]
        assert status == 200
        service = body["service"]
        assert service["jobs_queued"] == 1
        assert service["jobs_running"] == 0
        assert "queue_depth_peak" in service
        assert "in_flight_peak" in service
        assert "queue_saturation" in service

    def test_job_gauges_in_prometheus(self, tmp_path):
        responses, _, _ = call(
            [
                _request("POST", "/v1/jobs", submit_payload()),
                _request(
                    "GET", "/metrics", query={"format": "prometheus"}
                ),
            ],
            tmp_path,
        )
        status, text = responses[1]
        assert status == 200
        assert "rascad_service_jobs_queued 1" in text
        assert "rascad_service_queue_depth_peak" in text
        assert "rascad_service_in_flight_peak" in text

    def test_queue_depth_peak_survives_drain(self, tmp_path):
        # After a solve completes, queue_depth drops back to 0 but the
        # peak gauge keeps the high-water mark.
        spec = model_to_spec(e10000_model())
        responses, engine, _ = call(
            [
                _request("POST", "/v1/solve", {"spec": spec}),
                _request("GET", "/metrics"),
            ],
            tmp_path,
        )
        status, body = responses[1]
        assert status == 200
        assert body["service"]["queue_depth"] == 0
        assert body["service"]["queue_depth_peak"] == 1


class TestOpenStore:
    def test_open_store_defaults_into_cache_dir(self, tmp_path):
        store, checkpointer = open_store(cache_dir=tmp_path)
        assert store.path == tmp_path / "jobs.sqlite3"
        assert checkpointer.directory == tmp_path / "checkpoints"

    def test_open_store_explicit_db_path(self, tmp_path):
        store, checkpointer = open_store(db_path=tmp_path / "q.db")
        assert store.path == tmp_path / "q.db"
        assert checkpointer.directory == tmp_path / "checkpoints"
