"""End-to-end server tests over real sockets.

Each test stands up a :class:`repro.service.Server` on an ephemeral
port inside one event loop, drives it with a raw asyncio HTTP client,
and asserts the paper-shaped guarantees: results bit-identical to the
CLI path, one engine solve under a 64-client identical load, 429 on a
full queue, and a drain-then-persist shutdown.
"""

import asyncio
import json
import time

from repro.core import translate
from repro.engine import load_stats
from repro.library import datacenter_model, e10000_model, workgroup_model
from repro.service import Server, ServiceConfig


async def http_request(host, port, method, path, payload=None):
    """One request on a fresh connection; returns (status, json_body)."""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        body = b""
        if payload is not None:
            body = json.dumps(payload).encode()
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: test\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"\r\n"
        ).encode()
        writer.write(head + body)
        await writer.drain()
        raw = await reader.readuntil(b"\r\n\r\n")
        status = int(raw.split(b" ", 2)[1])
        headers = {}
        for line in raw.decode().split("\r\n")[1:]:
            if ":" in line:
                name, value = line.split(":", 1)
                headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0"))
        data = await reader.readexactly(length) if length else b""
        parsed = json.loads(data) if data else None
        return status, parsed, headers
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass


def run_with_server(scenario, config=None):
    """Start a server, run the scenario coroutine, shut down cleanly."""

    async def go():
        server = Server(config or ServiceConfig(port=0))
        host, port = await server.start()
        try:
            return await scenario(server, host, port)
        finally:
            await server.shutdown()

    return asyncio.run(go())


class TestSolveParity:
    def test_every_library_model_matches_the_cli_path(self):
        factories = {
            "datacenter": datacenter_model,
            "e10000": e10000_model,
            "workgroup": workgroup_model,
        }

        async def scenario(server, host, port):
            observed = {}
            for name in factories:
                status, spec, _ = await http_request(
                    host, port, "GET", f"/v1/library/{name}"
                )
                assert status == 200
                status, result, _ = await http_request(
                    host, port, "POST", "/v1/solve", {"spec": spec}
                )
                assert status == 200
                observed[name] = result["availability"]
            return observed

        observed = run_with_server(scenario)
        for name, factory in factories.items():
            expected = translate(factory()).availability
            assert observed[name] == expected  # bit-identical floats


class TestDedupUnderLoad:
    def test_64_identical_clients_cost_one_engine_solve(self):
        async def scenario(server, host, port):
            status, spec, _ = await http_request(
                host, port, "GET", "/v1/library/e10000"
            )
            assert status == 200
            results = await asyncio.gather(*(
                http_request(
                    host, port, "POST", "/v1/solve", {"spec": spec}
                )
                for _ in range(64)
            ))
            status, metrics, _ = await http_request(
                host, port, "GET", "/metrics"
            )
            return results, metrics

        results, metrics = run_with_server(
            scenario,
            # A generous window so all 64 requests join one in-flight
            # solve even on a loaded CI box.
            ServiceConfig(port=0, batch_window=0.02, max_queue=128),
        )
        statuses = [status for status, _, _ in results]
        availabilities = {body["availability"] for _, body, _ in results}
        assert statuses == [200] * 64
        assert len(availabilities) == 1
        engine = metrics["engine"]
        # The dedup guarantee: one solve total, every other request
        # either joined the in-flight future or hit the system cache.
        assert engine["system_solves"] == 1
        dedup = engine["counters"].get("service_dedup_hits", 0)
        assert dedup + engine["system_cache_hits"] == 63


class TestBackpressure:
    def test_full_queue_returns_429_with_retry_after(self):
        async def scenario(server, host, port):
            # Saturate the queue faster than one worker thread drains
            # it: distinct specs so dedup cannot absorb them.
            base_status, spec, _ = await http_request(
                host, port, "GET", "/v1/library/datacenter"
            )
            assert base_status == 200

            def variant(index):
                changed = json.loads(json.dumps(spec))
                changed.setdefault("globals", {})["reboot_minutes"] = (
                    5.0 + index / 7.0
                )
                return changed

            results = await asyncio.gather(*(
                http_request(
                    host, port, "POST", "/v1/solve",
                    {"spec": variant(index)},
                )
                for index in range(24)
            ))
            return results

        results = run_with_server(
            scenario,
            ServiceConfig(
                port=0, max_queue=2, batch_window=0.05, max_batch=1
            ),
        )
        statuses = sorted(status for status, _, _ in results)
        assert statuses.count(429) >= 1, statuses
        rejected = next(r for r in results if r[0] == 429)
        assert rejected[1]["error"]["code"] == "queue_full"
        assert int(rejected[2]["retry-after"]) >= 1
        assert statuses.count(200) >= 2  # admitted work still finishes


class TestShutdown:
    def test_shutdown_drains_and_persists_stats(self, tmp_path):
        cache_dir = tmp_path / "cache"

        async def scenario(server, host, port):
            status, spec, _ = await http_request(
                host, port, "GET", "/v1/library/workgroup"
            )
            status, result, _ = await http_request(
                host, port, "POST", "/v1/solve", {"spec": spec}
            )
            assert status == 200
            server.request_shutdown()
            await server.serve_until_shutdown()
            return result

        run_with_server(
            scenario, ServiceConfig(port=0, cache_dir=cache_dir)
        )
        stats = load_stats(cache_dir)
        assert stats is not None
        assert stats.system_solves == 1
        assert stats.route_counts["POST /v1/solve 200"] == 1
        assert (cache_dir / "blocks").exists()  # shared with CLI runs

    def test_closed_server_refuses_new_connections(self):
        async def scenario(server, host, port):
            await server.shutdown()
            try:
                await asyncio.wait_for(
                    http_request(host, port, "GET", "/healthz"),
                    timeout=1.0,
                )
            except (ConnectionError, asyncio.TimeoutError, OSError):
                return True
            return False

        assert run_with_server(scenario)


class TestEmbedding:
    def test_server_built_outside_the_loop_serves_via_asyncio_run(self):
        # The natural embedding pattern: construct Server at module
        # scope (no running loop), then hand it to asyncio.run.  On
        # Python 3.9 an eagerly-created asyncio.Event would bind the
        # wrong loop here.
        server = Server(ServiceConfig(port=0))

        async def go():
            host, port = await server.start()
            status, payload, _ = await http_request(
                host, port, "GET", "/healthz"
            )
            server.request_shutdown()
            await server.serve_until_shutdown()
            return status, payload

        status, payload = asyncio.run(go())
        assert status == 200
        assert payload["status"] == "ok"


class TestWarmStart:
    def test_warm_start_presolves_the_library(self):
        async def scenario(server, host, port):
            status, metrics, _ = await http_request(
                host, port, "GET", "/metrics"
            )
            return metrics

        metrics = run_with_server(
            scenario, ServiceConfig(port=0, warm_start=True)
        )
        engine = metrics["engine"]
        assert engine["counters"]["service_warm_started"] == 3
        assert engine["system_solves"] == 3

    def test_warm_start_makes_library_solves_cache_hits(self):
        async def scenario(server, host, port):
            status, spec, _ = await http_request(
                host, port, "GET", "/v1/library/e10000"
            )
            start = time.perf_counter()
            status, result, _ = await http_request(
                host, port, "POST", "/v1/solve", {"spec": spec}
            )
            elapsed = time.perf_counter() - start
            assert status == 200
            status, metrics, _ = await http_request(
                host, port, "GET", "/metrics"
            )
            return metrics, elapsed

        metrics, _ = run_with_server(
            scenario, ServiceConfig(port=0, warm_start=True)
        )
        assert metrics["engine"]["system_cache_hits"] >= 1
