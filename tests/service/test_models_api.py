"""The ``/v1/models`` registry API and ``model_ref`` resolution.

Covers the publish → gate → force → rollback lifecycle over real
sockets, the structured ``not_found`` envelopes, and the bit-identity
guarantee: a ``model_ref`` request produces byte-identical payloads to
the same request with the spec inlined — single-process and through a
two-worker cluster fan-out.
"""

import asyncio
import json

from repro.library import workgroup_model
from repro.service import Server, ServiceConfig
from repro.spec import model_to_spec

from .test_app import _request, call
from .test_server import http_request, run_with_server

OS = "Operating System"
BLOCK = "Workgroup Server/Operating System"


def workgroup_spec():
    return model_to_spec(workgroup_model())


def degraded_spec():
    spec = workgroup_spec()
    for block in spec["diagram"]["blocks"]:
        if block["name"] == OS:
            block["mtbf_hours"] = 3_000.0
    return spec


async def raw_request(host, port, method, path, payload=None):
    """Like ``http_request`` but returns the raw body bytes."""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        body = json.dumps(payload).encode() if payload is not None else b""
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: test\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"\r\n"
        ).encode()
        writer.write(head + body)
        await writer.drain()
        raw = await reader.readuntil(b"\r\n\r\n")
        status = int(raw.split(b" ", 2)[1])
        headers = {}
        for line in raw.decode().split("\r\n")[1:]:
            if ":" in line:
                name, value = line.split(":", 1)
                headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0"))
        data = await reader.readexactly(length) if length else b""
        return status, data
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass


class TestSeededRegistry:
    def test_models_index_lists_the_seeded_library(self):
        async def scenario(server, host, port):
            status, body, _ = await http_request(
                host, port, "GET", "/v1/models"
            )
            return status, body

        status, body = run_with_server(scenario)
        assert status == 200
        names = [row["name"] for row in body["models"]]
        assert names == ["datacenter", "e10000", "workgroup"]
        for row in body["models"]:
            assert "latest" in row["tags"]

    def test_library_index_is_a_shim_over_the_registry(self):
        async def scenario(server, host, port):
            status, body, _ = await http_request(
                host, port, "GET", "/v1/library"
            )
            return status, body

        status, body = run_with_server(scenario)
        assert status == 200
        assert body["models"] == ["datacenter", "e10000", "workgroup"]

    def test_library_spec_matches_registry_version(self):
        async def scenario(server, host, port):
            _, spec, _ = await http_request(
                host, port, "GET", "/v1/library/workgroup"
            )
            _, detail, _ = await http_request(
                host, port, "GET", "/v1/models/workgroup"
            )
            digest = detail["model"]["tags"]["latest"]
            _, version, _ = await http_request(
                host, port, "GET",
                f"/v1/models/workgroup/versions/{digest}?include_spec=1",
            )
            return spec, version["version"]["spec"]

        library_spec, registry_spec = run_with_server(scenario)
        assert library_spec == registry_spec


class TestNotFound:
    def test_unknown_library_model_is_structured_404(self):
        async def scenario(server, host, port):
            return await http_request(
                host, port, "GET", "/v1/library/ghost"
            )

        status, body, _ = run_with_server(scenario)
        assert status == 404
        assert body["error"]["code"] == "not_found"
        assert "ghost" in body["error"]["message"]

    def test_unknown_registry_model_is_structured_404(self):
        async def scenario(server, host, port):
            return await http_request(
                host, port, "GET", "/v1/models/ghost"
            )

        status, body, _ = run_with_server(scenario)
        assert status == 404
        assert body["error"]["code"] == "not_found"

    def test_unknown_version_is_structured_404(self):
        async def scenario(server, host, port):
            return await http_request(
                host, port, "GET",
                "/v1/models/workgroup/versions/0123456789abcdef",
            )

        status, body, _ = run_with_server(scenario)
        assert status == 404
        assert body["error"]["code"] == "not_found"

    def test_ref_solve_against_unknown_model_is_404(self):
        async def scenario(server, host, port):
            return await http_request(
                host, port, "POST", "/v1/solve",
                {"model_ref": "ghost@prod"},
            )

        status, body, _ = run_with_server(scenario)
        assert status == 404
        assert body["error"]["code"] == "not_found"


class TestPublishLifecycle:
    def test_publish_gate_force_rollback(self):
        async def scenario(server, host, port):
            out = {}
            # v1 straight to prod: 201, no gate (first holder).
            status, body, _ = await http_request(
                host, port, "POST", "/v1/models",
                {"name": "wg", "spec": workgroup_spec(), "tag": "prod"},
            )
            out["publish"] = (status, body)
            # A degraded v2 to prod: the gate rejects with details.
            status, body, _ = await http_request(
                host, port, "POST", "/v1/models",
                {"name": "wg", "spec": degraded_spec(), "tag": "prod"},
            )
            out["rejected"] = (status, body)
            # force pushes it through, recorded.
            status, body, _ = await http_request(
                host, port, "POST", "/v1/models",
                {
                    "name": "wg", "spec": degraded_spec(),
                    "tag": "prod", "force": True,
                },
            )
            out["forced"] = (status, body)
            # Rollback returns prod to v1.
            status, body, _ = await http_request(
                host, port, "POST", "/v1/models/wg/tags",
                {"tag": "prod", "rollback": True},
            )
            out["rollback"] = (status, body)
            status, body, _ = await http_request(
                host, port, "GET", "/v1/models/wg"
            )
            out["detail"] = (status, body)
            return out

        out = run_with_server(scenario)
        status, body = out["publish"]
        assert status == 201
        assert body["created"] is True
        v1_digest = body["version"]["digest"]

        status, body = out["rejected"]
        assert status == 409
        assert body["error"]["code"] == "regression_detected"
        details = body["error"]["details"]
        assert details["baseline_digest"] == v1_digest
        assert details["downtime_delta_minutes"] > 1.0

        status, body = out["forced"]
        assert status == 200  # version row was created by the
        assert body["gate"]["forced"] is True  # rejected publish

        status, body = out["rollback"]
        assert status == 200
        assert body["digest"] == v1_digest

        status, body = out["detail"]
        assert body["model"]["tags"]["prod"] == v1_digest
        assert len(body["model"]["versions"]) == 2

    def test_tag_move_by_digest_prefix(self):
        async def scenario(server, host, port):
            status, body, _ = await http_request(
                host, port, "POST", "/v1/models",
                {"name": "wg", "spec": workgroup_spec()},
            )
            digest = body["version"]["digest"]
            status, body, _ = await http_request(
                host, port, "POST", "/v1/models/wg/tags",
                {"tag": "staging", "digest": digest[:12]},
            )
            return status, body, digest

        status, body, digest = run_with_server(scenario)
        assert status == 200
        assert body["digest"] == digest
        assert body["previous"] is None

    def test_registry_metrics_sections(self):
        async def scenario(server, host, port):
            status, metrics, _ = await http_request(
                host, port, "GET", "/metrics"
            )
            _, prometheus = await raw_request(
                host, port, "GET", "/metrics?format=prometheus"
            )
            return metrics, prometheus.decode()

        metrics, prometheus = run_with_server(scenario)
        assert metrics["registry"] == {
            "models": 3, "versions": 3, "tags": 3,
        }
        assert "rascad_registry_models 3" in prometheus
        assert "rascad_registry_versions 3" in prometheus


class TestRefResolution:
    def test_ref_solve_is_byte_identical_to_inline(self):
        async def scenario(server, host, port):
            _, spec, _ = await http_request(
                host, port, "GET", "/v1/library/workgroup"
            )
            status_inline, inline = await raw_request(
                host, port, "POST", "/v1/solve", {"spec": spec}
            )
            status_ref, ref = await raw_request(
                host, port, "POST", "/v1/solve",
                {"model_ref": "workgroup@latest"},
            )
            status_bare, bare = await raw_request(
                host, port, "POST", "/v1/solve",
                {"model_ref": "workgroup"},
            )
            return (status_inline, inline), (status_ref, ref), (
                status_bare, bare,
            )

        inline, ref, bare = run_with_server(scenario)
        assert inline[0] == ref[0] == bare[0] == 200
        assert inline[1] == ref[1] == bare[1]

    def test_ref_sweep_200_points_is_byte_identical(self):
        values = [1e5 + 4.5e3 * i for i in range(200)]

        async def scenario(server, host, port):
            _, spec, _ = await http_request(
                host, port, "GET", "/v1/library/workgroup"
            )
            base = {
                "field": "mtbf_hours", "block": BLOCK, "values": values,
            }
            status_inline, inline = await raw_request(
                host, port, "POST", "/v1/sweep",
                {**base, "spec": spec},
            )
            status_ref, ref = await raw_request(
                host, port, "POST", "/v1/sweep",
                {**base, "model_ref": "workgroup@latest"},
            )
            return (status_inline, inline), (status_ref, ref)

        inline, ref = run_with_server(scenario)
        assert inline[0] == ref[0] == 200
        assert inline[1] == ref[1]
        assert len(json.loads(inline[1])["points"]) == 200

    def test_spec_and_ref_together_is_400(self):
        async def scenario(server, host, port):
            return await http_request(
                host, port, "POST", "/v1/solve",
                {
                    "spec": workgroup_spec(),
                    "model_ref": "workgroup",
                },
            )

        status, body, _ = run_with_server(scenario)
        assert status == 400
        assert body["error"]["code"] == "invalid_request"

    def test_malformed_ref_is_400_invalid_ref(self):
        async def scenario(server, host, port):
            return await http_request(
                host, port, "POST", "/v1/solve",
                {"model_ref": "no spaces@prod"},
            )

        status, body, _ = run_with_server(scenario)
        assert status == 400
        assert body["error"]["code"] == "invalid_ref"

    def test_job_submission_accepts_a_ref(self, tmp_path):
        config = ServiceConfig(
            port=0, jobs_db=tmp_path / "jobs.sqlite3"
        )

        async def scenario(server, host, port):
            status, body, _ = await http_request(
                host, port, "POST", "/v1/jobs",
                {
                    "kind": "sweep",
                    "model_ref": "workgroup@latest",
                    "params": {
                        "field": "mtbf_hours", "block": BLOCK,
                        "values": [1e5, 2e5],
                    },
                },
            )
            job_id = body["job"]["id"]
            _, item, _ = await http_request(
                host, port, "GET",
                f"/v1/jobs/{job_id}?include_spec=1",
            )
            _, spec, _ = await http_request(
                host, port, "GET", "/v1/library/workgroup"
            )
            return status, item["job"]["spec"]["spec"], spec

        status, job_spec, library_spec = run_with_server(
            scenario, config
        )
        assert status == 202
        # The job stored the resolved document, not the ref.
        assert job_spec == library_spec


class TestClusterRefIdentity:
    def test_ref_sweep_through_two_workers_matches_inline(self):
        values = [1e5 + 2.5e4 * i for i in range(24)]

        async def go():
            workers = []
            urls = []
            for _ in range(2):
                worker = Server(ServiceConfig(port=0))
                w_host, w_port = await worker.start()
                workers.append(worker)
                urls.append(f"http://{w_host}:{w_port}")
            coordinator = Server(ServiceConfig(
                port=0, cluster=True, cluster_workers=tuple(urls),
                cluster_shard_size=4,
            ))
            host, port = await coordinator.start()
            try:
                _, spec, _ = await http_request(
                    host, port, "GET", "/v1/library/workgroup"
                )
                base = {
                    "field": "mtbf_hours", "block": BLOCK,
                    "values": values,
                }
                status_inline, inline = await raw_request(
                    host, port, "POST", "/v1/sweep",
                    {**base, "spec": spec},
                )
                status_ref, ref = await raw_request(
                    host, port, "POST", "/v1/sweep",
                    {**base, "model_ref": "workgroup@latest"},
                )
                return (status_inline, inline), (status_ref, ref)
            finally:
                await coordinator.shutdown()
                for worker in workers:
                    await worker.shutdown()

        inline, ref = asyncio.run(go())
        assert inline[0] == ref[0] == 200
        assert inline[1] == ref[1]
        merged = json.loads(ref[1])
        assert len(merged["points"]) == 24
        assert merged["result_digest"] == (
            json.loads(inline[1])["result_digest"]
        )


class TestDisabledRegistry:
    def test_bare_app_answers_503_registry_disabled(self):
        requests = [
            _request("GET", "/v1/models"),
            _request("POST", "/v1/models", {"name": "x", "spec": {}}),
            _request("GET", "/v1/models/wg"),
            _request(
                "POST", "/v1/solve", {"model_ref": "workgroup"}
            ),
        ]
        responses, _ = call(requests)
        for status, payload, _ in responses:
            assert status == 503
            assert payload["error"]["code"] == "registry_disabled"

    def test_bare_app_library_falls_back_to_factories(self):
        responses, _ = call([
            _request("GET", "/v1/library"),
            _request("GET", "/v1/library/ghost"),
        ])
        status, payload, _ = responses[0]
        assert status == 200
        assert payload["models"] == ["datacenter", "e10000", "workgroup"]
        status, payload, _ = responses[1]
        assert status == 404
        assert payload["error"]["code"] == "not_found"
