"""The /v1/studies endpoints: submit, dedup, front, candidate detail."""

import asyncio
import json

from repro.engine import Engine
from repro.errors import BracketError
from repro.library import workgroup_model
from repro.registry import ModelRegistry, RegistryStore
from repro.service.app import App
from repro.service.protocol import Request, error_for_exception
from repro.service.queue import SolveQueue
from repro.spec import model_to_spec

FAN = "Workgroup Server/Fan"
PSU = "Workgroup Server/Power Supply"


def _request(method, path, payload=None):
    body = json.dumps(payload).encode() if payload is not None else b""
    return Request(
        method=method, path=path, query={}, headers={}, body=body,
    )


def study_payload(**overrides):
    payload = {
        "base": model_to_spec(workgroup_model()),
        "name": "wg-study",
        "variables": [
            {"path": FAN, "field": "quantity", "values": [2, 3]},
            {"path": PSU, "field": "quantity", "values": [1, 2]},
        ],
        "strategy": "grid",
    }
    payload.update(overrides)
    return payload


def call(requests, registry=None):
    async def go():
        engine = Engine()
        queue = SolveQueue(engine)
        queue.start()
        app = App(engine, queue, registry=registry)
        responses = []
        for request in requests:
            response = await app.handle(request)
            responses.append(
                (response.status, json.loads(response.body))
            )
        await queue.close()
        return responses, engine, app

    return asyncio.run(go())


class TestSubmit:
    def test_new_study_is_201_succeeded(self):
        responses, _, _ = call(
            [_request("POST", "/v1/studies", study_payload())]
        )
        status, payload = responses[0]
        assert status == 201
        assert payload["created"] is True
        record = payload["study"]
        assert record["state"] == "succeeded"
        assert record["result"]["front"]
        assert record["result"]["result_digest"]

    def test_resubmission_returns_the_cached_record(self):
        responses, engine, _ = call([
            _request("POST", "/v1/studies", study_payload()),
            _request("POST", "/v1/studies", study_payload()),
        ])
        (first_status, first), (second_status, second) = responses
        assert (first_status, second_status) == (201, 200)
        assert second["created"] is False
        assert second["study"]["result"] == first["study"]["result"]
        counters = engine.stats.snapshot().counters
        assert counters.get("studies_dedup_hits") == 1
        assert counters.get("studies_completed") == 1

    def test_base_and_model_ref_are_exclusive(self):
        responses, _, _ = call([
            _request("POST", "/v1/studies",
                     study_payload(model_ref="wg@latest")),
            _request("POST", "/v1/studies", {"variables": []}),
        ])
        for status, payload in responses:
            assert status == 400
            assert "base" in payload["error"]["message"]

    def test_model_ref_shares_the_study_id_with_inline(self):
        registry = ModelRegistry(
            RegistryStore(":memory:"), engine=Engine()
        )
        registry.publish(
            model_to_spec(workgroup_model()), "wg", tag="prod"
        )
        ref_payload = study_payload(model_ref="wg@prod")
        del ref_payload["base"]
        responses, _, _ = call(
            [
                _request("POST", "/v1/studies", study_payload()),
                _request("POST", "/v1/studies", ref_payload),
            ],
            registry=registry,
        )
        (_, inline), (status, by_ref) = responses
        assert status == 200  # deduplicated: same content digest
        assert (
            by_ref["study"]["study_id"] == inline["study"]["study_id"]
        )

    def test_invalid_study_is_400(self):
        responses, _, _ = call([
            _request("POST", "/v1/studies", study_payload(variables=[
                {"path": FAN, "field": "warp", "values": [1]},
            ])),
        ])
        status, payload = responses[0]
        assert status == 400
        assert payload["error"]["code"] == "invalid_spec"


class TestInspection:
    def submit_and(self, *extra_requests):
        responses, engine, app = call(
            [_request("POST", "/v1/studies", study_payload())]
            + list(extra_requests)
        )
        study_id = responses[0][1]["study"]["study_id"]
        return study_id, responses, engine

    def test_index_lists_and_counts(self):
        _, responses, _ = self.submit_and(
            _request("GET", "/v1/studies")
        )
        status, payload = responses[1]
        assert status == 200
        assert payload["counts"]["succeeded"] == 1
        assert payload["studies"][0]["front_size"] >= 1

    def test_front_route(self):
        responses, _, _ = call(
            [_request("POST", "/v1/studies", study_payload())]
        )
        study_id = responses[0][1]["study"]["study_id"]
        responses, _, _ = call([
            _request("POST", "/v1/studies", study_payload()),
            _request("GET", f"/v1/studies/{study_id}/front"),
        ])
        status, payload = responses[1]
        assert status == 200
        assert payload["study_id"] == study_id
        assert payload["winner"] is not None
        assert [row["index"] for row in payload["front"]]

    def test_candidate_detail_and_404(self):
        responses, _, _ = call(
            [_request("POST", "/v1/studies", study_payload())]
        )
        study_id = responses[0][1]["study"]["study_id"]
        responses, _, _ = call([
            _request("POST", "/v1/studies", study_payload()),
            _request("GET", f"/v1/studies/{study_id}/candidates/0"),
            _request("GET", f"/v1/studies/{study_id}/candidates/99"),
            _request("GET", f"/v1/studies/{study_id}/candidates/x"),
        ])
        assert responses[1][0] == 200
        assert responses[1][1]["candidate"]["index"] == 0
        assert responses[2][0] == 404
        assert responses[3][0] == 400

    def test_unknown_study_is_404(self):
        responses, _, _ = call([
            _request("GET", "/v1/studies/study-missing"),
        ])
        status, payload = responses[0]
        assert status == 404
        assert payload["error"]["code"] == "not_found"

    def test_metrics_carry_study_gauges(self):
        responses, _, _ = call([
            _request("POST", "/v1/studies", study_payload()),
            _request("GET", "/metrics"),
        ])
        status, payload = responses[1]
        assert status == 200
        assert payload["service"]["studies_succeeded"] == 1
        assert payload["service"]["studies_failed"] == 0


class TestBracketErrorMapping:
    def test_bracket_error_maps_to_400_with_details(self):
        error = BracketError(
            low=1.0, high=2.0, low_value=0.9, high_value=0.95,
            target=0.99,
        )
        response = error_for_exception(error)
        assert response.status == 400
        payload = json.loads(response.body)
        assert payload["error"]["code"] == "target_not_bracketed"
        details = payload["error"]["details"]
        assert details["low"] == 1.0
        assert details["high_value"] == 0.95
        assert details["target"] == 0.99
