"""The telemetry routes: ingest hygiene, backpressure, calibration."""

import asyncio
import json

from repro.engine import Engine
from repro.library import e10000_model
from repro.registry import open_registry
from repro.service.app import App, render_prometheus
from repro.service.queue import SolveQueue
from repro.spec import model_to_spec
from repro.telemetry import TelemetryHub, synthetic_field_events

from .test_app import _request

BOOT_DISK = "E10000 Server/Boot Disk"


def trace_events():
    return [
        event.to_dict()
        for event in synthetic_field_events(
            e10000_model(),
            window_hours=10_950.0,
            seed=3,
            mtbf_shifts={BOOT_DISK: 0.01},
        )
    ]


def call(app_requests, hub=None, registry_path=None, **hub_kwargs):
    """Run requests against a telemetry-enabled App in one loop."""

    async def go():
        engine = Engine()
        queue = SolveQueue(engine)
        queue.start()
        telemetry = (
            hub
            if hub is not None
            else TelemetryHub(stats=engine.stats, **hub_kwargs)
        )
        registry = (
            open_registry(db_path=registry_path, engine=engine)
            if registry_path is not None
            else None
        )
        app = App(
            engine, queue, telemetry=telemetry, registry=registry
        )
        responses = []
        for request in app_requests:
            response = await app.handle(request)
            payload = (
                json.loads(response.body)
                if response.content_type.startswith("application/json")
                else response.body.decode()
            )
            responses.append((response.status, payload, response))
        await queue.close()
        return responses, telemetry

    return asyncio.run(go())


class TestIngest:
    def test_batch_ingest_accepts_and_reports_state(self):
        responses, hub = call(
            [_request("POST", "/v1/events", {"events": trace_events()})]
        )
        status, payload, _ = responses[0]
        assert status == 200
        assert payload["accepted"] == 40
        assert payload["duplicates"] == 0
        assert payload["state_digest"] == hub.estimator.state_digest()

    def test_replayed_batch_is_fully_deduplicated(self):
        events = trace_events()
        responses, _ = call([
            _request("POST", "/v1/events", {"events": events}),
            _request("POST", "/v1/events", {"events": events}),
        ])
        status, payload, _ = responses[1]
        assert status == 200
        assert payload["accepted"] == 0
        assert payload["duplicates"] == len(events)

    def test_malformed_event_is_a_structured_400(self):
        responses, _ = call([
            _request(
                "POST", "/v1/events",
                {"events": [{"part": BOOT_DISK, "kind": "failure"}]},
            )
        ])
        status, payload, _ = responses[0]
        assert status == 400
        assert payload["error"]["code"] == "bad_request"
        assert "events[0]" in payload["error"]["message"]

    def test_out_of_order_batch_is_a_structured_400(self):
        events = trace_events()
        responses, hub = call([
            _request(
                "POST", "/v1/events",
                {"events": [events[5], events[0]]},
            )
        ])
        status, payload, _ = responses[0]
        assert status == 400
        assert payload["error"]["code"] == "out_of_order"
        # The rejection is atomic: nothing was half-applied.
        assert hub.estimator.events_total == 0

    def test_oversized_batch_is_rejected_without_mutation(self):
        events = trace_events()
        responses, hub = call(
            [_request("POST", "/v1/events", {"events": events})],
            max_batch=10,
        )
        status, payload, _ = responses[0]
        assert status == 400
        assert payload["error"]["code"] == "bad_request"
        assert "10-event limit" in payload["error"]["message"]
        assert hub.estimator.events_total == 0

    def test_full_backlog_is_429_with_retry_after(self):
        responses, _ = call(
            [_request("POST", "/v1/events", {"events": trace_events()})],
            max_pending=5,
        )
        status, payload, response = responses[0]
        assert status == 429
        assert payload["error"]["code"] == "backlog_full"
        assert "Retry-After" in response.headers

    def test_non_list_events_field_is_a_400(self):
        responses, _ = call(
            [_request("POST", "/v1/events", {"events": "many"})]
        )
        status, payload, _ = responses[0]
        assert status == 400
        assert payload["error"]["code"] == "invalid_request"


class TestCalibrationRoutes:
    def test_status_reports_fitted_rates(self):
        responses, _ = call([
            _request("POST", "/v1/events", {"events": trace_events()}),
            _request("GET", "/v1/calibration"),
        ])
        status, payload, _ = responses[1]
        assert status == 200
        assert payload["events_total"] == 40
        parts = {row["part"] for row in payload["fitted"]["parts"]}
        assert BOOT_DISK in parts
        assert payload["proposal"] is None

    def test_proposal_lifecycle_404_then_201(self):
        spec = model_to_spec(e10000_model())
        responses, _ = call([
            _request("POST", "/v1/events", {"events": trace_events()}),
            _request("GET", "/v1/calibration/proposal"),
            _request(
                "POST", "/v1/calibration/propose", {"spec": spec}
            ),
            _request("GET", "/v1/calibration/proposal"),
        ])
        assert responses[1][0] == 404
        status, payload, _ = responses[2]
        assert status == 201
        proposal = payload["proposal"]
        assert proposal["drift"]["drifted_parts"] == [BOOT_DISK]
        assert responses[3][0] == 200
        assert (
            responses[3][1]["proposal"]["proposal_digest"]
            == proposal["proposal_digest"]
        )

    def test_propose_without_drift_is_409(self):
        spec = model_to_spec(e10000_model())
        clean = [
            event.to_dict()
            for event in synthetic_field_events(
                e10000_model(), window_hours=10_950.0, seed=3
            )
        ]
        responses, _ = call([
            _request("POST", "/v1/events", {"events": clean}),
            _request(
                "POST", "/v1/calibration/propose", {"spec": spec}
            ),
        ])
        status, payload, _ = responses[1]
        assert status == 409
        assert payload["error"]["code"] == "no_drift"

    def test_publish_lands_with_calibration_provenance(self, tmp_path):
        spec = model_to_spec(e10000_model())
        responses, _ = call(
            [
                _request(
                    "POST", "/v1/events", {"events": trace_events()}
                ),
                _request(
                    "POST", "/v1/calibration/propose", {"spec": spec}
                ),
                _request(
                    "POST", "/v1/calibration/publish",
                    {"name": "e10000"},
                ),
            ],
            registry_path=tmp_path / "registry.sqlite3",
        )
        status, payload, _ = responses[2]
        assert status == 201
        assert payload["created"] is True
        source = payload["version"]["source"]
        assert source["source"] == "calibration"
        assert BOOT_DISK in source["fitted_rates"]

    def test_tagged_publish_is_gated_with_409(self, tmp_path):
        spec = model_to_spec(e10000_model())
        registry_path = tmp_path / "registry.sqlite3"
        # Seed the prod tag with the (much better) datasheet model.
        engine = Engine()
        registry = open_registry(db_path=registry_path, engine=engine)
        registry.publish(spec, "e10000", tag="prod")
        registry.close()
        responses, _ = call(
            [
                _request(
                    "POST", "/v1/events", {"events": trace_events()}
                ),
                _request(
                    "POST", "/v1/calibration/propose", {"spec": spec}
                ),
                _request(
                    "POST", "/v1/calibration/publish",
                    {"name": "e10000", "tag": "prod"},
                ),
            ],
            registry_path=registry_path,
        )
        status, payload, _ = responses[2]
        assert status == 409
        assert payload["error"]["code"] == "regression_detected"

    def test_telemetry_disabled_server_answers_503(self):
        async def go():
            engine = Engine()
            queue = SolveQueue(engine)
            queue.start()
            app = App(engine, queue)
            response = await app.handle(
                _request("POST", "/v1/events", {"events": []})
            )
            await queue.close()
            return response

        response = asyncio.run(go())
        assert response.status == 503
        payload = json.loads(response.body)
        assert payload["error"]["code"] == "telemetry_disabled"


class TestMetrics:
    def test_metrics_document_gains_a_telemetry_section(self):
        responses, hub = call([
            _request("POST", "/v1/events", {"events": trace_events()}),
            _request("GET", "/metrics"),
        ])
        status, payload, _ = responses[1]
        assert status == 200
        section = payload["telemetry"]
        assert section == hub.counts()
        assert section["events_total"] == 40
        assert section["batches"] == 1

    def test_prometheus_rendering_exposes_telemetry_gauges(self):
        responses, _ = call([
            _request("POST", "/v1/events", {"events": trace_events()}),
            _request(
                "GET", "/metrics", query={"format": "prometheus"}
            ),
        ])
        status, text, _ = responses[1]
        assert status == 200
        assert "rascad_telemetry_events_total" in text
        assert "rascad_telemetry_parts" in text
