"""HTTP parsing limits, envelopes, and stable error codes."""

import asyncio
import json

import pytest

from repro.errors import (
    EngineError,
    SolverError,
    SpecError,
    StoreBusyError,
)
from repro.service.protocol import (
    MAX_HEADER_BYTES,
    ProtocolError,
    Request,
    error_for_exception,
    error_response,
    json_response,
    read_request,
)


def _feed(data: bytes) -> asyncio.StreamReader:
    reader = asyncio.StreamReader(limit=MAX_HEADER_BYTES)
    reader.feed_data(data)
    reader.feed_eof()
    return reader


def _read(data: bytes, **kwargs):
    async def go():
        return await read_request(_feed(data), **kwargs)

    return asyncio.run(go())


class TestParsing:
    def test_happy_path_post(self):
        body = b'{"spec": 1}'
        request = _read(
            b"POST /v1/solve?format=json HTTP/1.1\r\n"
            b"Host: example\r\n"
            b"Content-Length: " + str(len(body)).encode() + b"\r\n"
            b"\r\n" + body
        )
        assert request.method == "POST"
        assert request.path == "/v1/solve"
        assert request.query == {"format": "json"}
        assert request.headers["host"] == "example"
        assert request.body == body
        assert request.json() == {"spec": 1}

    def test_get_without_body(self):
        request = _read(b"GET /healthz HTTP/1.1\r\n\r\n")
        assert request.method == "GET"
        assert request.body == b""

    def test_clean_eof_returns_none(self):
        assert _read(b"") is None

    def test_malformed_request_line(self):
        with pytest.raises(ProtocolError) as err:
            _read(b"NONSENSE\r\n\r\n")
        assert err.value.status == 400

    def test_unsupported_version(self):
        with pytest.raises(ProtocolError) as err:
            _read(b"GET / HTTP/2.0\r\n\r\n")
        assert err.value.status == 400

    def test_header_block_over_limit_is_431(self):
        huge = b"GET / HTTP/1.1\r\nX-Pad: " + b"x" * MAX_HEADER_BYTES
        with pytest.raises(ProtocolError) as err:
            _read(huge + b"\r\n\r\n")
        assert err.value.status == 431
        assert err.value.code == "headers_too_large"

    def test_body_over_limit_is_413(self):
        with pytest.raises(ProtocolError) as err:
            _read(
                b"POST / HTTP/1.1\r\nContent-Length: 100\r\n\r\n",
                max_body_bytes=10,
            )
        assert err.value.status == 413
        assert err.value.code == "payload_too_large"

    def test_bad_content_length_is_400(self):
        with pytest.raises(ProtocolError) as err:
            _read(b"POST / HTTP/1.1\r\nContent-Length: ten\r\n\r\n")
        assert err.value.status == 400

    def test_chunked_encoding_refused(self):
        with pytest.raises(ProtocolError) as err:
            _read(
                b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"
            )
        assert err.value.status == 501

    def test_truncated_body_is_400(self):
        with pytest.raises(ProtocolError) as err:
            _read(b"POST / HTTP/1.1\r\nContent-Length: 50\r\n\r\nshort")
        assert err.value.status == 400

    def test_connection_close_header(self):
        request = _read(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n")
        assert not request.keep_alive
        assert _read(b"GET / HTTP/1.1\r\n\r\n").keep_alive

    def test_http10_defaults_to_close(self):
        request = _read(b"GET / HTTP/1.0\r\n\r\n")
        assert request.version == "HTTP/1.0"
        assert not request.keep_alive
        kept = _read(
            b"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n"
        )
        assert kept.keep_alive


class TestEnvelopes:
    def test_json_response_round_trips(self):
        response = json_response({"a": 1})
        wire = response.encode()
        assert wire.startswith(b"HTTP/1.1 200 OK\r\n")
        assert b"Content-Type: application/json" in wire
        head, _, body = wire.partition(b"\r\n\r\n")
        assert json.loads(body) == {"a": 1}
        assert f"Content-Length: {len(body)}".encode() in head

    def test_error_envelope_has_stable_code(self):
        response = error_response(429, "queue_full", "busy", retry_after=0.5)
        head, _, body = response.encode().partition(b"\r\n\r\n")
        assert b"429" in head.splitlines()[0]
        assert b"Retry-After: 1" in head
        payload = json.loads(body)
        assert payload["error"]["code"] == "queue_full"

    def test_bad_json_body_maps_to_400(self):
        request = Request("POST", "/", {}, {}, b"{nope")
        with pytest.raises(ProtocolError) as err:
            request.json()
        assert err.value.status == 400
        assert err.value.code == "invalid_json"

    def test_non_object_json_body_rejected(self):
        request = Request("POST", "/", {}, {}, b"[1, 2]")
        with pytest.raises(ProtocolError) as err:
            request.json()
        assert err.value.code == "invalid_request"


class TestHostileBodies:
    """Hostile-but-parseable-path bodies must be 400s, never 500s."""

    def test_oversized_body_on_an_embedded_request_is_bad_request(self):
        request = Request(
            "POST", "/", {}, {}, b"x" * 64, max_body_bytes=32
        )
        with pytest.raises(ProtocolError) as err:
            request.json()
        assert err.value.status == 400
        assert err.value.code == "bad_request"
        assert "64 bytes" in str(err.value)

    def test_configured_cap_is_honored_over_the_default(self):
        body = json.dumps({"a": "b" * 128}).encode()
        request = Request(
            "POST", "/", {}, {}, body, max_body_bytes=len(body)
        )
        assert request.json()["a"] == "b" * 128

    def test_deeply_nested_body_is_bad_request(self):
        request = Request("POST", "/", {}, {}, b"[" * 100_000)
        with pytest.raises(ProtocolError) as err:
            request.json()
        assert err.value.status == 400
        assert err.value.code == "bad_request"
        assert "nested" in str(err.value)

    def test_plain_malformed_json_keeps_its_own_code(self):
        request = Request("POST", "/", {}, {}, b"{nope", max_body_bytes=8)
        with pytest.raises(ProtocolError) as err:
            request.json()
        assert err.value.code == "invalid_json"

    def test_read_request_stamps_the_body_budget(self):
        body = b'{"a": 1}'
        request = _read(
            b"POST / HTTP/1.1\r\nHost: t\r\n"
            b"Content-Length: " + str(len(body)).encode() + b"\r\n\r\n"
            + body,
            max_body_bytes=512,
        )
        assert request.max_body_bytes == 512
        assert request.json() == {"a": 1}


class TestExceptionMapping:
    @pytest.mark.parametrize(
        "error, status, code",
        [
            (SpecError("bad"), 400, "invalid_spec"),
            (SolverError("sing"), 500, "solver_failure"),
            (EngineError("pool"), 500, "engine_failure"),
            (ValueError("odd"), 500, "internal_error"),
        ],
    )
    def test_library_errors_have_stable_codes(self, error, status, code):
        response = error_for_exception(error)
        assert response.status == status
        payload = json.loads(response.body)
        assert payload["error"]["code"] == code

    def test_busy_store_is_503_with_retry_after(self):
        response = error_for_exception(
            StoreBusyError("jobs db is locked", retry_after=0.3)
        )
        assert response.status == 503
        payload = json.loads(response.body)
        assert payload["error"]["code"] == "store_busy"
        assert response.headers["Retry-After"] == "1"
