"""Route handlers driven without sockets: one Request in, one Response out."""

import asyncio
import json
import time

from repro.core import translate
from repro.engine import Engine
from repro.library import e10000_model, workgroup_model
from repro.service.app import App, render_prometheus
from repro.service.protocol import Request
from repro.service.queue import SolveQueue
from repro.spec import model_to_spec


def _request(method, path, payload=None, query=None, headers=None):
    body = json.dumps(payload).encode() if payload is not None else b""
    return Request(
        method=method,
        path=path,
        query=dict(query or {}),
        headers=dict(headers or {}),
        body=body,
    )


def call(app_requests, engine=None, **queue_kwargs):
    """Run requests against a fresh App inside one event loop."""

    async def go():
        eng = engine if engine is not None else Engine()
        queue = SolveQueue(eng, **queue_kwargs)
        queue.start()
        app = App(eng, queue)
        responses = []
        for request in app_requests:
            response = await app.handle(request)
            payload = (
                json.loads(response.body)
                if response.content_type.startswith("application/json")
                else response.body.decode()
            )
            responses.append((response.status, payload, response))
        await queue.close()
        return responses, eng

    return asyncio.run(go())


class TestSolve:
    def test_solve_matches_the_cli_path_bit_for_bit(self):
        spec = model_to_spec(e10000_model())
        responses, _ = call([_request("POST", "/v1/solve", {"spec": spec})])
        status, payload, _ = responses[0]
        assert status == 200
        expected = translate(e10000_model()).availability
        assert payload["availability"] == expected
        assert payload["model"] == "E10000 Server"
        assert payload["yearly_downtime_minutes"] > 0

    def test_solve_without_spec_is_400(self):
        responses, _ = call([_request("POST", "/v1/solve", {})])
        status, payload, _ = responses[0]
        assert status == 400
        assert payload["error"]["code"] == "invalid_request"

    def test_malformed_spec_is_400_with_spec_code(self):
        responses, _ = call([
            _request("POST", "/v1/solve", {"spec": {"diagram": {}}})
        ])
        status, payload, _ = responses[0]
        assert status == 400
        assert payload["error"]["code"] == "invalid_spec"

    def test_unknown_method_is_400(self):
        spec = model_to_spec(workgroup_model())
        responses, _ = call([
            _request(
                "POST", "/v1/solve", {"spec": spec, "method": "magic"}
            )
        ])
        status, payload, _ = responses[0]
        assert status == 400

    def test_bad_json_body_is_400(self):
        request = Request("POST", "/v1/solve", {}, {}, b"{nope")
        responses, _ = call([request])
        status, payload, _ = responses[0]
        assert status == 400
        assert payload["error"]["code"] == "invalid_json"

    def test_deadline_exceeded_is_504_gateway_timeout(self):
        engine = Engine()
        inner_solve = engine.solve

        def slow_solve(model, method="direct"):
            time.sleep(0.2)
            return inner_solve(model, method)

        engine.solve = slow_solve
        spec = model_to_spec(workgroup_model())
        responses, _ = call(
            [_request(
                "POST", "/v1/solve",
                {"spec": spec, "timeout_seconds": 0.01},
            )],
            engine=engine,
        )
        status, payload, _ = responses[0]
        assert status == 504
        assert payload["error"]["code"] == "deadline_exceeded"

    def test_draining_service_is_503_service_unavailable(self):
        async def go():
            engine = Engine()
            queue = SolveQueue(engine)
            queue.start()
            await queue.close()
            app = App(engine, queue)
            spec = model_to_spec(workgroup_model())
            return await app.handle(
                _request("POST", "/v1/solve", {"spec": spec})
            )

        response = asyncio.run(go())
        assert response.status == 503
        payload = json.loads(response.body)
        assert payload["error"]["code"] == "service_unavailable"


class TestSweepAndValidate:
    def test_sweep_block_field(self):
        spec = model_to_spec(workgroup_model())
        block = f"{spec['name']}/{spec['diagram']['blocks'][0]['name']}"
        responses, _ = call([
            _request("POST", "/v1/sweep", {
                "spec": spec,
                "block": block,
                "field": "mtbf_hours",
                "values": [50_000, 100_000],
            })
        ])
        status, payload, _ = responses[0]
        assert status == 200
        assert len(payload["points"]) == 2
        first, second = payload["points"]
        assert second["availability"] > first["availability"]

    def test_sweep_rejects_non_numeric_values(self):
        spec = model_to_spec(workgroup_model())
        responses, _ = call([
            _request("POST", "/v1/sweep", {
                "spec": spec,
                "field": "mtbf_hours",
                "values": ["many"],
            })
        ])
        assert responses[0][0] == 400

    def test_validate_agrees_with_analytic(self):
        spec = model_to_spec(workgroup_model())
        responses, _ = call([
            _request("POST", "/v1/validate", {
                "spec": spec, "replications": 8, "horizon": 2_000.0,
                "seed": 7,
            })
        ])
        status, payload, _ = responses[0]
        assert status == 200
        assert 0.9 < payload["analytic_availability"] <= 1.0
        assert payload["replications"] == 8
        assert isinstance(payload["agreement"], bool)


class TestLibraryAndRouting:
    def test_library_index_lists_models(self):
        responses, _ = call([_request("GET", "/v1/library")])
        status, payload, _ = responses[0]
        assert status == 200
        assert payload["models"] == ["datacenter", "e10000", "workgroup"]

    def test_library_spec_round_trips_through_solve(self):
        responses, _ = call([_request("GET", "/v1/library/workgroup")])
        status, spec, _ = responses[0]
        assert status == 200
        responses, _ = call([_request("POST", "/v1/solve", {"spec": spec})])
        assert responses[0][0] == 200

    def test_unknown_library_model_is_404(self):
        responses, _ = call([_request("GET", "/v1/library/vax")])
        assert responses[0][0] == 404

    def test_unknown_route_is_404(self):
        responses, _ = call([_request("GET", "/v2/solve")])
        status, payload, _ = responses[0]
        assert status == 404
        assert payload["error"]["code"] == "not_found"

    def test_wrong_method_is_405(self):
        responses, _ = call([_request("GET", "/v1/solve")])
        assert responses[0][0] == 405


class TestObservability:
    def test_healthz_reports_ok(self):
        responses, _ = call([_request("GET", "/healthz")])
        status, payload, _ = responses[0]
        assert status == 200
        assert payload["status"] == "ok"
        assert payload["uptime_seconds"] >= 0

    def test_metrics_reflect_served_requests(self):
        spec = model_to_spec(workgroup_model())
        responses, engine = call([
            _request("POST", "/v1/solve", {"spec": spec}),
            _request("GET", "/metrics"),
        ])
        status, payload, _ = responses[1]
        assert status == 200
        assert payload["engine"]["system_solves"] == 1
        assert payload["engine"]["route_counts"]["POST /v1/solve 200"] == 1
        latency = payload["engine"]["latency"]["POST /v1/solve"]
        assert latency["count"] == 1
        assert latency["sum"] >= 0
        assert latency["buckets"]["+Inf"] == 1
        assert payload["service"]["max_queue"] == 64
        assert payload["derived"]["cache_hit_rate"] >= 0

    def test_metrics_report_store_health(self):
        responses, _ = call([_request("GET", "/metrics")])
        status, payload, _ = responses[0]
        assert status == 200
        storage = payload["storage"]
        # The studies store always exists (in-memory when no
        # --cache-dir); every entry is a SqliteStore.health() payload.
        studies = storage["studies"]
        assert studies["schema"] == "studies"
        assert studies["mode"] == "memory"
        assert studies["user_version"] == 1
        assert studies["size_bytes"] > 0
        assert studies["transactions"] >= 0
        assert studies["busy_retries"] == 0

    def test_prometheus_exposes_store_series(self):
        responses, _ = call([
            _request(
                "GET", "/metrics", query={"format": "prometheus"}
            ),
        ])
        status, text, _ = responses[0]
        assert status == 200
        assert "# TYPE rascad_store_size_bytes gauge" in text
        assert 'rascad_store_user_version{store="studies"} 1' in text
        assert "# TYPE rascad_store_transactions_total counter" in text
        assert 'rascad_store_busy_retries_total{store="studies"} 0' in text

    def test_metrics_prometheus_format(self):
        spec = model_to_spec(workgroup_model())
        responses, _ = call([
            _request("POST", "/v1/solve", {"spec": spec}),
            _request(
                "GET", "/metrics", query={"format": "prometheus"}
            ),
        ])
        status, text, response = responses[1]
        assert status == 200
        assert response.content_type.startswith("text/plain")
        assert "rascad_engine_system_solves_total 1" in text
        assert "# TYPE rascad_engine_system_solves_total counter" in text
        assert (
            'rascad_requests_total{route="POST /v1/solve",status="200"} 1'
            in text
        )
        # Latency is a native histogram family, not quantile gauges.
        assert "# TYPE rascad_latency_seconds histogram" in text
        assert (
            'rascad_latency_seconds_bucket{route="POST /v1/solve",le="+Inf"} 1'
            in text
        )
        assert 'rascad_latency_seconds_count{route="POST /v1/solve"} 1' in text
        assert "quantile=" not in text

    def test_render_prometheus_skips_non_numeric(self):
        text = render_prometheus({
            "engine": {"system_solves": 2, "notes": "text"},
            "service": {"uptime_seconds": 1.5},
        })
        assert "rascad_engine_system_solves_total 2" in text
        assert "notes" not in text
        assert "rascad_service_uptime_seconds 1.5" in text
