"""Cluster endpoints and coordinator sweep fan-out over real sockets."""

import asyncio

from repro.service import Server, ServiceConfig

from .test_server import http_request, run_with_server

VALUES = [1e5 + 5e4 * i for i in range(12)]
BLOCK = "Workgroup Server/Operating System"


def run_with_fleet(scenario, coordinator_overrides=None):
    """One worker server plus one coordinator server, same loop."""

    async def go():
        worker = Server(ServiceConfig(port=0))
        w_host, w_port = await worker.start()
        overrides = dict(
            cluster=True,
            cluster_workers=(f"http://{w_host}:{w_port}",),
            cluster_shard_size=4,
            **(coordinator_overrides or {}),
        )
        coordinator = Server(ServiceConfig(port=0, **overrides))
        c_host, c_port = await coordinator.start()
        try:
            return await scenario(
                (worker, w_host, w_port),
                (coordinator, c_host, c_port),
            )
        finally:
            await coordinator.shutdown()
            await worker.shutdown()

    return asyncio.run(go())


async def sweep_payload(host, port, **extra):
    status, spec, _ = await http_request(
        host, port, "GET", "/v1/library/workgroup"
    )
    assert status == 200
    payload = {
        "spec": spec, "field": "mtbf_hours", "block": BLOCK,
        "values": VALUES,
    }
    payload.update(extra)
    return payload


class TestDisabled:
    def test_cluster_endpoints_answer_503(self):
        async def scenario(server, host, port):
            results = {}
            for method, path in (
                ("GET", "/v1/cluster/status"),
                ("GET", "/v1/cluster/workers"),
                ("POST", "/v1/cluster/workers"),
            ):
                payload = {"url": "http://x:1"} if method == "POST" else None
                status, body, _ = await http_request(
                    host, port, method, path, payload
                )
                results[(method, path)] = (status, body["error"]["code"])
            return results

        results = run_with_server(scenario)
        assert set(results.values()) == {(503, "cluster_disabled")}

    def test_plain_sweep_still_caps_at_256_values(self):
        async def scenario(server, host, port):
            payload = await sweep_payload(host, port)
            payload["values"] = [1e5 + i for i in range(300)]
            return await http_request(
                host, port, "POST", "/v1/sweep", payload
            )

        status, body, _ = run_with_server(scenario)
        assert status == 400
        assert body["error"]["code"] == "invalid_request"


class TestMembershipApi:
    def test_register_lists_and_heartbeats(self):
        async def scenario(server, host, port):
            status, body, _ = await http_request(
                host, port, "POST", "/v1/cluster/workers",
                {"url": "http://node-1:8100"},
            )
            assert status == 200
            assert body["worker"]["id"] == "node-1:8100"
            assert body["heartbeat_interval"] > 0
            status, listing, _ = await http_request(
                host, port, "GET", "/v1/cluster/workers"
            )
            assert status == 200
            status, cluster_status, _ = await http_request(
                host, port, "GET", "/v1/cluster/status"
            )
            assert status == 200
            return listing, cluster_status

        listing, status_body = run_with_server(
            scenario, ServiceConfig(port=0, cluster=True)
        )
        assert [w["id"] for w in listing["workers"]] == ["node-1:8100"]
        assert status_body["totals"]["jobs_completed"] == 0
        assert status_body["config"]["shard_size"] == 16

    def test_malformed_worker_url_is_400(self):
        async def scenario(server, host, port):
            return await http_request(
                host, port, "POST", "/v1/cluster/workers",
                {"url": "http://"},
            )

        status, body, _ = run_with_server(
            scenario, ServiceConfig(port=0, cluster=True)
        )
        assert status == 400
        assert body["error"]["code"] == "invalid_request"

    def test_sweep_with_no_live_workers_is_503(self):
        async def scenario(server, host, port):
            payload = await sweep_payload(host, port)
            return await http_request(
                host, port, "POST", "/v1/sweep", payload
            )

        status, body, _ = run_with_server(
            scenario, ServiceConfig(port=0, cluster=True)
        )
        assert status == 503
        assert body["error"]["code"] == "no_workers"


class TestFanOut:
    def test_fanned_out_sweep_is_bit_identical_to_the_worker(self):
        async def scenario(worker, coordinator):
            _, w_host, w_port = worker
            _, c_host, c_port = coordinator
            payload = await sweep_payload(w_host, w_port)
            status, direct, _ = await http_request(
                w_host, w_port, "POST", "/v1/sweep", payload
            )
            assert status == 200
            status, fanned, _ = await http_request(
                c_host, c_port, "POST", "/v1/sweep", payload
            )
            assert status == 200
            status, metrics, _ = await http_request(
                c_host, c_port, "GET", "/metrics"
            )
            assert status == 200
            return direct, fanned, metrics

        direct, fanned, metrics = run_with_fleet(scenario)
        assert fanned["result_digest"]
        assert fanned["points"] == direct["points"]  # bit-identical
        assert metrics["cluster"]["totals"]["jobs_completed"] == 1
        assert metrics["cluster"]["totals"]["shards_completed"] == 3
        assert metrics["engine"]["counters"]["cluster_sweeps"] == 1
        workers = metrics["cluster"]["workers"]
        assert sum(w["shards_done"] for w in workers) == 3

    def test_cluster_false_opts_out_of_fan_out(self):
        async def scenario(worker, coordinator):
            _, w_host, w_port = worker
            _, c_host, c_port = coordinator
            payload = await sweep_payload(w_host, w_port, cluster=False)
            status, body, _ = await http_request(
                c_host, c_port, "POST", "/v1/sweep", payload
            )
            assert status == 200
            status, status_body, _ = await http_request(
                c_host, c_port, "GET", "/v1/cluster/status"
            )
            return body, status_body

        body, status_body = run_with_fleet(scenario)
        # Solved locally: jobs-runner shape without a merged digest.
        assert "result_digest" not in body
        assert len(body["points"]) == len(VALUES)
        assert status_body["totals"]["jobs_completed"] == 0

    def test_large_sweeps_are_allowed_only_with_fan_out(self):
        values = [1e5 + 1e3 * i for i in range(300)]

        async def scenario(worker, coordinator):
            _, w_host, w_port = worker
            _, c_host, c_port = coordinator
            payload = await sweep_payload(w_host, w_port)
            payload["values"] = values
            status, fanned, _ = await http_request(
                c_host, c_port, "POST", "/v1/sweep", payload
            )
            assert status == 200
            payload["cluster"] = False
            refused, body, _ = await http_request(
                c_host, c_port, "POST", "/v1/sweep", payload
            )
            return fanned, refused, body

        fanned, refused, body = run_with_fleet(scenario)
        assert len(fanned["points"]) == 300
        assert [p["value"] for p in fanned["points"]] == values
        assert refused == 400
        assert body["error"]["code"] == "invalid_request"
