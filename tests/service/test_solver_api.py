"""Solver options through the HTTP surface: requests, jobs, metrics."""

import asyncio
import json

from repro.engine import Engine
from repro.jobs import JobStore
from repro.library import e10000_model, workgroup_model
from repro.num import SolverOptions
from repro.service.app import App, render_prometheus
from repro.service.protocol import Request
from repro.service.queue import SolveQueue
from repro.spec import model_to_spec


def _request(method, path, payload=None, query=None):
    body = json.dumps(payload).encode() if payload is not None else b""
    return Request(
        method=method, path=path, query=dict(query or {}),
        headers={}, body=body,
    )


def call(requests, default_solver=None, jobs=None):
    """Run requests against a fresh App inside one event loop."""

    async def go():
        engine = Engine()
        queue = SolveQueue(engine)
        queue.start()
        app = App(
            engine, queue, jobs=jobs, default_solver=default_solver
        )
        responses = []
        for request in requests:
            response = await app.handle(request)
            payload = (
                json.loads(response.body)
                if response.content_type.startswith("application/json")
                else response.body.decode()
            )
            responses.append((response.status, payload))
        await queue.close()
        return responses, engine

    return asyncio.run(go())


class TestSolveAcceptsSolverObject:
    def test_solver_object_selects_the_backend(self):
        spec = model_to_spec(workgroup_model())
        responses, engine = call([
            _request(
                "POST", "/v1/solve",
                {"spec": spec, "solver": {"steady_method": "gth"}},
            ),
        ])
        status, payload = responses[0]
        assert status == 200
        counters = engine.stats.snapshot().counters
        assert counters.get("solves_by_backend.gth", 0) >= 1

    def test_solver_object_agrees_with_legacy_method_string(self):
        spec = model_to_spec(workgroup_model())
        responses, _ = call([
            _request("POST", "/v1/solve", {"spec": spec, "method": "gth"}),
            _request(
                "POST", "/v1/solve",
                {"spec": spec, "solver": {"steady_method": "gth"}},
            ),
        ])
        (s1, p1), (s2, p2) = responses
        assert s1 == s2 == 200
        assert p1["availability"] == p2["availability"]

    def test_unknown_backend_in_solver_object_is_400(self):
        spec = model_to_spec(workgroup_model())
        responses, _ = call([
            _request(
                "POST", "/v1/solve",
                {"spec": spec, "solver": {"steady_method": "magic"}},
            ),
        ])
        status, payload = responses[0]
        assert status == 400
        assert payload["error"]["code"] == "invalid_request"
        assert "magic" in payload["error"]["message"]

    def test_unknown_solver_option_key_is_400(self):
        spec = model_to_spec(workgroup_model())
        responses, _ = call([
            _request(
                "POST", "/v1/solve",
                {"spec": spec, "solver": {"steady": "gth"}},
            ),
        ])
        status, payload = responses[0]
        assert status == 400
        assert payload["error"]["code"] == "invalid_request"

    def test_non_object_solver_field_is_400(self):
        spec = model_to_spec(workgroup_model())
        responses, _ = call([
            _request(
                "POST", "/v1/solve", {"spec": spec, "solver": "gth"}
            ),
        ])
        status, payload = responses[0]
        assert status == 400
        assert payload["error"]["code"] == "invalid_request"

    def test_sweep_accepts_solver_object(self):
        spec = model_to_spec(workgroup_model())
        responses, engine = call([
            _request(
                "POST", "/v1/sweep",
                {
                    "spec": spec,
                    "block": "Workgroup Server/Operating System",
                    "field": "mtbf_hours",
                    "values": [1e5, 2e5],
                    "solver": {"steady_method": "power"},
                },
            ),
        ])
        status, _ = responses[0]
        assert status == 200
        counters = engine.stats.snapshot().counters
        assert counters.get("solves_by_backend.power", 0) >= 1

    def test_server_default_solver_applies_without_request_fields(self):
        spec = model_to_spec(workgroup_model())
        responses, engine = call(
            [_request("POST", "/v1/solve", {"spec": spec})],
            default_solver=SolverOptions(steady_method="gth"),
        )
        status, _ = responses[0]
        assert status == 200
        counters = engine.stats.snapshot().counters
        assert counters.get("solves_by_backend.gth", 0) >= 1


class TestJobsValidateSolver:
    def test_bad_params_solver_is_rejected_at_submission(self, tmp_path):
        store = JobStore(tmp_path / "jobs.sqlite3")
        responses, _ = call(
            [
                _request(
                    "POST", "/v1/jobs",
                    {
                        "kind": "sweep",
                        "spec": model_to_spec(e10000_model()),
                        "params": {
                            "field": "mtbf_hours",
                            "block": "E10000 Server/Operating System",
                            "values": [1e5, 2e5],
                            "solver": {"steady_method": "magic"},
                        },
                    },
                ),
            ],
            jobs=store,
        )
        status, payload = responses[0]
        assert status == 400
        assert payload["error"]["code"] == "invalid_request"
        assert "solver" in payload["error"]["message"]

    def test_good_params_solver_is_accepted(self, tmp_path):
        store = JobStore(tmp_path / "jobs.sqlite3")
        responses, _ = call(
            [
                _request(
                    "POST", "/v1/jobs",
                    {
                        "kind": "sweep",
                        "spec": model_to_spec(e10000_model()),
                        "params": {
                            "field": "mtbf_hours",
                            "block": "E10000 Server/Operating System",
                            "values": [1e5, 2e5],
                            "solver": {"steady_method": "gth"},
                        },
                    },
                ),
            ],
            jobs=store,
        )
        status, payload = responses[0]
        assert status == 202
        assert payload["job"]["state"] == "queued"


class TestSolverMetrics:
    def _metrics_after_solves(self, fmt=None):
        spec = model_to_spec(workgroup_model())
        query = {"format": fmt} if fmt else None
        responses, _ = call([
            _request("POST", "/v1/solve", {"spec": spec}),
            _request(
                "POST", "/v1/solve",
                {"spec": spec, "solver": {"steady_method": "gth"}},
            ),
            _request("GET", "/metrics", query=query),
        ])
        return responses[-1]

    def test_json_metrics_expose_solver_section(self):
        status, payload = self._metrics_after_solves()
        assert status == 200
        solvers = payload["solvers"]
        assert solvers["solves_by_backend"].get("dense-direct", 0) >= 1
        assert solvers["solves_by_backend"].get("gth", 0) >= 1
        assert solvers["largest_n_states"] >= 2

    def test_prometheus_metrics_label_backends(self):
        status, text = self._metrics_after_solves(fmt="prometheus")
        assert status == 200
        assert (
            'rascad_solves_by_backend_total{backend="dense-direct"}' in text
        )
        assert 'rascad_solves_by_backend_total{backend="gth"}' in text
        assert "rascad_largest_n_states" in text

    def test_render_prometheus_groups_backend_counters(self):
        payload = {
            "engine": {
                "counters": {
                    "solves_by_backend.dense-direct": 3,
                    "solves_by_backend.sparse-direct": 1,
                    "service_requests": 4,
                },
                "gauges": {"largest_n_states": 128.0},
            }
        }
        text = render_prometheus(payload)
        assert (
            'rascad_solves_by_backend_total{backend="dense-direct"} 3'
            in text
        )
        assert (
            'rascad_solves_by_backend_total{backend="sparse-direct"} 1'
            in text
        )
        assert "rascad_largest_n_states 128" in text
        assert "rascad_service_requests_total 4" in text
