"""Admission queue semantics: dedup, backpressure, deadlines, drain."""

import asyncio
import threading
import time

import pytest

from repro.engine.stats import StatsCollector
from repro.errors import EngineError
from repro.library import workgroup_model
from repro.service.queue import (
    DeadlineExceededError,
    QueueFullError,
    ServiceClosedError,
    SolveQueue,
)
from repro.spec import model_to_spec, parse_spec


def _variant(index: int):
    """A structurally distinct model per index (distinct digests)."""
    spec = model_to_spec(workgroup_model())
    spec["diagram"]["blocks"][0]["mtbf_hours"] = 90_000.0 + index
    return parse_spec(spec)


class SlowEngine:
    """Engine stand-in with a controllable, counted solve."""

    def __init__(self, delay=0.05, jobs=1):
        self.stats = StatsCollector()
        self.jobs = jobs
        self.delay = delay
        self.solves = 0
        self.release = threading.Event()
        self.release.set()
        self._lock = threading.Lock()

    def solve(self, model, method="direct"):
        self.release.wait(timeout=5.0)
        time.sleep(self.delay)
        with self._lock:
            self.solves += 1
        return ("solved", model.name, method)

    def solve_many(self, models, method="direct"):
        return [self.solve(model, method) for model in models]


def run(coro):
    return asyncio.run(coro)


class TestDedup:
    def test_concurrent_identical_requests_share_one_solve(self):
        async def go():
            engine = SlowEngine(delay=0.05)
            queue = SolveQueue(engine, batch_window=0.001)
            queue.start()
            model = workgroup_model()
            results = await asyncio.gather(
                *(queue.solve(model) for _ in range(16))
            )
            await queue.close()
            return engine, results

        engine, results = run(go())
        assert engine.solves == 1
        assert all(result == results[0] for result in results)
        snapshot = engine.stats.snapshot()
        assert snapshot.counters["service_dedup_hits"] == 15
        assert snapshot.counters["service_admitted"] == 1

    def test_distinct_requests_all_solve(self):
        async def go():
            engine = SlowEngine(delay=0.0)
            queue = SolveQueue(engine, batch_window=0.001)
            queue.start()
            results = await asyncio.gather(
                *(queue.solve(_variant(i)) for i in range(4))
            )
            await queue.close()
            return engine, results

        engine, results = run(go())
        assert engine.solves == 4
        assert len({r[1] for r in results}) == 1  # same name, 4 solves


class TestBackpressure:
    def test_full_queue_raises_queue_full(self):
        async def go():
            engine = SlowEngine(delay=0.2)
            engine.release.clear()  # hold every solve in the engine
            queue = SolveQueue(engine, max_queue=2, batch_window=0.001)
            queue.start()
            first = asyncio.ensure_future(queue.solve(_variant(0)))
            second = asyncio.ensure_future(queue.solve(_variant(1)))
            await asyncio.sleep(0.05)  # let both get admitted
            with pytest.raises(QueueFullError) as err:
                await queue.solve(_variant(2))
            assert err.value.retry_after > 0
            engine.release.set()
            await asyncio.gather(first, second)
            await queue.close()
            return engine

        engine = run(go())
        snapshot = engine.stats.snapshot()
        assert snapshot.counters["service_rejections"] == 1
        assert snapshot.counters["service_admitted"] == 2

    def test_queue_depth_gauge_returns_to_zero(self):
        async def go():
            engine = SlowEngine(delay=0.0)
            queue = SolveQueue(engine, batch_window=0.001)
            queue.start()
            await queue.solve(_variant(0))
            await queue.close()
            return engine, queue

        engine, queue = run(go())
        assert queue.depth == 0
        assert engine.stats.snapshot().gauges["queue_depth"] == 0.0


class TestDeadlines:
    def test_expired_deadline_raises_504_error(self):
        async def go():
            engine = SlowEngine(delay=0.2)
            queue = SolveQueue(engine, batch_window=0.001)
            queue.start()
            with pytest.raises(DeadlineExceededError):
                await queue.solve(
                    _variant(0), deadline=time.monotonic() + 0.01
                )
            await queue.close()
            return engine

        engine = run(go())
        snapshot = engine.stats.snapshot()
        assert snapshot.counters["service_deadline_misses"] >= 1

    def test_one_waiter_timeout_does_not_cancel_the_shared_solve(self):
        async def go():
            engine = SlowEngine(delay=0.1)
            queue = SolveQueue(engine, batch_window=0.001)
            queue.start()
            model = workgroup_model()
            patient = asyncio.ensure_future(queue.solve(model))
            await asyncio.sleep(0.01)
            with pytest.raises(DeadlineExceededError):
                await queue.solve(
                    model, deadline=time.monotonic() + 0.02
                )
            result = await patient
            await queue.close()
            return engine, result

        engine, result = run(go())
        assert result[0] == "solved"
        assert engine.solves == 1


class TestLifecycle:
    def test_closed_queue_rejects_new_work(self):
        async def go():
            engine = SlowEngine(delay=0.0)
            queue = SolveQueue(engine, batch_window=0.001)
            queue.start()
            await queue.close()
            with pytest.raises(ServiceClosedError):
                await queue.solve(_variant(0))

        run(go())

    def test_close_drains_admitted_work(self):
        async def go():
            engine = SlowEngine(delay=0.05)
            queue = SolveQueue(engine, batch_window=0.001)
            queue.start()
            pending = [
                asyncio.ensure_future(queue.solve(_variant(i)))
                for i in range(3)
            ]
            await asyncio.sleep(0)  # let the submissions enqueue
            await queue.close(drain=True)
            return await asyncio.gather(*pending)

        results = run(go())
        assert len(results) == 3
        assert all(result[0] == "solved" for result in results)

    def test_pool_batch_failure_is_isolated_per_item(self):
        # solve_many fails the whole batch on one bad task; the queue
        # must fall back to per-item solves so the poison request does
        # not 500 its co-batched neighbours.
        poison = _variant(0)
        good = _variant(1)

        class PoisonEngine(SlowEngine):
            def solve(self, model, method="direct"):
                if model is poison:
                    raise RuntimeError("poison")
                return super().solve(model, method)

            def solve_many(self, models, method="direct"):
                raise EngineError("task 0 failed after 2 attempt(s)")

        async def go():
            engine = PoisonEngine(delay=0.0, jobs=2)
            queue = SolveQueue(engine, batch_window=0.05)
            queue.start()
            results = await asyncio.gather(
                queue.solve(poison),
                queue.solve(good),
                return_exceptions=True,
            )
            await queue.close()
            return results

        poisoned, healthy = run(go())
        assert isinstance(poisoned, RuntimeError)
        assert healthy[0] == "solved"

    def test_solver_failure_propagates_to_every_waiter(self):
        class FailingEngine(SlowEngine):
            def solve(self, model, method="direct"):
                raise RuntimeError("boom")

        async def go():
            engine = FailingEngine()
            queue = SolveQueue(engine, batch_window=0.001)
            queue.start()
            model = workgroup_model()
            results = await asyncio.gather(
                *(queue.solve(model) for _ in range(3)),
                return_exceptions=True,
            )
            await queue.close()
            return results

        results = run(go())
        assert all(isinstance(result, RuntimeError) for result in results)
