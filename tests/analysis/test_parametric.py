"""Tests for parametric sweeps over diagram/block models."""

import pytest

from repro.analysis import (
    sweep_block_field,
    sweep_global_field,
    with_block_changes,
    with_global_changes,
)
from repro.core import (
    BlockParameters,
    DiagramBlockModel,
    GlobalParameters,
    MGBlock,
    MGDiagram,
    translate,
)
from repro.errors import SpecError
from repro.library import workgroup_model


def small_model():
    sub = MGDiagram(
        "box", [MGBlock(BlockParameters(name="inner", mtbf_hours=10_000.0))]
    )
    root = MGDiagram(
        "sys",
        [
            MGBlock(BlockParameters(name="box"), subdiagram=sub),
            MGBlock(BlockParameters(name="disk", mtbf_hours=50_000.0)),
        ],
    )
    return DiagramBlockModel(root, GlobalParameters())


class TestWithBlockChanges:
    def test_changes_target_block_only(self):
        model = small_model()
        variant = with_block_changes(model, "sys/disk", mtbf_hours=1.0e6)
        assert variant.find("sys/disk").parameters.mtbf_hours == 1.0e6
        assert model.find("sys/disk").parameters.mtbf_hours == 50_000.0

    def test_nested_path(self):
        model = small_model()
        variant = with_block_changes(
            model, "sys/box/inner", mtbf_hours=77.0
        )
        assert variant.find("sys/box/inner").parameters.mtbf_hours == 77.0

    def test_unknown_path_rejected(self):
        with pytest.raises(SpecError, match="no block at path"):
            with_block_changes(small_model(), "sys/nope", mtbf_hours=1.0)

    def test_structure_preserved(self):
        model = small_model()
        variant = with_block_changes(model, "sys/disk", quantity=2,
                                     min_required=2)
        assert variant.block_count() == model.block_count()
        assert variant.depth() == model.depth()


class TestWithGlobalChanges:
    def test_changes_globals_only(self):
        model = small_model()
        variant = with_global_changes(model, mttm_hours=1.0)
        assert variant.global_parameters.mttm_hours == 1.0
        assert model.global_parameters.mttm_hours == 48.0

    def test_root_shared(self):
        model = small_model()
        variant = with_global_changes(model, mttm_hours=1.0)
        assert variant.root is model.root


class TestSweeps:
    def test_block_sweep_monotone_in_mtbf(self):
        points = sweep_block_field(
            small_model(), "sys/disk", "mtbf_hours",
            [10_000.0, 50_000.0, 250_000.0],
        )
        availabilities = [p.availability for p in points]
        assert availabilities == sorted(availabilities)

    def test_sweep_point_consistency(self):
        (point,) = sweep_block_field(
            small_model(), "sys/disk", "mtbf_hours", [50_000.0]
        )
        assert point.availability == pytest.approx(
            translate(small_model()).availability, rel=1e-12
        )
        assert point.yearly_downtime_minutes > 0

    def test_global_sweep_monotone_in_mttrfid(self):
        model = workgroup_model()
        points = sweep_global_field(
            model, "mttrfid_hours", [1.0, 12.0, 48.0]
        )
        downtimes = [p.yearly_downtime_minutes for p in points]
        assert downtimes == sorted(downtimes)

    def test_sweep_preserves_value_order(self):
        points = sweep_global_field(
            small_model(), "mttm_hours", [72.0, 1.0, 24.0]
        )
        assert [p.value for p in points] == [72.0, 1.0, 24.0]
