"""Tests for parameter-uncertainty propagation."""

import pytest

from repro.analysis import UncertainField, propagate_uncertainty
from repro.errors import SolverError
from repro.library import workgroup_model
from repro.semimarkov import Deterministic, Lognormal, Uniform

OS = "Workgroup Server/Operating System"


class TestPropagation:
    def test_deterministic_distribution_reproduces_point_solution(self):
        from repro.core import translate

        model = workgroup_model()
        result = propagate_uncertainty(
            model,
            [UncertainField(OS, "mtbf_hours", Deterministic(30_000.0))],
            samples=5,
            seed=0,
        )
        expected = translate(model).availability
        assert result.mean_availability == pytest.approx(expected, rel=1e-12)
        assert result.std_availability == pytest.approx(0.0, abs=1e-15)
        assert result.downtime_iqr90 == pytest.approx(0.0, abs=1e-9)

    def test_wider_uncertainty_widens_downtime_band(self):
        model = workgroup_model()
        narrow = propagate_uncertainty(
            model,
            [UncertainField(
                OS, "mtbf_hours", Lognormal.from_mean_cv(30_000.0, 0.1)
            )],
            samples=60, seed=1,
        )
        wide = propagate_uncertainty(
            model,
            [UncertainField(
                OS, "mtbf_hours", Lognormal.from_mean_cv(30_000.0, 1.0)
            )],
            samples=60, seed=1,
        )
        assert wide.downtime_iqr90 > narrow.downtime_iqr90

    def test_percentiles_ordered(self):
        result = propagate_uncertainty(
            workgroup_model(),
            [UncertainField(OS, "mtbf_hours",
                            Uniform(10_000.0, 60_000.0))],
            samples=40, seed=2,
        )
        assert result.downtime_p05 <= result.downtime_p50
        assert result.downtime_p50 <= result.downtime_p95

    def test_multiple_uncertain_fields(self):
        result = propagate_uncertainty(
            workgroup_model(),
            [
                UncertainField(OS, "mtbf_hours",
                               Uniform(20_000.0, 40_000.0)),
                UncertainField(
                    "Workgroup Server/Mirrored Disk", "mtbf_hours",
                    Uniform(100_000.0, 200_000.0),
                ),
            ],
            samples=20, seed=3,
        )
        assert 0.99 < result.mean_availability < 1.0
        assert len(result.availability_samples) == 20

    def test_seeding_reproducible(self):
        spec = [UncertainField(OS, "mtbf_hours",
                               Uniform(20_000.0, 40_000.0))]
        a = propagate_uncertainty(workgroup_model(), spec, 10, seed=4)
        b = propagate_uncertainty(workgroup_model(), spec, 10, seed=4)
        assert a.availability_samples == b.availability_samples


class TestValidation:
    def test_no_fields_rejected(self):
        with pytest.raises(SolverError, match="no uncertain fields"):
            propagate_uncertainty(workgroup_model(), [], samples=10)

    def test_too_few_samples_rejected(self):
        with pytest.raises(SolverError, match="at least 2"):
            propagate_uncertainty(
                workgroup_model(),
                [UncertainField(OS, "mtbf_hours", Deterministic(1e4))],
                samples=1,
            )

    def test_unknown_path_rejected(self):
        from repro.errors import SpecError

        with pytest.raises(SpecError):
            propagate_uncertainty(
                workgroup_model(),
                [UncertainField("nowhere", "mtbf_hours",
                                Deterministic(1e4))],
                samples=2,
            )
