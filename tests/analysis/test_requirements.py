"""Tests for requirement checking and design-to-target solving."""

import pytest

from repro.analysis import (
    check_requirement,
    solve_parameter_for_target,
    with_block_changes,
)
from repro.core import translate
from repro.errors import SolverError
from repro.library import workgroup_model

OS = "Workgroup Server/Operating System"


class TestCheckRequirement:
    def test_equivalent_requirement_forms_agree(self):
        model = workgroup_model()
        by_availability = check_requirement(
            model, target_availability=0.999
        )
        by_nines = check_requirement(model, target_nines=3.0)
        by_downtime = check_requirement(
            model, max_downtime_minutes=525.6
        )
        assert by_availability.target_availability == pytest.approx(
            by_nines.target_availability, rel=1e-12
        )
        assert by_availability.target_availability == pytest.approx(
            by_downtime.target_availability, rel=1e-9
        )
        assert (
            by_availability.meets == by_nines.meets == by_downtime.meets
        )

    def test_loose_requirement_met(self):
        check = check_requirement(
            workgroup_model(), target_availability=0.99
        )
        assert check.meets
        assert check.margin_minutes > 0

    def test_tight_requirement_missed(self):
        check = check_requirement(
            workgroup_model(), target_nines=5.0
        )
        assert not check.meets
        assert check.margin_minutes < 0

    def test_achieved_matches_translate(self):
        model = workgroup_model()
        check = check_requirement(model, target_availability=0.999)
        assert check.achieved_availability == pytest.approx(
            translate(model).availability, rel=1e-12
        )

    def test_exactly_one_form_required(self):
        with pytest.raises(SolverError, match="exactly one"):
            check_requirement(workgroup_model())
        with pytest.raises(SolverError, match="exactly one"):
            check_requirement(
                workgroup_model(),
                target_availability=0.999,
                target_nines=3.0,
            )

    def test_bad_targets_rejected(self):
        with pytest.raises(SolverError):
            check_requirement(workgroup_model(), target_availability=1.5)
        with pytest.raises(SolverError):
            check_requirement(workgroup_model(), target_nines=-1.0)
        with pytest.raises(SolverError):
            check_requirement(workgroup_model(), max_downtime_minutes=-5.0)


class TestSolveParameterForTarget:
    def test_solves_os_mtbf_for_target(self):
        model = workgroup_model()
        target = 0.9993
        boundary = solve_parameter_for_target(
            model, "mtbf_hours", target, low=10_000.0, high=3_000_000.0,
            path=OS,
        )
        achieved = translate(
            with_block_changes(model, OS, mtbf_hours=boundary)
        ).availability
        assert achieved == pytest.approx(target, abs=2e-4 * (1 - target) + 1e-7)

    def test_solved_boundary_is_tight(self):
        # Slightly worse than the boundary must miss the target.
        model = workgroup_model()
        target = 0.9993
        boundary = solve_parameter_for_target(
            model, "mtbf_hours", target, low=10_000.0, high=3_000_000.0,
            path=OS,
        )
        worse = translate(
            with_block_changes(model, OS, mtbf_hours=boundary * 0.8)
        ).availability
        assert worse < target

    def test_global_field_solving(self):
        # How much maintenance deferral can the datacenter afford?
        from repro.library import datacenter_model

        model = datacenter_model()
        target = translate(model).availability - 2e-6
        boundary = solve_parameter_for_target(
            model, "mttm_hours", target, low=1.0, high=2_000.0,
        )
        assert 1.0 < boundary < 2_000.0

    def test_bracket_not_spanning_rejected(self):
        with pytest.raises(SolverError, match="does not span"):
            solve_parameter_for_target(
                workgroup_model(), "mtbf_hours", 0.99999999,
                low=10_000.0, high=20_000.0, path=OS,
            )

    def test_bad_bracket_rejected(self):
        with pytest.raises(SolverError, match="low < high"):
            solve_parameter_for_target(
                workgroup_model(), "mtbf_hours", 0.999,
                low=5.0, high=5.0, path=OS,
            )

    def test_bad_target_rejected(self):
        with pytest.raises(SolverError):
            solve_parameter_for_target(
                workgroup_model(), "mtbf_hours", 1.0,
                low=1.0, high=2.0, path=OS,
            )


class TestBracketError:
    def trigger(self):
        from repro.errors import BracketError

        with pytest.raises(BracketError) as excinfo:
            solve_parameter_for_target(
                workgroup_model(), "mtbf_hours", 0.99999999,
                low=10_000.0, high=20_000.0, path=OS,
            )
        return excinfo.value

    def test_is_a_typed_solver_error(self):
        from repro.errors import BracketError

        error = self.trigger()
        assert isinstance(error, BracketError)
        assert isinstance(error, SolverError)

    def test_carries_the_evaluated_endpoints(self):
        error = self.trigger()
        assert error.low == 10_000.0
        assert error.high == 20_000.0
        assert error.target == 0.99999999
        # Both endpoint availabilities sit below the target: the
        # caller can see the bracket is hopeless, not just "failed".
        assert error.low_value < error.target
        assert error.high_value < error.target
        assert error.low_value < error.high_value

    def test_details_mapping_is_json_ready(self):
        import json

        error = self.trigger()
        assert set(error.details) == {
            "low", "high", "low_value", "high_value", "target",
        }
        assert json.loads(json.dumps(error.details)) == error.details
