"""Tests for Birnbaum importance."""

import pytest

from repro.analysis import birnbaum_importance
from repro.core import (
    BlockParameters,
    DiagramBlockModel,
    MGBlock,
    MGDiagram,
    translate,
)
from repro.core.translator import _block_contribution


def model(mtbf_a=10_000.0, mtbf_b=100_000.0):
    root = MGDiagram(
        "sys",
        [
            MGBlock(BlockParameters(name="weak", mtbf_hours=mtbf_a)),
            MGBlock(BlockParameters(name="strong", mtbf_hours=mtbf_b)),
        ],
    )
    return DiagramBlockModel(root)


class TestBirnbaum:
    def test_birnbaum_is_product_of_others(self):
        solution = translate(model())
        rows = {row.name: row for row in birnbaum_importance(solution)}
        weak = solution.block("sys/weak")
        strong = solution.block("sys/strong")
        assert rows["weak"].birnbaum == pytest.approx(
            _block_contribution(strong), rel=1e-12
        )
        assert rows["strong"].birnbaum == pytest.approx(
            _block_contribution(weak), rel=1e-12
        )

    def test_weak_block_ranks_first(self):
        rows = birnbaum_importance(translate(model()))
        assert rows[0].name == "weak"

    def test_improvement_potential_consistent(self):
        solution = translate(model())
        rows = {row.name: row for row in birnbaum_importance(solution)}
        # Making 'weak' perfect leaves exactly the other block.
        strong_a = _block_contribution(solution.block("sys/strong"))
        expected = strong_a - solution.availability
        assert rows["weak"].improvement_potential == pytest.approx(
            expected, rel=1e-12
        )

    def test_potential_downtime_positive(self):
        rows = birnbaum_importance(translate(model()))
        assert all(row.potential_downtime_minutes >= 0 for row in rows)

    def test_single_block_importance_is_one(self):
        root = MGDiagram(
            "sys", [MGBlock(BlockParameters(name="only", mtbf_hours=1e4))]
        )
        (row,) = birnbaum_importance(translate(DiagramBlockModel(root)))
        assert row.birnbaum == pytest.approx(1.0)


class TestFiniteDifference:
    def test_birnbaum_matches_numeric_partial_derivative(self):
        """Birnbaum importance is dA_sys/dA_i.  Perturb one block's
        MTBF and cross-check the chain rule numerically:
        (dA_sys/dm) / (dA_i/dm) must equal the analytic Birnbaum."""
        from repro.analysis.parametric import with_block_changes

        base = model()
        solution = translate(base)
        rows = {row.name: row for row in birnbaum_importance(solution)}
        for name, mtbf in (("weak", 10_000.0), ("strong", 100_000.0)):
            path = f"sys/{name}"
            step = mtbf * 1e-4
            up = translate(
                with_block_changes(base, path, mtbf_hours=mtbf + step)
            )
            down = translate(
                with_block_changes(base, path, mtbf_hours=mtbf - step)
            )
            d_system = up.availability - down.availability
            d_block = _block_contribution(
                up.block(path)
            ) - _block_contribution(down.block(path))
            assert d_system / d_block == pytest.approx(
                rows[name].birnbaum, rel=1e-6
            )
