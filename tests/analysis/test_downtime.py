"""Tests for downtime budget attribution."""

import pytest

from repro.analysis import downtime_budget, state_kind_breakdown
from repro.core import translate
from repro.library import datacenter_model, workgroup_model
from repro.units import MINUTES_PER_YEAR


class TestDowntimeBudget:
    def test_rows_sorted_worst_first(self):
        rows = downtime_budget(translate(datacenter_model()))
        downtimes = [row.yearly_downtime_minutes for row in rows]
        assert downtimes == sorted(downtimes, reverse=True)

    def test_shares_sum_to_one(self):
        rows = downtime_budget(translate(datacenter_model()))
        assert sum(row.share for row in rows) == pytest.approx(1.0)

    def test_leaf_level_descends_passthrough_blocks(self):
        rows = downtime_budget(translate(datacenter_model()), leaf_level=True)
        paths = [row.path for row in rows]
        # Server Box is pass-through; its children must appear instead.
        assert all("Server Box" != p.rsplit("/", 1)[-1] for p in paths)
        assert any("CPU Module" in p for p in paths)

    def test_top_level_mode(self):
        rows = downtime_budget(translate(datacenter_model()), leaf_level=False)
        names = {row.name for row in rows}
        assert "Server Box" in names
        assert len(rows) == 4

    def test_budget_close_to_total_downtime(self):
        # First-order: sum of block downtimes ~ system downtime.
        solution = translate(workgroup_model())
        rows = downtime_budget(solution)
        total = sum(row.yearly_downtime_minutes for row in rows)
        system = (1 - solution.availability) * MINUTES_PER_YEAR
        assert total == pytest.approx(system, rel=0.01)

    def test_os_dominates_workgroup(self):
        rows = downtime_budget(translate(workgroup_model()))
        assert rows[0].name == "Operating System"


class TestStateKindBreakdown:
    def test_kinds_sum_to_block_downtime(self):
        solution = translate(workgroup_model())
        block = solution.block("Workgroup Server/Operating System")
        breakdown = state_kind_breakdown(block)
        total = sum(breakdown.values())
        expected = (1 - block.availability) * MINUTES_PER_YEAR
        assert total == pytest.approx(expected, rel=1e-9)

    def test_type0_kinds_present(self):
        solution = translate(workgroup_model())
        block = solution.block("Workgroup Server/Operating System")
        breakdown = state_kind_breakdown(block)
        assert {"logistic", "repair", "reboot"} <= set(breakdown)

    def test_passthrough_block_rejected(self):
        solution = translate(datacenter_model())
        block = solution.block("Data Center System/Server Box")
        with pytest.raises(ValueError, match="no chain"):
            state_kind_breakdown(block)
