"""Tests for architecture comparison."""

import pytest

from repro.analysis import compare_models, comparison_table
from repro.core import translate
from repro.library import datacenter_model, e10000_model, workgroup_model


class TestCompareModels:
    def test_sorted_best_first(self):
        rows = compare_models([
            ("workgroup", workgroup_model()),
            ("e10000", e10000_model()),
        ])
        assert rows[0].name == "e10000"
        availabilities = [row.availability for row in rows]
        assert availabilities == sorted(availabilities, reverse=True)

    def test_values_match_direct_solution(self):
        (row,) = compare_models([("wg", workgroup_model())])
        assert row.availability == pytest.approx(
            translate(workgroup_model()).availability, rel=1e-12
        )
        assert row.blocks == workgroup_model().block_count()
        assert row.physical_units == workgroup_model().component_count()

    def test_nines_consistent(self):
        import math

        (row,) = compare_models([("wg", workgroup_model())])
        assert row.nines == pytest.approx(
            -math.log10(1 - row.availability)
        )


class TestComparisonTable:
    def test_table_contains_all_names(self):
        table = comparison_table([
            ("workgroup", workgroup_model()),
            ("datacenter", datacenter_model()),
        ])
        assert "workgroup" in table
        assert "datacenter" in table
        assert "availability" in table

    def test_table_line_count(self):
        table = comparison_table([("wg", workgroup_model())])
        assert len(table.splitlines()) == 3  # header, rule, one row
