"""Tests for spec vocabulary and alias normalization."""

import pytest

from repro.errors import SpecError
from repro.spec import BLOCK_FIELDS, GLOBAL_FIELDS, normalize_keys
from repro.spec.schema import _canonical_alias_key


class TestAliasKeyCanonicalization:
    def test_strips_punctuation_and_case(self):
        assert _canonical_alias_key("MTBF") == "mtbf"
        assert (
            _canonical_alias_key("Minimum Quantity Required")
            == "minimum quantity required"
        )

    def test_strips_unit_suffixes(self):
        assert (
            _canonical_alias_key("MTTR Part 1: Diagnosis Time (min.)")
            == "mttr part 1 diagnosis time"
        )

    def test_collapses_whitespace(self):
        assert _canonical_alias_key("  Part   Number ") == "part number"


class TestNormalizeKeys:
    def test_canonical_keys_pass_through(self):
        result = normalize_keys(
            {"mtbf_hours": 100.0, "quantity": 2}, BLOCK_FIELDS, "test"
        )
        assert result == {"mtbf_hours": 100.0, "quantity": 2}

    def test_gui_labels_map_to_fields(self):
        result = normalize_keys(
            {
                "MTBF": 100.0,
                "Quantity": 2,
                "Minimum Quantity Required": 1,
                "Transient Failure Rate": 500.0,
                "Probability of Correct Diagnosis (Pcd)": 0.9,
                "Automatic Recovery Scenario": "transparent",
                "AR/Failover Time": 5.0,
                "Probability of SPF during AR (Pspf)": 0.01,
                "SPF State Recovery Time (Tspf)": 30.0,
                "Repair Scenario": "transparent",
                "Reintegration Time": 10.0,
                "Service Response Time (Tresp)": 4.0,
                "MTTDLF": 24.0,
                "Probability of Latent Fault (Plf)": 0.05,
            },
            BLOCK_FIELDS,
            "test",
        )
        assert result["mtbf_hours"] == 100.0
        assert result["quantity"] == 2
        assert result["min_required"] == 1
        assert result["transient_fit"] == 500.0
        assert result["p_correct_diagnosis"] == 0.9
        assert result["recovery"] == "transparent"
        assert result["ar_time_minutes"] == 5.0
        assert result["p_spf"] == 0.01
        assert result["spf_recovery_minutes"] == 30.0
        assert result["repair"] == "transparent"
        assert result["reintegration_minutes"] == 10.0
        assert result["service_response_hours"] == 4.0
        assert result["mttdlf_hours"] == 24.0
        assert result["p_latent_fault"] == 0.05

    def test_mttr_part_labels(self):
        result = normalize_keys(
            {
                "MTTR Part 1: Diagnosis Time": 10.0,
                "MTTR Part 2: Corrective Action Time": 20.0,
                "MTTR Part 3: Verification Time": 30.0,
            },
            BLOCK_FIELDS,
            "test",
        )
        assert result["diagnosis_minutes"] == 10.0
        assert result["corrective_minutes"] == 20.0
        assert result["verification_minutes"] == 30.0

    def test_global_bar_labels(self):
        result = normalize_keys(
            {
                "Reboot Time (Tboot)": 10.0,
                "MTTM": 48.0,
                "MTTRFID": 8.0,
                "Mission Time": 8760.0,
            },
            GLOBAL_FIELDS,
            "globals",
        )
        assert result == {
            "reboot_minutes": 10.0,
            "mttm_hours": 48.0,
            "mttrfid_hours": 8.0,
            "mission_time_hours": 8760.0,
        }

    def test_unknown_key_rejected(self):
        with pytest.raises(SpecError, match="unknown field"):
            normalize_keys({"mtbf_hourz": 1.0}, BLOCK_FIELDS, "test")

    def test_duplicate_via_alias_rejected(self):
        with pytest.raises(SpecError, match="more than once"):
            normalize_keys(
                {"MTBF": 1.0, "mtbf_hours": 2.0}, BLOCK_FIELDS, "test"
            )

    def test_block_label_rejected_in_globals(self):
        with pytest.raises(SpecError, match="unknown field"):
            normalize_keys({"MTBF": 1.0}, GLOBAL_FIELDS, "globals")
