"""Tests for model diffing."""

import pytest

from repro.analysis import with_block_changes, with_global_changes
from repro.library import workgroup_model
from repro.spec import ChangeKind, diff_impact, diff_models, format_diff

OS = "Workgroup Server/Operating System"


class TestDiffModels:
    def test_identical_models_empty_diff(self):
        assert diff_models(workgroup_model(), workgroup_model()) == []

    def test_changed_field_reported(self):
        old = workgroup_model()
        new = with_block_changes(old, OS, mtbf_hours=60_000.0)
        entries = diff_models(old, new)
        assert len(entries) == 1
        entry = entries[0]
        assert entry.kind is ChangeKind.CHANGED
        assert entry.path == OS
        assert entry.field == "mtbf_hours"
        assert entry.old == 30_000.0
        assert entry.new == 60_000.0

    def test_global_change_reported(self):
        old = workgroup_model()
        new = with_global_changes(old, mttm_hours=1.0)
        (entry,) = diff_models(old, new)
        assert entry.path == "<globals>"
        assert entry.field == "mttm_hours"

    def test_added_and_removed_blocks(self):
        from repro.core import (
            BlockParameters,
            DiagramBlockModel,
            MGBlock,
            MGDiagram,
        )

        old = DiagramBlockModel(MGDiagram("sys", [
            MGBlock(BlockParameters(name="A")),
            MGBlock(BlockParameters(name="B")),
        ]))
        new = DiagramBlockModel(MGDiagram("sys", [
            MGBlock(BlockParameters(name="A")),
            MGBlock(BlockParameters(name="C")),
        ]))
        entries = diff_models(old, new)
        kinds = {(e.kind, e.path) for e in entries}
        assert (ChangeKind.REMOVED, "sys/B") in kinds
        assert (ChangeKind.ADDED, "sys/C") in kinds

    def test_scenario_values_displayed_as_strings(self):
        old = workgroup_model()
        new = with_block_changes(
            old, "Workgroup Server/Mirrored Disk", repair="transparent"
        )
        (entry,) = diff_models(old, new)
        assert entry.old == "nontransparent"
        assert entry.new == "transparent"

    def test_multiple_changes_ordered_by_path(self):
        old = workgroup_model()
        new = with_block_changes(old, OS, mtbf_hours=60_000.0)
        new = with_block_changes(
            new, "Workgroup Server/Fan", mtbf_hours=500_000.0
        )
        entries = diff_models(old, new)
        paths = [entry.path for entry in entries]
        assert paths == sorted(paths)


class TestFormatting:
    def test_identical(self):
        assert "identical" in format_diff([])

    def test_symbols(self):
        old = workgroup_model()
        new = with_block_changes(old, OS, mtbf_hours=60_000.0)
        text = format_diff(diff_models(old, new))
        assert text.startswith("~ ")
        assert "mtbf_hours" in text


class TestImpact:
    def test_improvement_is_negative_delta(self):
        old = workgroup_model()
        new = with_block_changes(old, OS, mtbf_hours=300_000.0)
        impact = diff_impact(old, new)
        assert impact["new_availability"] > impact["old_availability"]
        assert impact["downtime_delta_minutes"] < 0

    def test_no_change_zero_delta(self):
        impact = diff_impact(workgroup_model(), workgroup_model())
        assert impact["downtime_delta_minutes"] == pytest.approx(0.0)


class TestFloatTolerance:
    """Float comparison uses a relative tolerance, not exact ``==``."""

    def test_spec_round_trip_diffs_empty(self):
        # model -> spec -> JSON -> spec -> model must diff clean: this
        # is the registry's lineage-diff path, where a stored version
        # is reparsed before comparison.
        import json

        from repro.spec import model_to_spec, parse_spec

        original = workgroup_model()
        round_tripped = parse_spec(
            json.loads(json.dumps(model_to_spec(original)))
        )
        assert diff_models(original, round_tripped) == []

    def test_last_ulp_noise_is_not_a_change(self):
        old = workgroup_model()
        noisy = 30_000.0 * (1.0 + 1e-15)
        new = with_block_changes(old, OS, mtbf_hours=noisy)
        assert diff_models(old, new) == []

    def test_real_changes_still_reported(self):
        old = workgroup_model()
        new = with_block_changes(
            old, OS, mtbf_hours=30_000.0 * (1.0 + 1e-9)
        )
        (entry,) = diff_models(old, new)
        assert entry.kind is ChangeKind.CHANGED
        assert entry.field == "mtbf_hours"

    def test_distinct_near_zero_values_differ(self):
        # Relative-only tolerance: tiny rates that differ by orders
        # of magnitude must not be equated by an absolute epsilon.
        old = workgroup_model()
        new = with_global_changes(old, mttm_hours=1e-14)
        assert len(diff_models(old, new)) == 1

    def test_global_float_noise_ignored(self):
        old = workgroup_model()
        value = old.global_parameters.mttm_hours
        new = with_global_changes(old, mttm_hours=value * (1.0 + 1e-15))
        assert diff_models(old, new) == []
