"""Tests for spec serialization and round-tripping."""

import json

import pytest

from repro.core import translate
from repro.library import datacenter_model, e10000_model, workgroup_model
from repro.spec import load_spec, model_to_spec, parse_spec, save_spec


class TestRoundTrip:
    @pytest.mark.parametrize(
        "factory", [datacenter_model, e10000_model, workgroup_model],
        ids=["datacenter", "e10000", "workgroup"],
    )
    def test_library_models_round_trip(self, factory):
        original = factory()
        restored = parse_spec(model_to_spec(original))
        assert restored.name == original.name
        assert restored.block_count() == original.block_count()
        # Parameters survive exactly.
        for (_, path, block), (_, rpath, rblock) in zip(
            original.walk(), restored.walk()
        ):
            assert path == rpath
            assert block.parameters == rblock.parameters

    def test_round_trip_preserves_solution(self):
        original = datacenter_model()
        restored = parse_spec(model_to_spec(original))
        assert translate(restored).availability == pytest.approx(
            translate(original).availability, rel=1e-12
        )

    def test_globals_round_trip(self):
        model = e10000_model()
        restored = parse_spec(model_to_spec(model))
        assert restored.global_parameters == model.global_parameters


class TestSpecShape:
    def test_default_fields_omitted(self):
        spec = model_to_spec(workgroup_model())
        blocks = spec["diagram"]["blocks"]
        motherboard = next(b for b in blocks if b["name"] == "Motherboard")
        # Quantity 1 is the default and should not be serialized.
        assert "quantity" not in motherboard

    def test_spec_is_json_serializable(self):
        text = json.dumps(model_to_spec(datacenter_model()))
        assert "Server Box" in text


class TestSaveSpec:
    def test_save_and_load(self, tmp_path):
        path = tmp_path / "dc.json"
        save_spec(datacenter_model(), path)
        model = load_spec(path)
        assert model.name == "Data Center System"
        assert model.depth() == 2
