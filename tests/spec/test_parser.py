"""Tests for spec parsing."""

import json

import pytest

from repro.database import builtin_database
from repro.errors import SpecError
from repro.spec import load_spec, parse_spec


def minimal_spec():
    return {
        "name": "Tiny",
        "globals": {"mttm_hours": 24.0},
        "diagram": {
            "name": "Tiny",
            "blocks": [
                {"name": "Board", "mtbf_hours": 100_000.0},
            ],
        },
    }


class TestParseSpec:
    def test_minimal(self):
        model = parse_spec(minimal_spec())
        assert model.name == "Tiny"
        assert model.global_parameters.mttm_hours == 24.0
        assert model.block_count() == 1

    def test_gui_labels_in_blocks(self):
        spec = minimal_spec()
        spec["diagram"]["blocks"][0] = {
            "name": "Board",
            "MTBF": 50_000.0,
            "Quantity": 2,
            "Minimum Quantity Required": 1,
        }
        model = parse_spec(spec)
        block = model.find("Tiny/Board")
        assert block.parameters.mtbf_hours == 50_000.0
        assert block.parameters.is_redundant

    def test_nested_subdiagram(self):
        spec = minimal_spec()
        spec["diagram"]["blocks"][0]["subdiagram"] = {
            "name": "Inner",
            "blocks": [{"name": "Chip", "mtbf_hours": 1e6}],
        }
        model = parse_spec(spec)
        assert model.depth() == 2
        assert model.find("Tiny/Board/Chip").parameters.mtbf_hours == 1e6

    def test_unknown_top_level_key_rejected(self):
        spec = minimal_spec()
        spec["extra"] = 1
        with pytest.raises(SpecError, match="unknown top-level"):
            parse_spec(spec)

    def test_missing_diagram_rejected(self):
        with pytest.raises(SpecError, match="missing 'diagram'"):
            parse_spec({"name": "x"})

    def test_empty_blocks_rejected(self):
        spec = minimal_spec()
        spec["diagram"]["blocks"] = []
        with pytest.raises(SpecError, match="non-empty list"):
            parse_spec(spec)

    def test_diagram_needs_name(self):
        spec = minimal_spec()
        del spec["diagram"]["name"]
        with pytest.raises(SpecError, match="'name'"):
            parse_spec(spec)

    def test_bad_parameter_value_wrapped_as_spec_error(self):
        spec = minimal_spec()
        spec["diagram"]["blocks"][0]["mtbf_hours"] = -1.0
        with pytest.raises(SpecError, match="MTBF"):
            parse_spec(spec)

    def test_unknown_block_field_rejected(self):
        spec = minimal_spec()
        spec["diagram"]["blocks"][0]["mtbv_hours"] = 5.0
        with pytest.raises(SpecError, match="unknown field"):
            parse_spec(spec)

    def test_bad_globals_rejected(self):
        spec = minimal_spec()
        spec["globals"] = {"made_up": 1.0}
        with pytest.raises(SpecError):
            parse_spec(spec)


class TestDatabaseResolution:
    def test_part_number_pulls_defaults(self):
        db = builtin_database()
        spec = minimal_spec()
        spec["diagram"]["blocks"][0] = {
            "name": "CPU", "part_number": "CPU-400",
        }
        model = parse_spec(spec, database=db)
        record = db.lookup("CPU-400")
        assert model.find("Tiny/CPU").parameters.mtbf_hours == record.mtbf_hours

    def test_explicit_fields_override_catalog(self):
        db = builtin_database()
        spec = minimal_spec()
        spec["diagram"]["blocks"][0] = {
            "name": "CPU", "part_number": "CPU-400",
            "mtbf_hours": 123_456.0,
        }
        model = parse_spec(spec, database=db)
        assert model.find("Tiny/CPU").parameters.mtbf_hours == 123_456.0

    def test_unknown_part_number_rejected(self):
        from repro.errors import DatabaseError

        spec = minimal_spec()
        spec["diagram"]["blocks"][0]["part_number"] = "NOPE-1"
        with pytest.raises(DatabaseError, match="unknown part number"):
            parse_spec(spec, database=builtin_database())

    def test_part_number_without_database_is_documentation(self):
        spec = minimal_spec()
        spec["diagram"]["blocks"][0]["part_number"] = "CPU-400"
        model = parse_spec(spec)  # fields fully specified, no lookup
        assert model.find("Tiny/Board").parameters.part_number == "CPU-400"


class TestLoadSpec:
    def test_from_json_string(self):
        model = load_spec(json.dumps(minimal_spec()))
        assert model.name == "Tiny"

    def test_from_file(self, tmp_path):
        path = tmp_path / "model.json"
        path.write_text(json.dumps(minimal_spec()))
        model = load_spec(path)
        assert model.name == "Tiny"

    def test_from_mapping(self):
        assert load_spec(minimal_spec()).name == "Tiny"

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(SpecError, match="cannot read"):
            load_spec(tmp_path / "nope.json")

    def test_invalid_json_rejected(self):
        with pytest.raises(SpecError, match="invalid spec JSON"):
            load_spec("{not json")

    def test_non_object_json_rejected(self):
        with pytest.raises(SpecError, match="must be an object"):
            load_spec("[1, 2]")
