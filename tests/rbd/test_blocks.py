"""Tests for structured RBD combinators."""

import itertools

import pytest

from repro.errors import ModelError
from repro.rbd import KofN, Leaf, Parallel, Series, k_of_n, parallel, series


class TestLeaf:
    def test_fixed_probability(self):
        assert Leaf("a", 0.9).availability() == pytest.approx(0.9)

    def test_value_mapping_overrides(self):
        leaf = Leaf("a", 0.9)
        assert leaf.availability({"a": 0.5}) == pytest.approx(0.5)

    def test_named_leaf_requires_value(self):
        with pytest.raises(ModelError, match="no fixed probability"):
            Leaf("pending").availability()

    def test_named_leaf_resolves(self):
        assert Leaf("pending").availability({"pending": 0.7}) == 0.7

    def test_out_of_range_rejected(self):
        with pytest.raises(ModelError):
            Leaf("a", 1.5)
        with pytest.raises(ModelError):
            Leaf("a", 0.9).availability({"a": -0.1})

    def test_unavailability(self):
        assert Leaf("a", 0.9).unavailability() == pytest.approx(0.1)


class TestSeries:
    def test_product_rule(self):
        block = series(0.9, 0.8, 0.95)
        assert block.availability() == pytest.approx(0.9 * 0.8 * 0.95)

    def test_single_child(self):
        assert series(0.7).availability() == pytest.approx(0.7)

    def test_empty_rejected(self):
        with pytest.raises(ModelError, match="needs children"):
            Series("empty", [])

    def test_perfect_children(self):
        assert series(1.0, 1.0).availability() == pytest.approx(1.0)


class TestParallel:
    def test_complement_product_rule(self):
        block = parallel(0.9, 0.8)
        assert block.availability() == pytest.approx(1 - 0.1 * 0.2)

    def test_one_perfect_child_makes_perfect(self):
        assert parallel(0.5, 1.0).availability() == pytest.approx(1.0)

    def test_all_failed(self):
        assert parallel(0.0, 0.0).availability() == pytest.approx(0.0)


class TestKofN:
    def test_identical_children_binomial(self):
        # 2-of-3 with p=0.9: 3 p^2 (1-p) + p^3.
        block = k_of_n(2, 0.9, 0.9, 0.9)
        expected = 3 * 0.9**2 * 0.1 + 0.9**3
        assert block.availability() == pytest.approx(expected)

    def test_heterogeneous_children_by_enumeration(self):
        probabilities = [0.9, 0.75, 0.6, 0.95]
        k = 3
        block = k_of_n(k, *probabilities)
        expected = 0.0
        for outcome in itertools.product([0, 1], repeat=4):
            if sum(outcome) >= k:
                term = 1.0
                for up, p in zip(outcome, probabilities):
                    term *= p if up else 1 - p
                expected += term
        assert block.availability() == pytest.approx(expected, rel=1e-12)

    def test_n_of_n_equals_series(self):
        ps = [0.9, 0.8, 0.7]
        assert k_of_n(3, *ps).availability() == pytest.approx(
            series(*ps).availability()
        )

    def test_1_of_n_equals_parallel(self):
        ps = [0.9, 0.8, 0.7]
        assert k_of_n(1, *ps).availability() == pytest.approx(
            parallel(*ps).availability()
        )

    def test_invalid_k_rejected(self):
        with pytest.raises(ModelError):
            k_of_n(0, 0.9, 0.9)
        with pytest.raises(ModelError):
            k_of_n(3, 0.9, 0.9)


class TestComposition:
    def test_nested_structure(self):
        # Two mirrored controllers, each in series with its own disk.
        path_a = series(Leaf("ctrl-a", 0.99), Leaf("disk-a", 0.95))
        path_b = series(Leaf("ctrl-b", 0.99), Leaf("disk-b", 0.95))
        system = parallel(path_a, path_b)
        path = 0.99 * 0.95
        assert system.availability() == pytest.approx(1 - (1 - path) ** 2)

    def test_values_flow_to_nested_leaves(self):
        system = parallel(
            series(Leaf("x"), Leaf("y")), Leaf("z", 0.5)
        )
        value = system.availability({"x": 0.9, "y": 0.9, "z": 0.0})
        assert value == pytest.approx(0.81)

    def test_leaves_enumeration(self):
        system = parallel(series(Leaf("x"), Leaf("y")), Leaf("z", 0.5))
        assert [leaf.name for leaf in system.leaves()] == ["x", "y", "z"]
