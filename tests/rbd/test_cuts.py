"""Tests for minimal cut sets and edge importance."""

import pytest

from repro.rbd import (
    NetworkRBD,
    cut_set_order_profile,
    edge_birnbaum_importance,
    minimal_cut_sets,
    single_points_of_failure,
    upper_bound_unavailability,
)


def bridge(p=0.99) -> NetworkRBD:
    net = NetworkRBD("s", "t")
    net.add_component("s", "a", p)
    net.add_component("s", "b", p)
    net.add_component("a", "t", p)
    net.add_component("b", "t", p)
    net.add_component("a", "b", p)
    return net


def series_chain(*ps) -> NetworkRBD:
    net = NetworkRBD("n0", f"n{len(ps)}")
    for i, p in enumerate(ps):
        net.add_component(f"n{i}", f"n{i + 1}", p)
    return net


class TestMinimalCutSets:
    def test_series_cuts_are_singletons(self):
        net = series_chain(0.9, 0.9, 0.9)
        cuts = minimal_cut_sets(net.graph, "n0", "n3")
        assert len(cuts) == 3
        assert all(len(cut) == 1 for cut in cuts)

    def test_bridge_has_four_cuts(self):
        # Classic result: {sa, sb}, {at, bt}, {sa, ab, bt}, {sb, ab, at}.
        net = bridge()
        cuts = minimal_cut_sets(net.graph, "s", "t")
        assert len(cuts) == 4
        sizes = sorted(len(cut) for cut in cuts)
        assert sizes == [2, 2, 3, 3]

    def test_cuts_are_minimal(self):
        net = bridge()
        cuts = [frozenset(cut) for cut in minimal_cut_sets(net.graph, "s", "t")]
        for cut in cuts:
            for other in cuts:
                if other is not cut:
                    assert not other < cut

    def test_every_cut_disconnects(self):
        net = bridge()
        for cut in minimal_cut_sets(net.graph, "s", "t"):
            pruned = net.graph.copy()
            for a, b in cut:
                pruned.remove_edge(a, b)
            import networkx as nx

            assert not nx.has_path(pruned, "s", "t")

    def test_order_profile(self):
        profile = cut_set_order_profile(bridge().graph, "s", "t")
        assert profile == {2: 2, 3: 2}


class TestSinglePointsOfFailure:
    def test_series_all_spof(self):
        net = series_chain(0.9, 0.9)
        spofs = single_points_of_failure(net.graph, "n0", "n2")
        assert len(spofs) == 2

    def test_bridge_has_none(self):
        assert single_points_of_failure(bridge().graph, "s", "t") == []

    def test_mixed_topology(self):
        # A series bottleneck feeding a parallel pair.
        net = NetworkRBD("s", "t")
        net.add_component("s", "m", 0.9)      # the bottleneck
        net.add_component("m", "x", 0.9)
        net.add_component("x", "t", 1.0)
        net.add_component("m", "y", 0.9)
        net.add_component("y", "t", 1.0)
        spofs = single_points_of_failure(net.graph, "s", "t")
        assert spofs == [("m", "s")]


class TestEdgeImportance:
    def test_birnbaum_matches_conditional_difference(self):
        net = bridge(0.9)
        for (a, b), importance in edge_birnbaum_importance(
            net.graph, "s", "t"
        ):
            up = net.graph.copy()
            up.edges[a, b]["availability"] = 1.0
            down = net.graph.copy()
            down.remove_edge(a, b)
            from repro.rbd import network_availability

            expected = network_availability(up, "s", "t") - (
                network_availability(down, "s", "t")
            )
            assert importance == pytest.approx(expected, abs=1e-12)

    def test_bridge_element_least_important_when_symmetric(self):
        ranked = edge_birnbaum_importance(bridge(0.9).graph, "s", "t")
        least_edge, _least_value = ranked[-1]
        assert least_edge == ("a", "b")

    def test_spof_has_maximal_importance(self):
        net = series_chain(0.9, 0.99)
        ranked = edge_birnbaum_importance(net.graph, "n0", "n2")
        # For a series pair, I_B(e) equals the other edge's availability.
        values = dict(ranked)
        assert values[("n0", "n1")] == pytest.approx(0.99)
        assert values[("n1", "n2")] == pytest.approx(0.9)


class TestCutBound:
    def test_bound_above_exact_unavailability(self):
        net = bridge(0.99)
        exact = 1.0 - net.availability()
        bound = upper_bound_unavailability(net.graph, "s", "t")
        assert bound >= exact - 1e-15

    def test_bound_tight_for_reliable_components(self):
        net = bridge(0.9999)
        exact = 1.0 - net.availability()
        bound = upper_bound_unavailability(net.graph, "s", "t")
        assert bound == pytest.approx(exact, rel=0.01)

    def test_bound_capped_at_one(self):
        net = series_chain(0.1, 0.1, 0.1)
        assert upper_bound_unavailability(net.graph, "n0", "n3") == 1.0
