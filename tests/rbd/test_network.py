"""Tests for two-terminal network RBDs (factoring algorithm)."""

import pytest

from repro.errors import ModelError
from repro.rbd import NetworkRBD, minimal_path_sets
from repro.rbd.network import availability_by_inclusion_exclusion


def bridge(p1=0.9, p2=0.8, p3=0.7, p4=0.85, p5=0.75) -> NetworkRBD:
    """The classic 5-component bridge between s and t."""
    net = NetworkRBD("s", "t")
    net.add_component("s", "a", p1)
    net.add_component("s", "b", p2)
    net.add_component("a", "t", p3)
    net.add_component("b", "t", p4)
    net.add_component("a", "b", p5)  # the bridge element
    return net


class TestSeriesParallelCases:
    def test_two_in_series(self):
        net = NetworkRBD("s", "t")
        net.add_component("s", "m", 0.9)
        net.add_component("m", "t", 0.8)
        assert net.availability() == pytest.approx(0.72)

    def test_two_in_parallel_via_junctions(self):
        net = NetworkRBD("s", "t")
        net.add_component("s", "x", 0.9)
        net.add_component("x", "t", 1.0)
        net.add_component("s", "y", 0.8)
        net.add_component("y", "t", 1.0)
        assert net.availability() == pytest.approx(1 - 0.1 * 0.2)

    def test_disconnected_terminals(self):
        net = NetworkRBD("s", "t")
        net.add_component("s", "a", 0.9)
        assert net.availability() == 0.0


class TestBridge:
    def test_bridge_matches_inclusion_exclusion(self):
        net = bridge()
        exact = availability_by_inclusion_exclusion(net.graph, "s", "t")
        assert net.availability() == pytest.approx(exact, rel=1e-12)

    def test_bridge_closed_form_symmetric(self):
        # All components p: R = 2p^2 + 2p^3 - 5p^4 + 2p^5.
        p = 0.9
        net = bridge(p, p, p, p, p)
        expected = 2 * p**2 + 2 * p**3 - 5 * p**4 + 2 * p**5
        assert net.availability() == pytest.approx(expected, rel=1e-12)

    def test_perfect_bridge_edge_reduces_to_series_parallel(self):
        # With the bridge element perfect, the structure is
        # (p1 | p2) in series with (p3 | p4).
        net = bridge(0.9, 0.8, 0.7, 0.85, 1.0)
        expected = (1 - 0.1 * 0.2) * (1 - 0.3 * 0.15)
        assert net.availability() == pytest.approx(expected, rel=1e-12)

    def test_failed_bridge_edge(self):
        # With the bridge element dead: two independent series paths.
        net = bridge(0.9, 0.8, 0.7, 0.85, 0.0)
        path_a = 0.9 * 0.7
        path_b = 0.8 * 0.85
        expected = 1 - (1 - path_a) * (1 - path_b)
        assert net.availability() == pytest.approx(expected, rel=1e-12)


class TestPathSets:
    def test_bridge_has_four_minimal_paths(self):
        assert len(bridge().path_sets()) == 4

    def test_series_single_path(self):
        net = NetworkRBD("s", "t")
        net.add_component("s", "m", 0.9)
        net.add_component("m", "t", 0.8)
        assert len(net.path_sets()) == 1


class TestValidation:
    def test_same_terminals_rejected(self):
        with pytest.raises(ModelError):
            NetworkRBD("s", "s")

    def test_duplicate_edge_rejected(self):
        net = NetworkRBD("s", "t")
        net.add_component("s", "t", 0.9)
        with pytest.raises(ModelError, match="already exists"):
            net.add_component("s", "t", 0.8)

    def test_bad_probability_rejected(self):
        net = NetworkRBD("s", "t")
        with pytest.raises(ModelError):
            net.add_component("s", "t", 1.2)

    def test_missing_terminal_rejected(self):
        import networkx as nx

        graph = nx.Graph()
        graph.add_edge("a", "b", availability=0.9)
        with pytest.raises(ModelError, match="terminal"):
            minimal_path_sets(graph, "s", "t")

    def test_edge_without_availability_rejected(self):
        import networkx as nx
        from repro.rbd import network_availability

        graph = nx.Graph()
        graph.add_edge("s", "t")
        with pytest.raises(ModelError, match="lacks an availability"):
            network_availability(graph, "s", "t")
