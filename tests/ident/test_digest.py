"""Golden-digest lock plus unit coverage for :mod:`repro.ident`.

The golden fixture was generated *before* the digest helpers were
consolidated into ``repro.ident``; asserting equality here proves the
consolidation is behavior-preserving at the identity layer — every
job id, shard id, spec digest, study id, and event id comes out
bit-identical to what the scattered per-subsystem implementations
minted.
"""

import hashlib
import json
from pathlib import Path

import pytest

from repro.ident import (
    canonical_json,
    content_digest,
    digest_id,
    digest_int64,
    sha256_bytes,
    sha256_hex,
)

from ._golden import compute_golden

FIXTURE = Path(__file__).parent / "golden_digests.json"


class TestGoldenDigests:
    def test_every_identity_is_bit_identical(self):
        golden = json.loads(FIXTURE.read_text())
        recomputed = compute_golden()
        assert recomputed == golden

    def test_fixture_is_complete(self):
        """The fixture pins every identity family in the system."""
        golden = json.loads(FIXTURE.read_text())
        for key in (
            "model_digest_workgroup_direct",
            "block_digest_first_leaf",
            "chain_digest_pair",
            "task_seed_42_7",
            "job_digest_sweep",
            "result_digest_simple",
            "backoff_delay_job_3",
            "shard_id_wl_0_16",
            "plan_shards_100_16",
            "rendezvous_score_s_w",
            "workload_digest_sweep",
            "spec_digest_workgroup",
            "study_digest_grid",
            "event_ids",
            "estimator_state_digest",
            "fit_digest",
        ):
            assert key in golden, f"missing golden key {key}"


class TestCanonicalJson:
    def test_key_order_independent(self):
        assert canonical_json({"b": 1, "a": 2}) == canonical_json(
            {"a": 2, "b": 1}
        )

    def test_no_whitespace(self):
        assert canonical_json({"a": [1, 2]}) == b'{"a":[1,2]}'

    def test_float_repr_roundtrip(self):
        # json emits repr-based shortest round-trip floats
        assert canonical_json(0.1) == b"0.1"
        assert canonical_json(1e300) == b"1e+300"


class TestDigestHelpers:
    def test_content_digest_matches_manual(self):
        doc = {"kind": "x", "values": [1.5, 2.5]}
        manual = hashlib.sha256(
            json.dumps(
                doc, sort_keys=True, separators=(",", ":")
            ).encode("utf-8")
        ).hexdigest()
        assert content_digest(doc) == manual

    def test_digest_id_format(self):
        ident = digest_id("job", {"a": 1}, 32)
        assert ident.startswith("job-")
        assert len(ident) == 4 + 32
        assert ident == "job-" + content_digest({"a": 1})[:32]

    def test_digest_id_chars(self):
        assert len(digest_id("shard", {}, 24)) == 6 + 24

    def test_sha256_str_and_bytes_agree(self):
        assert sha256_hex("abc") == sha256_hex(b"abc")
        assert sha256_bytes("abc") == sha256_bytes(b"abc")
        assert sha256_hex("abc") == hashlib.sha256(b"abc").hexdigest()

    def test_digest_int64_range_and_determinism(self):
        value = digest_int64("rascad-task:42:7")
        assert 0 <= value < 2**64
        assert value == digest_int64("rascad-task:42:7")
        assert value != digest_int64("rascad-task:42:8")

    def test_digest_int64_matches_manual(self):
        digest = hashlib.sha256(b"material").digest()
        assert digest_int64("material") == int.from_bytes(
            digest[:8], "big"
        )

    def test_non_serializable_raises(self):
        with pytest.raises(TypeError):
            content_digest({"x": object()})
