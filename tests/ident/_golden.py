"""Shared builder for the golden-digest fixture.

The fixture freezes every content-identity the system mints — job ids,
shard ids, workload digests, registry spec digests, study ids, field
event ids, estimator state digests, engine cache keys, and the derived
deterministic integers (task seeds, rendezvous scores, backoff jitter)
— over a fixed set of inputs.  ``golden_digests.json`` was generated
by :func:`compute_golden` *before* the digest machinery moved into
:mod:`repro.ident`; the test recomputes through the current code and
asserts bit-identity, so the refactor can never silently fork an id.

Regenerate (only when an identity change is intentional) with::

    PYTHONPATH=src python tests/ident/_golden.py > \
        tests/ident/golden_digests.json
"""

from __future__ import annotations

import json
from typing import Dict


def compute_golden() -> Dict[str, object]:
    from repro.cluster.sharding import (
        plan_shards,
        rendezvous_score,
        shard_id,
    )
    from repro.cluster.workloads import SweepWorkload
    from repro.engine.keys import (
        block_digest,
        chain_digest,
        model_digest,
        task_seed,
    )
    from repro.jobs.retry import backoff_delay
    from repro.jobs.types import JobSpec, job_digest, result_digest
    from repro.library import e10000_model, workgroup_model
    from repro.registry.types import spec_digest
    from repro.spec import model_to_spec
    from repro.studies import parse_study, study_digest
    from repro.telemetry.estimator import RateEstimator
    from repro.telemetry.events import FieldEvent

    model = workgroup_model()
    spec_doc = model_to_spec(model)
    e10000 = e10000_model()

    golden: Dict[str, object] = {}

    # engine cache keys
    golden["model_digest_workgroup_direct"] = model_digest(model)
    golden["model_digest_e10000_gth"] = model_digest(e10000, "gth")
    block = next(b for b in model.root if not b.has_subdiagram)
    golden["block_digest_first_leaf"] = block_digest(
        block.parameters, model.global_parameters
    )
    from repro.markov.chain import MarkovChain

    chain = MarkovChain("pair")
    chain.add_state("Ok", reward=1.0)
    chain.add_state("Down", reward=0.0)
    chain.add_transition("Ok", "Down", 0.001)
    chain.add_transition("Down", "Ok", 0.5)
    golden["chain_digest_pair"] = chain_digest(chain)
    golden["task_seed_42_7"] = task_seed(42, 7)

    # jobs
    job = JobSpec(
        kind="sweep",
        spec=spec_doc,
        params={"field": "mtbf_hours", "block": None,
                "values": [1000.0, 2000.0, 3000.0]},
        priority=2,
        max_attempts=3,
    )
    golden["job_digest_sweep"] = job_digest(job)
    golden["result_digest_simple"] = result_digest(
        {"points": [1.0, 2.0], "model": "workgroup"}
    )
    golden["backoff_delay_job_3"] = backoff_delay(3, key="job-abcdef")

    # cluster
    golden["shard_id_wl_0_16"] = shard_id("wl-0123456789abcdef", 0, 16)
    golden["plan_shards_100_16"] = [
        shard.id for shard in plan_shards("wl-0123456789abcdef", 100, 16)
    ]
    golden["rendezvous_score_s_w"] = rendezvous_score(
        "shard-aaaa", "worker-1"
    )
    workload = SweepWorkload(
        spec_doc, "mtbf_hours", [1000.0, 2000.0, 3000.0]
    )
    golden["workload_digest_sweep"] = workload.digest

    # registry
    golden["spec_digest_workgroup"] = spec_digest(model)
    golden["spec_digest_e10000"] = spec_digest(e10000)

    # studies
    study = parse_study({
        "base": spec_doc,
        "variables": [
            {"path": None, "field": "mttm_hours",
             "values": [2.0, 4.0]},
        ],
        "strategy": "grid",
    })
    golden["study_digest_grid"] = study_digest(study)

    # telemetry
    events = [
        FieldEvent("server.disk", "u1", "failure", 10.0),
        FieldEvent("server.disk", "u1", "repair", 12.0),
        FieldEvent("server.cpu", "u2", "failure", 100.5),
    ]
    golden["event_ids"] = [event.event_id for event in events]
    estimator = RateEstimator(start_hours=0.0, window_hours=168.0)
    estimator.ingest_many(events)
    golden["estimator_state_digest"] = estimator.state_digest()
    golden["fit_digest"] = estimator.fit(
        window_end_hours=200.0, confidence=0.95
    ).digest()

    return golden


if __name__ == "__main__":
    print(json.dumps(compute_golden(), indent=2, sort_keys=True))
