"""Positional merges, digest stamping, and telemetry roll-ups."""

import pytest

from repro.cluster.config import ClusterError
from repro.cluster.merge import (
    merge_histograms,
    merge_points,
    merge_worker_metrics,
    merged_payload,
)
from repro.cluster.sharding import plan_shards
from repro.cluster.workloads import SweepWorkload
from repro.jobs.types import result_digest
from repro.obs.histogram import Histogram

DIGEST = "wl-0123456789abcdef0123456789abcdef"


def shard_results(shards, values):
    return {
        shard.id: [{"value": float(v)} for v in values[shard.lo:shard.hi]]
        for shard in shards
    }


class TestMergePoints:
    def test_concatenates_in_workload_order(self):
        values = list(range(25))
        shards = plan_shards(DIGEST, len(values), 10)
        results = shard_results(shards, values)
        merged = merge_points(reversed(shards), results)
        assert [p["value"] for p in merged] == [float(v) for v in values]

    def test_missing_shard_raises(self):
        shards = plan_shards(DIGEST, 20, 10)
        results = shard_results(shards, list(range(20)))
        del results[shards[1].id]
        with pytest.raises(ClusterError, match="has no result"):
            merge_points(shards, results)

    def test_length_mismatch_raises(self):
        shards = plan_shards(DIGEST, 20, 10)
        results = shard_results(shards, list(range(20)))
        results[shards[0].id] = results[shards[0].id][:-1]
        with pytest.raises(ClusterError, match="expected 10"):
            merge_points(shards, results)

    def test_non_tiling_plan_raises(self):
        shards = plan_shards(DIGEST, 20, 10)
        results = shard_results(shards, list(range(20)))
        with pytest.raises(ClusterError, match="does not tile"):
            merge_points(shards[1:], results)


class TestMergedPayload:
    def test_digest_matches_the_jobs_formula(self):
        spec = {"name": "m", "diagram": {"name": "m", "blocks": []}}
        workload = SweepWorkload(
            spec, "mtbf_hours", [1.0, 2.0, 3.0], model_name="m"
        )
        shards = plan_shards(workload.digest, workload.total, 2)
        results = {
            shards[0].id: [
                {"value": 1.0, "availability": 0.9},
                {"value": 2.0, "availability": 0.95},
            ],
            shards[1].id: [{"value": 3.0, "availability": 0.99}],
        }
        payload = merged_payload(workload, shards, results)
        assert [p["value"] for p in payload["points"]] == [1.0, 2.0, 3.0]
        expected = dict(payload)
        expected.pop("result_digest")
        assert payload["result_digest"] == result_digest(expected)


class TestMergeHistograms:
    def test_empty_is_none(self):
        assert merge_histograms([]) is None

    def test_counts_and_sums_add(self):
        a, b = Histogram(), Histogram()
        for value in (0.001, 0.2):
            a.observe(value)
        b.observe(4.0)
        merged = merge_histograms([a.to_dict(), b.to_dict()])
        assert merged.count == 3
        assert merged.sum == pytest.approx(4.201)

    def test_mismatched_ladders_raise(self):
        a = Histogram((0.1, 1.0))
        b = Histogram((0.5, 5.0))
        with pytest.raises(ValueError):
            merge_histograms([a.to_dict(), b.to_dict()])


class TestMergeWorkerMetrics:
    def metrics_doc(self, solves, latency_values):
        histogram = Histogram()
        for value in latency_values:
            histogram.observe(value)
        return {
            "engine": {
                "system_solves": solves,
                "counters": {"service_requests": solves * 2},
                "latency": {"/v1/solve": histogram.to_dict()},
            },
        }

    def test_counters_add_and_latency_merges(self):
        fleet = {
            "a:1": self.metrics_doc(3, [0.01, 0.02]),
            "b:1": self.metrics_doc(5, [0.5]),
        }
        rolled = merge_worker_metrics(fleet)
        assert rolled["workers"] == 2
        assert rolled["counters"]["system_solves"] == 8
        assert rolled["counters"]["service_requests"] == 16
        assert rolled["latency"]["/v1/solve"]["count"] == 3

    def test_workers_without_engine_sections_are_skipped(self):
        rolled = merge_worker_metrics({"a:1": {}, "b:1": {"engine": 7}})
        assert rolled["workers"] == 2
        assert rolled["counters"] == {}
