"""Dispatch scheduling against scripted workers: retries, steals, resume.

These tests drive the real :class:`Coordinator` machinery — shard
planning, the per-worker dispatch threads, the durable
:class:`ShardStore` — but replace the HTTP client with scripted fakes,
so failure interleavings that would be timing lotteries over real
sockets become deterministic event choreography.
"""

import hashlib
import threading
import time

import pytest

from repro.cluster.client import WorkerCallError
from repro.cluster.config import (
    ClusterConfig,
    ClusterError,
    NoWorkersError,
    ShardFailedError,
)
from repro.cluster.coordinator import Coordinator, ShardStore, _JobState
from repro.cluster.membership import Membership, worker_id_for
from repro.cluster.sharding import plan_shards


class FakeWorkload:
    """An engine-free workload: points are just their own values."""

    kind = "fake"

    def __init__(self, total=12, tag="t"):
        self.values = [float(i) for i in range(total)]
        self.digest = "wl-" + hashlib.sha256(
            f"{tag}:{total}".encode()
        ).hexdigest()[:32]

    @property
    def total(self):
        return len(self.values)

    def calls(self, lo, hi):
        return [("/fake", {"lo": lo, "hi": hi})]

    def aggregate(self, points):
        return {"kind": "fake", "points": [dict(p) for p in points]}


class ScriptedClient:
    """A worker client whose behaviour is a per-worker callable."""

    def __init__(self, url, behaviors, calls):
        self.url = url
        self.worker_id = worker_id_for(url)
        self._behaviors = behaviors
        self._calls = calls

    def execute_shard(self, workload, lo, hi, trace_header=None):
        behavior = self._behaviors.get(self.worker_id)
        if behavior is not None:
            behavior(lo, hi)
        self._calls.append((self.worker_id, lo, hi))
        return [
            {"value": value, "worker": self.worker_id}
            for value in workload.values[lo:hi]
        ]


def make_coordinator(
    workers, behaviors=None, store=None, **config_overrides
):
    config_overrides.setdefault("shard_size", 4)
    config_overrides.setdefault("heartbeat_interval", 0.01)
    config = ClusterConfig(workers=tuple(workers), **config_overrides)
    calls = []
    coordinator = Coordinator(
        Membership(lease_timeout=config.lease_timeout),
        store=store,
        config=config,
        client_factory=lambda url, timeout=None: ScriptedClient(
            url, behaviors or {}, calls
        ),
    )
    return coordinator, calls


def merged_values(payload):
    return [point["value"] for point in payload["points"]]


class TestHappyPath:
    def test_two_workers_cover_the_whole_range_in_order(self):
        coordinator, calls = make_coordinator(
            ["http://a:1", "http://b:1"]
        )
        workload = FakeWorkload(total=22)
        payload = coordinator.run_workload(workload, timeout=30)
        assert merged_values(payload) == workload.values
        assert payload["result_digest"]
        assert coordinator.jobs_completed == 1
        assert coordinator.shards_completed == 6
        # Every executed range landed exactly once in the result.
        done = sum(
            coordinator.membership.get(w).shards_done
            for w in ("a:1", "b:1")
        )
        assert done == 6

    def test_rerun_of_a_completed_workload_is_all_cache(self):
        store = ShardStore()
        coordinator, calls = make_coordinator(
            ["http://a:1"], store=store
        )
        workload = FakeWorkload(total=8)
        first = coordinator.run_workload(workload, timeout=30)
        executed = len(calls)
        second = coordinator.run_workload(workload, timeout=30)
        assert second == first
        assert len(calls) == executed  # nothing re-executed


class TestFailures:
    def test_retryable_failure_requeues_on_the_survivor(self):
        bad_failed = threading.Event()

        def bad(lo, hi):
            bad_failed.set()
            raise WorkerCallError("connection refused", retryable=True)

        def good(lo, hi):
            assert bad_failed.wait(10)

        coordinator, calls = make_coordinator(
            ["http://bad:1", "http://good:1"],
            behaviors={"bad:1": bad, "good:1": good},
        )
        workload = FakeWorkload(total=12)
        payload = coordinator.run_workload(workload, timeout=30)
        assert merged_values(payload) == workload.values
        assert {worker for worker, _, _ in calls} == {"good:1"}
        assert coordinator.membership.get("bad:1").state == "dead"
        assert coordinator.shards_retried >= 1
        assert coordinator.membership.get("bad:1").shards_failed >= 1

    def test_permanent_failure_fails_the_workload(self):
        def bad(lo, hi):
            raise WorkerCallError(
                "spec rejected", retryable=False, status=400
            )

        coordinator, _ = make_coordinator(
            ["http://a:1"], behaviors={"a:1": bad}
        )
        workload = FakeWorkload(total=8)
        with pytest.raises(WorkerCallError, match="spec rejected"):
            coordinator.run_workload(workload, timeout=30)
        # The failed shard went back on the market, not into limbo.
        states = {
            row["state"]
            for row in coordinator.store.rows(workload.digest)
        }
        assert states == {"pending"}

    def test_every_worker_dead_raises_no_workers(self):
        def bad(lo, hi):
            raise WorkerCallError("boom", retryable=True)

        coordinator, _ = make_coordinator(
            ["http://a:1", "http://b:1"],
            behaviors={"a:1": bad, "b:1": bad},
        )
        with pytest.raises(NoWorkersError):
            coordinator.run_workload(FakeWorkload(total=8), timeout=30)

    def test_empty_fleet_raises_no_workers(self):
        coordinator, _ = make_coordinator([])
        with pytest.raises(NoWorkersError):
            coordinator.run_workload(FakeWorkload(total=8), timeout=30)

    def test_deadline_raises_cluster_error(self):
        release = threading.Event()

        def stuck(lo, hi):
            release.wait(10)

        coordinator, _ = make_coordinator(
            ["http://a:1"], behaviors={"a:1": stuck}, steal_after=60.0
        )
        try:
            with pytest.raises(ClusterError, match="deadline"):
                coordinator.run_workload(FakeWorkload(total=8),
                                         timeout=0.3)
        finally:
            release.set()

    def test_exhausted_attempts_raise_shard_failed(self):
        coordinator, _ = make_coordinator(["http://a:1"])
        workload = FakeWorkload(total=4)
        shards = plan_shards(workload.digest, workload.total, 4)
        state = _JobState(shards)
        state.attempts[shards[0].id] = (
            coordinator.config.max_shard_attempts
        )
        with state.condition:
            assert coordinator._claim("a:1", state) is None
        assert isinstance(state.error, ShardFailedError)


class TestStealing:
    def test_slow_shard_is_stolen_and_first_write_wins(self):
        slow_claimed = threading.Event()
        release_slow = threading.Event()

        def slow(lo, hi):
            slow_claimed.set()
            release_slow.wait(10)

        def fast(lo, hi):
            assert slow_claimed.wait(10)

        coordinator, calls = make_coordinator(
            ["http://fast:1", "http://slow:1"],
            behaviors={"slow:1": slow, "fast:1": fast},
            steal_after=0.05,
        )
        workload = FakeWorkload(total=8)
        try:
            payload = coordinator.run_workload(workload, timeout=30)
        finally:
            release_slow.set()
        assert merged_values(payload) == workload.values
        assert coordinator.shards_stolen >= 1
        assert coordinator.membership.get("fast:1").shards_stolen >= 1
        # Let the stuck worker finish; its late completion must lose.
        time.sleep(0.1)
        results = coordinator.store.results(workload.digest)
        assert sorted(
            value
            for points in results.values()
            for value in (p["value"] for p in points)
        ) == workload.values


class TestResume:
    def test_completed_shards_are_not_reexecuted(self):
        workload = FakeWorkload(total=12)
        shards = plan_shards(workload.digest, workload.total, 4)
        store = ShardStore()
        store.plan(workload.digest, shards)
        store.lease(shards[0].id, "previous:1")
        store.complete(shards[0].id, [
            {"value": value, "worker": "previous:1"}
            for value in workload.values[shards[0].lo:shards[0].hi]
        ])

        coordinator, calls = make_coordinator(
            ["http://a:1"], store=store
        )
        payload = coordinator.run_workload(workload, timeout=30)
        assert merged_values(payload) == workload.values
        executed = {(lo, hi) for _, lo, hi in calls}
        assert (shards[0].lo, shards[0].hi) not in executed
        assert len(executed) == 2


class TestStatus:
    def test_totals_and_workers_reported(self):
        coordinator, _ = make_coordinator(["http://a:1"])
        coordinator.run_workload(FakeWorkload(total=8), timeout=30)
        status = coordinator.status()
        assert status["totals"]["jobs_completed"] == 1
        assert status["totals"]["shards_completed"] == 2
        assert [w["id"] for w in status["workers"]] == ["a:1"]
        assert status["active"] == []
        assert status["config"]["shard_size"] == 4
