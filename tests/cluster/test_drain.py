"""SIGTERM drain of a jobs worker while a cluster shard is in flight.

The scenario: a worker node is executing one cluster shard as a
checkpointed jobs run when the process receives SIGTERM.  The drain
must (1) release the job at a chunk boundary, (2) give the shard lease
back so the coordinator can re-assign it, and (3) never produce
duplicate results — whichever node's completion commits first wins,
and the merged payload is bit-identical to an uninterrupted run.
"""

import signal

import pytest

from repro.cluster.coordinator import ShardStore
from repro.cluster.merge import merged_payload
from repro.cluster.sharding import plan_shards
from repro.cluster.workloads import SweepWorkload
from repro.engine import Engine
from repro.jobs import (
    Checkpointer,
    JobSpec,
    JobStore,
    Worker,
    WorkerConfig,
    execute_job,
)
from repro.jobs.types import result_digest
from repro.library import e10000_model
from repro.spec import model_to_spec

BLOCK = "E10000 Server/Operating System"
FIELD = "mtbf_hours"
VALUES = [1e5 + 1e5 * i for i in range(8)]


class SigtermAfterFirstChunk(Checkpointer):
    """Delivers a real SIGTERM right after the first durable chunk —
    the deterministic stand-in for an operator draining the node."""

    def __init__(self, directory):
        super().__init__(directory)
        self.fired = False

    def save(self, checkpoint):
        path = super().save(checkpoint)
        if not self.fired:
            self.fired = True
            signal.raise_signal(signal.SIGTERM)
        return path


@pytest.fixture
def preserved_handlers():
    originals = {
        signum: signal.getsignal(signum)
        for signum in (signal.SIGTERM, signal.SIGINT)
    }
    yield
    for signum, handler in originals.items():
        signal.signal(signum, handler)


def sweep_points(engine, values):
    return [
        {
            "value": point.value,
            "availability": point.availability,
            "yearly_downtime_minutes": point.yearly_downtime_minutes,
        }
        for point in engine.sweep_block_field(
            e10000_model(), BLOCK, FIELD, values
        )
    ]


def test_drained_shard_is_released_and_finished_elsewhere(
    tmp_path, preserved_handlers
):
    workload = SweepWorkload(
        model_to_spec(e10000_model()), FIELD, VALUES, block=BLOCK
    )
    shards = plan_shards(workload.digest, workload.total, 4)
    shard_store = ShardStore(str(tmp_path / "cluster.sqlite3"))
    shard_store.plan(workload.digest, shards)

    # Node A leases the first shard and starts it as a jobs run.
    first = shards[0]
    assert shard_store.lease(first.id, "node-a:8100") == 1
    job_store = JobStore(tmp_path / "jobs.sqlite3")
    job_spec = JobSpec(
        kind="sweep",
        spec=workload.spec,
        params={
            "field": FIELD,
            "block": BLOCK,
            "values": workload.values[first.lo:first.hi],
        },
    )
    record, _ = job_store.submit(job_spec)
    checkpointer = SigtermAfterFirstChunk(tmp_path / "checkpoints")
    worker_a = Worker(
        job_store,
        Engine(jobs=1, cache_dir=tmp_path / "cache-a"),
        checkpointer,
        WorkerConfig(name="node-a", once=True, checkpoint_every=1),
    )
    worker_a.install_signal_handlers()
    worker_a.run()

    # The SIGTERM landed mid-job: the run stopped at a chunk boundary
    # with a durable checkpoint, well short of the full shard.
    assert checkpointer.fired
    checkpoint = checkpointer.load(record.id)
    assert checkpoint is not None
    assert 0 < len(checkpoint.values) < first.size
    assert job_store.get(record.id).state == "queued"  # released

    # Node A's drain handler gives the shard lease back.
    assert shard_store.release(first.id, worker="node-a:8100") is True
    rows = {row["id"]: row for row in shard_store.rows(workload.digest)}
    assert rows[first.id]["state"] == "pending"

    # The shard is re-assignable: node B leases it (attempt 2) and
    # resumes the released job from node A's checkpoint.
    assert shard_store.lease(first.id, "node-b:8100") == 2
    engine_b = Engine(jobs=1, cache_dir=tmp_path / "cache-b")
    resumed = job_store.lease("node-b")
    assert resumed.id == record.id
    assert execute_job(
        resumed, job_store, engine_b,
        Checkpointer(tmp_path / "checkpoints"),
    ) == "succeeded"
    finished = job_store.get(record.id)
    assert shard_store.complete(
        first.id, finished.result["points"]
    ) is True

    # Node A comes back from the dead with a stale duplicate: it loses.
    assert shard_store.complete(
        first.id, finished.result["points"]
    ) is False

    # Node B finishes the remaining shard and the merge is
    # bit-identical to an uninterrupted single-process run.
    second = shards[1]
    assert shard_store.lease(second.id, "node-b:8100") == 1
    assert shard_store.complete(
        second.id, sweep_points(engine_b, VALUES[second.lo:second.hi])
    ) is True
    payload = merged_payload(
        workload, shards, shard_store.results(workload.digest)
    )

    reference = workload.aggregate(
        sweep_points(Engine(jobs=1, cache_dir=tmp_path / "cache-ref"),
                     VALUES)
    )
    reference["result_digest"] = result_digest(reference)
    assert payload == reference
    shard_store.close()
