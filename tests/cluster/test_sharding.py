"""Shard planning and rendezvous placement: determinism and tiling."""

import random

import pytest

from repro.cluster.sharding import (
    assign_shards,
    pick_shard,
    plan_shards,
    preferred_worker,
    rendezvous_score,
    shard_id,
)

DIGEST = "wl-0123456789abcdef0123456789abcdef"


class TestPlan:
    def test_tiles_the_range_exactly(self):
        shards = plan_shards(DIGEST, 37, 10)
        assert [(s.lo, s.hi) for s in shards] == [
            (0, 10), (10, 20), (20, 30), (30, 37)
        ]
        assert [s.index for s in shards] == [0, 1, 2, 3]
        assert shards[-1].size == 7

    def test_single_shard_when_total_fits(self):
        shards = plan_shards(DIGEST, 5, 16)
        assert [(s.lo, s.hi) for s in shards] == [(0, 5)]

    def test_ids_are_content_digests(self):
        again = plan_shards(DIGEST, 37, 10)
        assert [s.id for s in again] == [s.id for s in plan_shards(
            DIGEST, 37, 10)]
        assert all(s.id == shard_id(DIGEST, s.lo, s.hi) for s in again)
        assert len({s.id for s in again}) == len(again)

    def test_different_workloads_get_different_ids(self):
        other = "wl-ffffffffffffffffffffffffffffffff"
        assert shard_id(DIGEST, 0, 10) != shard_id(other, 0, 10)
        assert shard_id(DIGEST, 0, 10) != shard_id(DIGEST, 0, 11)

    @pytest.mark.parametrize("total,size", [(0, 4), (4, 0), (-1, 4)])
    def test_rejects_degenerate_plans(self, total, size):
        with pytest.raises(ValueError):
            plan_shards(DIGEST, total, size)


class TestRendezvous:
    WORKERS = ["host-a:8100", "host-b:8100", "host-c:8100"]

    def test_score_is_deterministic(self):
        sid = shard_id(DIGEST, 0, 10)
        assert rendezvous_score(sid, "host-a:8100") == rendezvous_score(
            sid, "host-a:8100"
        )

    def test_preferred_worker_is_stable_under_unrelated_removal(self):
        # The rendezvous property: removing a worker only moves the
        # shards that preferred it.
        shards = plan_shards(DIGEST, 200, 10)
        for victim in self.WORKERS:
            remaining = [w for w in self.WORKERS if w != victim]
            for shard in shards:
                before = preferred_worker(shard.id, self.WORKERS)
                after = preferred_worker(shard.id, remaining)
                if before != victim:
                    assert after == before

    def test_assignment_covers_every_shard_once(self):
        shards = plan_shards(DIGEST, 200, 10)
        placement = assign_shards(shards, self.WORKERS)
        placed = [s.id for group in placement.values() for s in group]
        assert sorted(placed) == sorted(s.id for s in shards)

    def test_assignment_spreads_across_the_fleet(self):
        shards = plan_shards(DIGEST, 320, 4)
        placement = assign_shards(shards, self.WORKERS)
        assert all(placement[worker] for worker in self.WORKERS)

    def test_no_workers_raises(self):
        with pytest.raises(ValueError):
            preferred_worker(shard_id(DIGEST, 0, 10), [])


class TestPickShard:
    def test_empty_pending_returns_none(self):
        assert pick_shard("host-a:8100", []) is None

    def test_pick_is_independent_of_pending_order(self):
        shards = plan_shards(DIGEST, 100, 10)
        reference = pick_shard("host-b:8100", shards)
        for seed in range(5):
            shuffled = list(shards)
            random.Random(seed).shuffle(shuffled)
            assert pick_shard("host-b:8100", shuffled) == reference

    def test_pick_is_the_highest_score_for_that_worker(self):
        shards = plan_shards(DIGEST, 100, 10)
        picked = pick_shard("host-c:8100", shards)
        best = max(
            rendezvous_score(s.id, "host-c:8100") for s in shards
        )
        assert rendezvous_score(picked.id, "host-c:8100") == best

    def test_workers_drain_their_own_assignment_first(self):
        shards = plan_shards(DIGEST, 100, 10)
        workers = ["host-a:8100", "host-b:8100"]
        placement = assign_shards(shards, workers)
        for worker in workers:
            if placement[worker]:
                picked = pick_shard(worker, shards)
                assert preferred_worker(picked.id, workers) == worker
