"""Workload shapes: digests, shard calls, extraction, aggregation."""

import numpy as np
import pytest

from repro.cluster.workloads import (
    BatchSolveWorkload,
    SweepWorkload,
    UncertaintyWorkload,
    uncertainty_workload,
)
from repro.errors import SpecError
from repro.library import e10000_model
from repro.spec import model_to_spec
from repro.units import MINUTES_PER_YEAR

SPEC = {"name": "m", "diagram": {"name": "m", "blocks": []}}


class TestSweepWorkload:
    def workload(self, values=(1.0, 2.0, 3.0, 4.0)):
        return SweepWorkload(
            SPEC, "mtbf_hours", values, block="m/Disk", model_name="m"
        )

    def test_digest_is_content_addressed(self):
        assert self.workload().digest == self.workload().digest
        assert self.workload().digest != self.workload((9.0,)).digest
        assert self.workload().digest.startswith("wl-")

    def test_shard_call_carries_the_value_slice(self):
        calls = self.workload().calls(1, 3)
        assert len(calls) == 1
        path, payload = calls[0]
        assert path == "/v1/sweep"
        assert payload["values"] == [2.0, 3.0]
        assert payload["block"] == "m/Disk"
        # Shards must never fan out again on a coordinator worker.
        assert payload["cluster"] is False

    def test_extract_validates_point_count(self):
        workload = self.workload()
        points = workload.extract(
            [{"points": [{"value": 2.0}, {"value": 3.0}]}], 1, 3
        )
        assert [p["value"] for p in points] == [2.0, 3.0]
        with pytest.raises(SpecError, match="1 points"):
            workload.extract([{"points": [{"value": 2.0}]}], 1, 3)
        with pytest.raises(SpecError, match="0 points"):
            workload.extract([{"points": None}], 1, 3)

    def test_aggregate_matches_the_jobs_result_shape(self):
        payload = self.workload().aggregate([{"value": 1.0}])
        assert payload == {
            "kind": "sweep", "model": "m", "field": "mtbf_hours",
            "block": "m/Disk", "points": [{"value": 1.0}],
        }

    def test_empty_values_rejected(self):
        with pytest.raises(SpecError):
            SweepWorkload(SPEC, "mtbf_hours", [])


class TestBatchSolveWorkload:
    def test_one_solve_call_per_spec(self):
        specs = [dict(SPEC, name=f"m{i}") for i in range(5)]
        workload = BatchSolveWorkload(specs, solver={"method": "direct"})
        calls = workload.calls(2, 5)
        assert [path for path, _ in calls] == ["/v1/solve"] * 3
        assert [p["spec"]["name"] for _, p in calls] == ["m2", "m3", "m4"]
        assert all(p["solver"] == {"method": "direct"} for _, p in calls)

    def test_extract_projects_point_fields(self):
        workload = BatchSolveWorkload([SPEC, SPEC])
        bodies = [
            {"model": "m", "availability": 0.9,
             "yearly_downtime_minutes": 5.0, "mttf_hours": 1.0,
             "extra": "dropped"},
            {"model": "m", "availability": 0.99,
             "yearly_downtime_minutes": 1.0, "mttf_hours": 2.0},
        ]
        points = workload.extract(bodies, 0, 2)
        assert all("extra" not in point for point in points)
        assert [p["availability"] for p in points] == [0.9, 0.99]
        with pytest.raises(SpecError, match="1 results"):
            workload.extract(bodies[:1], 0, 2)


class TestUncertaintyWorkload:
    UNCERTAIN = [{
        "path": "E10000 Server/Operating System",
        "field": "mtbf_hours",
        "distribution": {"type": "uniform", "low": 1e5, "high": 5e5},
    }]

    def test_same_seed_draws_the_same_variants(self):
        spec = model_to_spec(e10000_model())
        a = uncertainty_workload(spec, self.UNCERTAIN, samples=4, seed=7)
        b = uncertainty_workload(spec, self.UNCERTAIN, samples=4, seed=7)
        assert a.digest == b.digest
        assert a.specs == b.specs
        c = uncertainty_workload(spec, self.UNCERTAIN, samples=4, seed=8)
        assert c.digest != a.digest

    def test_variants_actually_vary_the_field(self):
        spec = model_to_spec(e10000_model())
        workload = uncertainty_workload(
            spec, self.UNCERTAIN, samples=4, seed=7
        )
        assert workload.total == 4
        assert len({str(variant) for variant in workload.specs}) == 4

    def test_aggregate_uses_the_jobs_formulas(self):
        workload = UncertaintyWorkload([SPEC, SPEC, SPEC], model_name="m")
        availabilities = [0.9, 0.95, 0.99]
        payload = workload.aggregate(
            [{"availability": a} for a in availabilities]
        )
        arr = np.asarray(availabilities)
        downtimes = (1.0 - arr) * MINUTES_PER_YEAR
        assert payload["samples"] == 3
        assert payload["mean_availability"] == float(arr.mean())
        assert payload["std_availability"] == float(arr.std(ddof=1))
        assert payload["downtime_p50"] == float(
            np.percentile(downtimes, 50.0)
        )

    def test_guards(self):
        spec = model_to_spec(e10000_model())
        with pytest.raises(SpecError, match="at least 2 samples"):
            uncertainty_workload(spec, self.UNCERTAIN, samples=1)
        with pytest.raises(SpecError, match="uncertain"):
            uncertainty_workload(spec, [], samples=4)
        with pytest.raises(SpecError, match="missing"):
            uncertainty_workload(
                spec, [{"path": "x", "field": "y"}], samples=4
            )
