"""Worker registration, heartbeat leases, and liveness transitions."""

import pytest

from repro.cluster.config import ClusterError
from repro.cluster.membership import Membership, worker_id_for


class TestWorkerId:
    def test_strips_scheme(self):
        assert worker_id_for("http://node-1:8100") == "node-1:8100"

    def test_bare_host_port_accepted(self):
        assert worker_id_for("node-1:8100") == "node-1:8100"

    def test_malformed_url_raises(self):
        with pytest.raises(ClusterError):
            worker_id_for("http://")


class TestRegistration:
    def test_register_then_get(self):
        members = Membership()
        info = members.register("http://node-1:8100", now=100.0)
        assert info.id == "node-1:8100"
        assert members.get("node-1:8100") is info
        assert info.state == "alive"

    def test_reregistration_is_a_heartbeat(self):
        members = Membership()
        members.register("http://node-1:8100", now=100.0)
        info = members.register("http://node-1:8100", now=250.0)
        assert info.heartbeat_at == 250.0
        assert len(members) == 1

    def test_reregistration_revives_a_dead_worker(self):
        members = Membership()
        members.register("http://node-1:8100", now=100.0)
        members.mark_dead("node-1:8100", "connection refused")
        assert members.get("node-1:8100").state == "dead"
        info = members.register("http://node-1:8100", now=110.0)
        assert info.state == "alive"
        assert info.last_error is None

    def test_static_flag_is_sticky(self):
        members = Membership()
        members.register("http://node-1:8100", static=True, now=100.0)
        info = members.register("http://node-1:8100", now=200.0)
        assert info.static


class TestHeartbeat:
    def test_unknown_worker_returns_false(self):
        assert Membership().heartbeat("ghost:1") is False

    def test_heartbeat_revives(self):
        members = Membership()
        members.register("http://node-1:8100", now=100.0)
        members.mark_dead("node-1:8100")
        assert members.heartbeat("node-1:8100", now=105.0) is True
        assert members.get("node-1:8100").state == "alive"


class TestLiveness:
    def test_dynamic_worker_expires_without_heartbeats(self):
        members = Membership(lease_timeout=10.0)
        members.register("http://node-1:8100", now=100.0)
        assert [w.id for w in members.alive(now=105.0)] == ["node-1:8100"]
        assert members.alive(now=120.0) == []
        # A fresh heartbeat brings it back into placement.
        members.heartbeat("node-1:8100", now=121.0)
        assert [w.id for w in members.alive(now=122.0)] == ["node-1:8100"]

    def test_static_worker_never_lease_expires(self):
        members = Membership(lease_timeout=10.0)
        members.register("http://node-1:8100", static=True, now=100.0)
        assert [w.id for w in members.alive(now=10_000.0)] == [
            "node-1:8100"
        ]

    def test_dead_worker_excluded_even_with_fresh_lease(self):
        members = Membership(lease_timeout=10.0)
        members.register("http://node-1:8100", now=100.0)
        members.mark_dead("node-1:8100")
        assert members.alive(now=101.0) == []

    def test_alive_is_sorted_by_id(self):
        members = Membership()
        for host in ("node-3", "node-1", "node-2"):
            members.register(f"http://{host}:8100", now=100.0)
        assert [w.id for w in members.alive(now=100.0)] == [
            "node-1:8100", "node-2:8100", "node-3:8100"
        ]

    def test_snapshot_marks_expired_leases(self):
        members = Membership(lease_timeout=10.0)
        members.register("http://node-1:8100", now=100.0)
        members.register("http://node-2:8100", static=True, now=100.0)
        rows = {row["id"]: row for row in members.snapshot(now=200.0)}
        assert rows["node-1:8100"]["state"] == "lease_expired"
        assert rows["node-2:8100"]["state"] == "alive"

    def test_invalid_lease_timeout_rejected(self):
        with pytest.raises(ClusterError):
            Membership(lease_timeout=0.0)


class TestCounters:
    def test_record_accumulates(self):
        members = Membership()
        members.register("http://node-1:8100", now=100.0)
        members.record("node-1:8100", "shards_done")
        members.record("node-1:8100", "shards_done")
        members.record("node-1:8100", "in_flight")
        members.record("node-1:8100", "in_flight", -1)
        info = members.get("node-1:8100")
        assert info.shards_done == 2
        assert info.in_flight == 0

    def test_record_on_unknown_worker_is_a_noop(self):
        Membership().record("ghost:1", "shards_done")
