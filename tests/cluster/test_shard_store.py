"""Durable shard lifecycle: leases, first-write-wins, resume."""

import pytest

from repro.cluster.coordinator import ShardStore
from repro.cluster.sharding import plan_shards

DIGEST = "wl-0123456789abcdef0123456789abcdef"


@pytest.fixture
def store():
    shard_store = ShardStore()
    yield shard_store
    shard_store.close()


def planned(store, total=40, size=10):
    shards = plan_shards(DIGEST, total, size)
    store.plan(DIGEST, shards)
    return shards


class TestPlanning:
    def test_plan_creates_pending_rows(self, store):
        shards = planned(store)
        assert store.counts(DIGEST) == {"pending": len(shards)}
        rows = store.rows(DIGEST)
        assert [row["idx"] for row in rows] == [0, 1, 2, 3]
        assert all(row["attempts"] == 0 for row in rows)

    def test_replanning_preserves_done_rows(self, store):
        shards = planned(store)
        store.lease(shards[0].id, "node-1:8100")
        store.complete(shards[0].id, [{"value": 1.0}])
        store.plan(DIGEST, shards)
        counts = store.counts(DIGEST)
        assert counts == {"done": 1, "pending": len(shards) - 1}
        assert shards[0].id in store.results(DIGEST)

    def test_replanning_releases_orphaned_running_rows(self, store):
        # A coordinator restart: whoever held these leases is gone.
        shards = planned(store)
        store.lease(shards[1].id, "node-1:8100")
        store.plan(DIGEST, shards)
        rows = {row["id"]: row for row in store.rows(DIGEST)}
        assert rows[shards[1].id]["state"] == "pending"
        assert rows[shards[1].id]["worker"] is None
        # The attempt it burned stays counted.
        assert rows[shards[1].id]["attempts"] == 1


class TestLifecycle:
    def test_lease_counts_attempts(self, store):
        shards = planned(store)
        assert store.lease(shards[0].id, "a:1") == 1
        assert store.release(shards[0].id)
        assert store.lease(shards[0].id, "b:1") == 2

    def test_complete_is_first_write_wins(self, store):
        shards = planned(store)
        store.lease(shards[0].id, "a:1")
        assert store.complete(shards[0].id, [{"value": 1.0}]) is True
        assert store.complete(shards[0].id, [{"value": 9.0}]) is False
        assert store.results(DIGEST)[shards[0].id] == [{"value": 1.0}]

    def test_lease_of_a_done_shard_returns_zero(self, store):
        shards = planned(store)
        store.lease(shards[0].id, "a:1")
        store.complete(shards[0].id, [])
        assert store.lease(shards[0].id, "b:1") == 0

    def test_lease_from_running_is_a_steal(self, store):
        shards = planned(store)
        assert store.lease(shards[0].id, "slow:1") == 1
        assert store.lease(shards[0].id, "thief:1") == 2
        rows = {row["id"]: row for row in store.rows(DIGEST)}
        assert rows[shards[0].id]["worker"] == "thief:1"

    def test_conditional_release_respects_the_current_holder(self, store):
        shards = planned(store)
        store.lease(shards[0].id, "slow:1")
        store.lease(shards[0].id, "thief:1")
        # The slow worker's late failure must not release the thief's
        # lease.
        assert store.release(shards[0].id, worker="slow:1") is False
        assert store.release(shards[0].id, worker="thief:1") is True

    def test_unconditional_release_only_touches_running(self, store):
        shards = planned(store)
        assert store.release(shards[0].id) is False
        store.lease(shards[0].id, "a:1")
        store.complete(shards[0].id, [])
        assert store.release(shards[0].id) is False


class TestResume:
    def test_results_survive_a_new_connection(self, tmp_path):
        path = str(tmp_path / "cluster.sqlite3")
        first = ShardStore(path)
        shards = plan_shards(DIGEST, 20, 10)
        first.plan(DIGEST, shards)
        first.lease(shards[0].id, "a:1")
        first.complete(shards[0].id, [{"value": 1.0}, {"value": 2.0}])
        first.lease(shards[1].id, "a:1")  # in flight at the crash
        first.close()

        second = ShardStore(path)
        second.plan(DIGEST, plan_shards(DIGEST, 20, 10))
        counts = second.counts(DIGEST)
        assert counts == {"done": 1, "pending": 1}
        assert second.results(DIGEST)[shards[0].id] == [
            {"value": 1.0}, {"value": 2.0}
        ]
        second.close()

    def test_jobs_are_isolated_by_digest(self, store):
        shards_a = planned(store)
        other = "wl-ffffffffffffffffffffffffffffffff"
        store.plan(other, plan_shards(other, 10, 10))
        assert len(store.rows(DIGEST)) == len(shards_a)
        assert len(store.rows(other)) == 1
        assert store.counts(other) == {"pending": 1}
