"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.core import BlockParameters, GlobalParameters
from repro.gmb import MarkovBuilder


@pytest.fixture
def globals_default() -> GlobalParameters:
    return GlobalParameters()


@pytest.fixture
def simple_pair_chain():
    """A 2-state repairable component: fail at 1e-3/h, repair at 0.25/h."""
    return (
        MarkovBuilder("pair")
        .up("Ok")
        .down("Down")
        .arc("Ok", "Down", 1e-3)
        .arc("Down", "Ok", 0.25)
        .build()
    )


@pytest.fixture
def type0_params() -> BlockParameters:
    return BlockParameters(
        name="board",
        quantity=1,
        min_required=1,
        mtbf_hours=100_000.0,
        transient_fit=2_000.0,
        diagnosis_minutes=30.0,
        corrective_minutes=30.0,
        verification_minutes=30.0,
        service_response_hours=4.0,
        p_correct_diagnosis=0.95,
    )


@pytest.fixture
def redundant_params() -> BlockParameters:
    """A 2-of-1 redundant block exercising every redundancy feature."""
    return BlockParameters(
        name="cpu",
        quantity=2,
        min_required=1,
        mtbf_hours=50_000.0,
        transient_fit=10_000.0,
        p_latent_fault=0.05,
        mttdlf_hours=24.0,
        recovery="nontransparent",
        ar_time_minutes=10.0,
        p_spf=0.02,
        spf_recovery_minutes=30.0,
        repair="transparent",
        p_correct_diagnosis=0.95,
    )


@pytest.fixture
def stress_params() -> BlockParameters:
    """Low-reliability parameters: differences are visible to Monte Carlo."""
    return BlockParameters(
        name="unit",
        quantity=2,
        min_required=1,
        mtbf_hours=2_000.0,
        transient_fit=2e5,
        p_latent_fault=0.10,
        p_spf=0.05,
        p_correct_diagnosis=0.90,
        mttdlf_hours=24.0,
        recovery="nontransparent",
        repair="nontransparent",
    )
