#!/usr/bin/env python3
"""CI smoke test: the field-telemetry loop end to end, with real processes.

1. Render a deterministic field trace with ``rascad events replay``
   (Boot Disk at 1 % of its datasheet MTBF) and ingest it over HTTP
   into a live ``rascad serve`` — twice, asserting the replay is fully
   deduplicated.
2. Run an uninterrupted ``kind="calibration"`` job on a much longer
   trace as the reference, then SIGKILL a real ``rascad jobs worker``
   subprocess mid-ingest and resume it with a fresh worker: the
   resumed result — proposal digest and estimator state digest — must
   be byte-identical to the reference.
3. Drive the HTTP calibration routes: propose (digest must match the
   direct in-process proposal for the same events), publish untagged
   with calibration provenance, and watch the regression gate 409 a
   tagged publish against the better datasheet model.

Run from the repository root::

    PYTHONPATH=src python tools/telemetry_smoke.py
"""

from __future__ import annotations

import json
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

from _smoke_common import Fleet, cli, get_json, post_json, subprocess_env

from repro.engine import Engine  # noqa: E402
from repro.jobs import (  # noqa: E402
    Checkpointer,
    JobSpec,
    JobStore,
    Worker,
    WorkerConfig,
)
from repro.library import e10000_model  # noqa: E402
from repro.registry import open_registry  # noqa: E402
from repro.spec import model_to_spec  # noqa: E402
from repro.telemetry import (  # noqa: E402
    RateEstimator,
    build_proposal,
    synthetic_field_events,
)

BOOT_DISK = "E10000 Server/Boot Disk"
TRACE_WINDOW = 10_950.0      # the 15-month HTTP trace (40 events)
JOB_WINDOW = 200_000.0       # the long trace the crash test chunks
SEED = 3


def calibration_job_spec(spec: dict) -> JobSpec:
    return JobSpec(
        kind="calibration",
        spec=spec,
        params={
            "source": {
                "kind": "synthetic",
                "seed": SEED,
                "window_hours": JOB_WINDOW,
                "shifts": {BOOT_DISK: 0.01},
            },
            "chunk_events": 1,
        },
    )


def reference_run(base: Path, spec: dict) -> dict:
    store = JobStore(base / "ref.sqlite3")
    record, _ = store.submit(calibration_job_spec(spec))
    Worker(
        store,
        Engine(jobs=1, cache_dir=base / "ref-cache"),
        Checkpointer(base / "ref-checkpoints"),
        WorkerConfig(once=True, checkpoint_every=1),
    ).run()
    done = store.get(record.id)
    assert done.state == "succeeded", done.state
    return done.result


def crash_and_resume(base: Path, spec: dict, reference: dict) -> None:
    store = JobStore(base / "jobs.sqlite3")
    checkpointer = Checkpointer(base / "checkpoints")
    record, _ = store.submit(calibration_job_spec(spec))
    env = subprocess_env()

    worker = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "jobs", "worker",
            "--db", str(store.path),
            "--cache-dir", str(base / "crash-cache"),
            "--checkpoint-every", "1",
            "--poll", "0.1",
        ],
        env=env, stdout=subprocess.DEVNULL, stderr=subprocess.STDOUT,
    )

    # Wait for a few durable chunks, then kill without ceremony.
    ckpt_path = checkpointer.path(record.id)
    deadline = time.monotonic() + 120.0
    while time.monotonic() < deadline:
        checkpoint = checkpointer.load(record.id) if ckpt_path.exists() else None
        if checkpoint is not None and len(checkpoint.values) >= 5:
            break
        if worker.poll() is not None:
            raise AssertionError("worker exited before checkpointing")
        time.sleep(0.005)
    else:
        raise AssertionError("no checkpoint progress within 120 s")
    worker.send_signal(signal.SIGKILL)
    worker.wait()

    completed = len(checkpointer.load(record.id).values)
    total = reference["events_total"]
    print(f"SIGKILLed worker after {completed}/{total} durable chunks")
    assert 0 < completed < total, completed
    assert store.get(record.id).state == "running"  # lease left behind

    resumed = subprocess.run(
        [
            sys.executable, "-m", "repro", "jobs", "worker",
            "--db", str(store.path),
            "--cache-dir", str(base / "resume-cache"),
            "--checkpoint-every", "1",
            "--lease-timeout", "2.0",
            "--poll", "0.1",
            "--max-jobs", "1",
        ],
        env=env, timeout=300,
    )
    assert resumed.returncode == 0, resumed.returncode

    final = store.get(record.id)
    assert final.state == "succeeded", (final.state, final.error)
    assert final.result == reference, "resumed payload differs"
    assert (
        final.result["proposal"]["proposal_digest"]
        == reference["proposal"]["proposal_digest"]
    )
    assert final.result["state_digest"] == reference["state_digest"]
    print(
        "resume bit-identical: proposal "
        f"{final.result['proposal']['proposal_digest'][:16]}..., state "
        f"{final.result['state_digest'][:16]}..."
    )


def main() -> int:
    base = Path(tempfile.mkdtemp(prefix="rascad-telemetry-smoke-"))
    print(f"workdir: {base}")

    spec = model_to_spec(e10000_model())
    spec_path = base / "model.json"
    spec_path.write_text(json.dumps(spec))

    # The direct in-process proposal for the 15-month trace — the
    # digest every other path must reproduce.
    events = synthetic_field_events(
        e10000_model(), window_hours=TRACE_WINDOW, seed=SEED,
        mtbf_shifts={BOOT_DISK: 0.01},
    )
    estimator = RateEstimator(window_hours=168.0)
    estimator.ingest_many(events)
    engine = Engine(jobs=1, cache_dir=base / "direct-cache")
    direct = build_proposal(estimator, e10000_model(), engine)
    print(f"direct proposal digest: {direct['proposal_digest'][:16]}...")

    # Seed the registry's prod tag with the (much better) datasheet
    # model, so the gate has something to defend.
    registry_db = base / "registry.sqlite3"
    registry = open_registry(db_path=registry_db, engine=engine)
    registry.publish(spec, "e10000", tag="prod")
    registry.close()

    with Fleet(base) as fleet:
        try:
            url = fleet.spawn_server(
                "server",
                [
                    "serve", "--jobs", "1",
                    "--cache-dir", str(base / "server-cache"),
                    "--registry-db", str(registry_db),
                ],
            )

            # 1. Replay a trace to a file, ingest it over HTTP, twice.
            trace_path = base / "trace.json"
            rc = cli(
                "events", "replay", str(spec_path),
                "--window", str(TRACE_WINDOW), "--seed", str(SEED),
                "--shift", f"{BOOT_DISK}=0.01",
                "--out", str(trace_path),
            )
            assert rc == 0, rc
            for attempt in ("ingest", "replay"):
                rc = cli(
                    "events", "ingest", str(trace_path),
                    "--url", url, "--batch-size", "7",
                )
                assert rc == 0, (attempt, rc)
            status_doc = get_json(f"{url}/v1/calibration")
            assert status_doc["events_total"] == len(events), status_doc
            print(
                f"HTTP ingest: {status_doc['events_total']} events, "
                "replay fully deduplicated"
            )

            # 2. The crash test on the long trace.
            reference = reference_run(base, spec)
            crash_and_resume(base, spec, reference)

            # 3. HTTP propose/publish and the regression gate.
            status, body = post_json(
                f"{url}/v1/calibration/propose", {"spec": spec}
            )
            assert status == 201, (status, body)
            proposal = body["proposal"]
            assert proposal["proposal_digest"] == direct["proposal_digest"], (
                proposal["proposal_digest"], direct["proposal_digest"]
            )
            print("HTTP proposal digest matches the direct path")

            status, body = post_json(
                f"{url}/v1/calibration/publish", {"name": "e10000"}
            )
            assert status == 201, (status, body)
            assert body["created"] is True, body
            assert body["version"]["source"]["source"] == "calibration"
            print(
                "published calibration version "
                f"{body['version']['digest'][:12]} (untagged)"
            )

            status, body = post_json(
                f"{url}/v1/calibration/publish",
                {"name": "e10000", "tag": "prod"},
            )
            assert status == 409, (status, body)
            assert body["error"]["code"] == "regression_detected", body
            print("regression gate 409'd the tagged publish, as it must")
        except BaseException:
            fleet.dump_logs()
            raise

    print(
        "PASS: ingest idempotent, SIGKILL resume bit-identical, "
        "proposal digests agree on every path, gate enforced"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
