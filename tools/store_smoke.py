#!/usr/bin/env python3
"""CI smoke test: hammer one database through a live server, then
check and back it up online.

The end-to-end path the ``repro.store`` substrate promises:

1. Start a real ``rascad serve`` with a cache directory, so the jobs,
   cluster, registry, studies, and telemetry stores all live in SQLite
   files under one root.
2. Hammer ``POST /v1/jobs`` from concurrent threads — every submit is
   a write transaction against the same ``jobs.sqlite3``, so lock
   contention (the busy-retry path) is exercised for real.  A 503
   ``store_busy`` answer is acceptable; a torn write is not.
3. Assert ``/metrics`` exposes the ``storage`` section with non-zero
   transaction counts.
4. Stop the server, then run the operational verbs:
   ``rascad db status`` / ``rascad db check`` (must be ``ok``) /
   ``rascad db backup``.
5. Assert each backup is logically identical to its source — the
   SQL dump of both files has the same content digest.

Run from the repository root::

    PYTHONPATH=src python tools/store_smoke.py
"""

from __future__ import annotations

import json
import sys
import tempfile
import threading
from pathlib import Path

from _smoke_common import Fleet, get_json, post_json, cli

from repro.ident import sha256_hex  # noqa: E402
from repro.library import workgroup_model  # noqa: E402
from repro.spec import model_to_spec  # noqa: E402
from repro.store import SqliteStore, discover_databases  # noqa: E402

WRITERS = 8
SUBMITS_PER_WRITER = 10


def hammer(url: str, spec: dict, worker: int, failures: list) -> None:
    """Submit distinct jobs; only busy backpressure is tolerated."""
    for index in range(SUBMITS_PER_WRITER):
        value = 1e5 + worker * 1e4 + index
        status, payload = post_json(f"{url}/v1/jobs", {
            "kind": "sweep",
            "spec": spec,
            "params": {"field": "mtbf_hours", "values": [value]},
        })
        if status not in (200, 202) and not (
            status == 503
            and payload.get("error", {}).get("code") == "store_busy"
        ):
            failures.append((worker, index, status, payload))


def dump_digest(path: Path) -> str:
    """Content digest of a database's full SQL dump."""
    store = SqliteStore(path)
    try:
        with store.connection() as conn:
            dump = "\n".join(conn.iterdump())
    finally:
        store.close()
    return sha256_hex(dump.encode("utf-8"))


def main() -> int:
    spec = model_to_spec(workgroup_model())
    with tempfile.TemporaryDirectory() as scratch:
        base = Path(scratch)
        cache_dir = base / "cache"
        with Fleet(base) as fleet:
            url = fleet.spawn_server(
                "server", ["serve", "--cache-dir", str(cache_dir)]
            )
            failures: list = []
            threads = [
                threading.Thread(
                    target=hammer, args=(url, spec, worker, failures)
                )
                for worker in range(WRITERS)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert not failures, f"unexpected responses: {failures[:5]}"

            jobs = get_json(f"{url}/v1/jobs?limit=500")
            total = WRITERS * SUBMITS_PER_WRITER
            assert len(jobs["jobs"]) == total, (
                f"expected {total} jobs, found {len(jobs['jobs'])}"
            )

            metrics = get_json(f"{url}/metrics")
            storage = metrics["storage"]
            assert storage["jobs"]["transactions"] >= total
            assert storage["jobs"]["user_version"] >= 1
            for name in ("jobs", "registry", "studies", "telemetry"):
                assert storage[name]["mode"] == "file", storage[name]

            # A coordinator against the same cache materialises the
            # fifth database (cluster.sqlite3 beside jobs.sqlite3)
            # and shares the jobs store across two live processes.
            coordinator = fleet.spawn_server(
                "coordinator",
                ["cluster", "coordinator",
                 "--jobs-db", str(cache_dir / "jobs.sqlite3")],
            )
            coordinator_storage = get_json(
                f"{coordinator}/metrics"
            )["storage"]
            assert coordinator_storage["cluster"]["mode"] == "file"
            assert (
                coordinator_storage["jobs"]["user_version"]
                == storage["jobs"]["user_version"]
            )
        # Fleet.__exit__ has terminated both servers: content is stable.

        databases = discover_databases(cache_dir)
        names = sorted(entry["name"] for entry in databases)
        assert names == [
            "cluster", "jobs", "registry", "studies", "telemetry"
        ], names

        backups = base / "backups"
        assert cli("db", "status", "--cache-dir", str(cache_dir)) == 0
        assert cli("db", "check", "--cache-dir", str(cache_dir)) == 0
        assert cli(
            "db", "backup", "--cache-dir", str(cache_dir),
            "--out-dir", str(backups),
        ) == 0

        for entry in databases:
            source = Path(str(entry["path"]))
            copy = backups / f"{source.name[:-len('.sqlite3')]}" \
                             ".backup.sqlite3"
            assert copy.exists(), copy
            source_digest = dump_digest(source)
            copy_digest = dump_digest(copy)
            assert source_digest == copy_digest, (
                f"{entry['name']}: backup dump diverges from source"
            )
            assert cli("db", "check", str(copy)) == 0
            print(f"{entry['name']:<10} {source_digest[:16]}  "
                  "backup == source")

    print("store smoke: "
          f"{WRITERS} writers x {SUBMITS_PER_WRITER} submits, "
          "5 databases checked and backed up bit-equal")
    return 0


if __name__ == "__main__":
    sys.exit(main())
