"""Shared plumbing for the tools/*_smoke.py CI scripts.

Every smoke test spawns real ``python -m repro`` subprocesses on real
sockets; the port/spawn/wait/cleanup boilerplate lives here once.
Importing this module also puts ``src/`` on ``sys.path``, so smoke
scripts can import ``repro`` right after ``import _smoke_common``.
"""

from __future__ import annotations

import json
import os
import socket
import subprocess
import sys
import urllib.error
import urllib.request
from pathlib import Path
from typing import List, Optional, Sequence, Tuple

REPO_ROOT = Path(__file__).resolve().parents[1]
SRC = REPO_ROOT / "src"

if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))


def free_port() -> int:
    """An OS-assigned free TCP port on localhost."""
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def subprocess_env() -> dict:
    """A copy of the environment with ``src/`` on PYTHONPATH."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC)
    return env


def request(
    url: str, payload=None, method: Optional[str] = None, timeout: float = 60.0
) -> Tuple[int, bytes]:
    """One HTTP exchange; returns (status, raw_body_bytes).

    HTTP error statuses come back as values, not exceptions, so smoke
    scripts can assert on 4xx/5xx envelopes.
    """
    data = json.dumps(payload).encode() if payload is not None else None
    req = urllib.request.Request(url, data=data, method=method)
    try:
        with urllib.request.urlopen(req, timeout=timeout) as response:
            return response.status, response.read()
    except urllib.error.HTTPError as error:
        return error.code, error.read()


def get_json(url: str, timeout: float = 30.0) -> dict:
    status, body = request(url, timeout=timeout)
    assert status == 200, (status, body)
    return json.loads(body)


def post_json(url: str, payload, timeout: float = 60.0) -> Tuple[int, dict]:
    status, body = request(url, payload, timeout=timeout)
    return status, json.loads(body)


def cli(*argv: str, env: Optional[dict] = None) -> int:
    """Run ``python -m repro <argv>`` to completion; the exit code."""
    return subprocess.run(
        [sys.executable, "-m", "repro", *argv],
        env=env or subprocess_env(),
    ).returncode


class Fleet:
    """Spawned ``python -m repro`` server processes plus their logs.

    Use as a context manager: on exit every still-running process is
    terminated (then killed), and on failure the collected logs can be
    dumped with :meth:`dump_logs`.
    """

    def __init__(self, base: Path, env: Optional[dict] = None) -> None:
        self.base = base
        self.env = env or subprocess_env()
        self.processes: List[Tuple[str, subprocess.Popen]] = []

    def spawn(self, name: str, argv: Sequence[str]) -> subprocess.Popen:
        """Start ``python -m repro <argv>``, logging to ``<name>.log``."""
        log = (self.base / f"{name}.log").open("wb")
        process = subprocess.Popen(
            [sys.executable, "-m", "repro", *argv],
            env=self.env, stdout=log, stderr=subprocess.STDOUT,
        )
        self.processes.append((name, process))
        return process

    def spawn_server(
        self, name: str, argv: Sequence[str], timeout: float = 30.0
    ) -> str:
        """Spawn on a free port and wait for /healthz; the base URL."""
        from repro.cluster import wait_until_healthy

        port = free_port()
        url = f"http://127.0.0.1:{port}"
        self.spawn(
            name, list(argv) + ["--host", "127.0.0.1", "--port", str(port)]
        )
        if not wait_until_healthy(url, timeout=timeout):
            raise AssertionError(f"{name} never became healthy at {url}")
        return url

    def dump_logs(self) -> None:
        for name, _process in self.processes:
            path = self.base / f"{name}.log"
            if path.exists():
                sys.stdout.write(f"----- {name} -----\n")
                sys.stdout.write(path.read_text())

    def __enter__(self) -> "Fleet":
        return self

    def __exit__(self, *_exc) -> None:
        for _name, process in self.processes:
            if process.poll() is None:
                process.terminate()
        for _name, process in self.processes:
            try:
                process.wait(timeout=10)
            except subprocess.TimeoutExpired:
                process.kill()
                process.wait(timeout=10)
