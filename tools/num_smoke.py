#!/usr/bin/env python3
"""CI smoke test: dense and sparse backends agree on a large model.

Solves one large library model end to end through two numerical
backends — ``dense-direct`` (LAPACK on the dense generator) and
``sparse-direct`` (SuperLU on CSR, never densifying) — and asserts:

1. Both solves succeed through the full engine path (translate,
   generate, solve, aggregate), so the ``SolverOptions`` plumbing from
   options to backend registry to operator works outside unit tests.
2. The yearly-downtime figures agree within 0.2% — the representation
   must never change the engineering answer.
3. The engine's per-backend counters attribute the solves correctly.

Run from the repository root::

    PYTHONPATH=src python tools/num_smoke.py
"""

from __future__ import annotations

import sys

import _smoke_common  # noqa: F401  (puts src/ on sys.path)

from repro.engine import Engine  # noqa: E402
from repro.library import e10000_model  # noqa: E402
from repro.num import SolverOptions  # noqa: E402
from repro.units import (  # noqa: E402
    availability_to_yearly_downtime_minutes,
)

AGREEMENT_LIMIT = 0.002  # 0.2%


def solve_with(options: SolverOptions) -> float:
    engine = Engine(jobs=1, cache=False)
    solution = engine.solve(e10000_model(), options)
    counters = engine.stats.snapshot().counters
    attributed = counters.get(
        f"solves_by_backend.{options.steady_method}", 0
    )
    assert attributed > 0, (
        f"no solves attributed to backend {options.steady_method!r}: "
        f"{counters}"
    )
    return float(solution.availability)


def main() -> int:
    dense = solve_with(
        SolverOptions(steady_method="dense-direct", representation="dense")
    )
    sparse = solve_with(
        SolverOptions(
            steady_method="sparse-direct", representation="sparse"
        )
    )
    dense_downtime = availability_to_yearly_downtime_minutes(dense)
    sparse_downtime = availability_to_yearly_downtime_minutes(sparse)
    relative = abs(dense_downtime - sparse_downtime) / max(
        dense_downtime, 1e-300
    )
    print(f"dense-direct:  availability={dense:.12f}  "
          f"yearly downtime={dense_downtime:.4f} min")
    print(f"sparse-direct: availability={sparse:.12f}  "
          f"yearly downtime={sparse_downtime:.4f} min")
    print(f"relative downtime difference: {relative:.3e}")
    assert relative < AGREEMENT_LIMIT, (
        f"backends disagree by {relative:.3e} (> {AGREEMENT_LIMIT})"
    )
    print("num smoke passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
