#!/usr/bin/env python3
"""CI smoke test: a clustered study end to end, bit-identical.

Real processes, real sockets:

1. Solve a small grid study in process — the single-process
   reference payload and its ``result_digest``.
2. Start a coordinator and two workers, POST the same study document
   to ``/v1/studies`` — candidate rounds fan out across the fleet,
   and the merged result must be **byte-identical** to the reference
   (same ``result_digest``).
3. Re-POST the document: the content-digest study id deduplicates to
   the stored record (``200``, ``created: false``).
4. Read the front and the winner's detail over HTTP.
5. ``rascad study publish`` the winner from the server's study store
   into a registry, and confirm the version's ``source`` provenance
   names the study.

Run from the repository root::

    PYTHONPATH=src python tools/studies_smoke.py
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

from _smoke_common import Fleet, cli, free_port, get_json, post_json

from repro.cluster import wait_until_healthy  # noqa: E402
from repro.engine import Engine  # noqa: E402
from repro.library import workgroup_model  # noqa: E402
from repro.spec import model_to_spec  # noqa: E402
from repro.studies import parse_study, run_study  # noqa: E402

FAN = "Workgroup Server/Fan"
PSU = "Workgroup Server/Power Supply"


def study_document() -> dict:
    return {
        "name": "smoke-sizing",
        "base": model_to_spec(workgroup_model()),
        "strategy": "grid",
        "variables": [
            {"path": FAN, "field": "quantity", "values": [2, 3, 4]},
            {"path": PSU, "field": "quantity", "values": [1, 2]},
        ],
    }


def main() -> int:
    base = Path(tempfile.mkdtemp(prefix="rascad-studies-smoke-"))
    print(f"workdir: {base}")
    cache_dir = base / "coordinator-cache"
    registry_db = base / "registry.sqlite3"

    # 1. The single-process reference.
    reference = run_study(
        parse_study(study_document()), engine=Engine(jobs=1)
    )
    print(
        f"reference: {reference['evaluated']} candidates, "
        f"front {reference['front']}, "
        f"digest {reference['result_digest'][:16]}..."
    )

    with Fleet(base) as fleet:
        coordinator_port = free_port()
        url = f"http://127.0.0.1:{coordinator_port}"
        fleet.spawn("coordinator", [
            "cluster", "coordinator",
            "--host", "127.0.0.1", "--port", str(coordinator_port),
            "--jobs-db", str(base / "cluster.sqlite3"),
            "--cache-dir", str(cache_dir),
            "--shard-size", "2",
            "--fanout-threshold", "2",
        ])
        if not wait_until_healthy(url, timeout=30.0):
            print("FAIL: coordinator never became healthy")
            fleet.dump_logs()
            return 1
        for index in range(2):
            worker_url = fleet.spawn_server(f"worker-{index}", [
                "cluster", "worker",
                "--coordinator", url,
                "--cache-dir", str(base / f"worker-{index}-cache"),
                "--heartbeat-interval", "0.5",
            ])
            print(f"worker up at {worker_url}")

        # 2. The clustered study: merged front must be bit-identical.
        status, payload = post_json(
            f"{url}/v1/studies", study_document(), timeout=300.0
        )
        if status != 201:
            print(f"FAIL: study submit answered {status}: {payload}")
            fleet.dump_logs()
            return 1
        record = payload["study"]
        study_id = record["study_id"]
        assert record["state"] == "succeeded", record["state"]
        assert record["result"] == reference, (
            "clustered study differs from the single-process run"
        )
        print(
            f"clustered run bit-identical: {study_id} "
            f"digest {record['result']['result_digest'][:16]}..."
        )

        metrics = get_json(f"{url}/metrics")
        rounds = metrics["engine"]["counters"].get(
            "cluster_study_rounds", 0
        )
        assert rounds >= 1, (
            f"study never fanned out (cluster_study_rounds={rounds})"
        )
        assert metrics["service"]["studies_succeeded"] == 1, metrics[
            "service"
        ]
        print(f"fan-out confirmed: {rounds} clustered round(s)")

        # 3. Dedup: same document, same id, no re-run.
        status, payload = post_json(
            f"{url}/v1/studies", study_document(), timeout=60.0
        )
        assert status == 200 and payload["created"] is False, (
            status, payload,
        )
        print("resubmission deduplicated")

        # 4. Front + winner detail over HTTP.
        front = get_json(f"{url}/v1/studies/{study_id}/front")
        assert front["front"], front
        winner = front["winner"]
        detail = get_json(
            f"{url}/v1/studies/{study_id}/candidates/{winner}"
        )
        assert detail["on_front"] is True, detail
        print(
            f"winner #{winner}: cost {detail['candidate']['cost']}, "
            f"{detail['candidate']['yearly_downtime_minutes']:.1f} "
            "min/yr"
        )

    # 5. Publish the winner from the server's persisted study store.
    code = cli(
        "study", "publish", study_id,
        "--name", "smoke-winner", "--tag", "prod",
        "--studies-dir", str(cache_dir / "studies"),
        "--registry-db", str(registry_db),
        "--cache-dir", str(base / "publish-cache"),
    )
    if code != 0:
        print(f"FAIL: study publish exited {code}")
        return 1
    from repro.registry import open_registry

    registry = open_registry(db_path=registry_db)
    version = registry.resolve("smoke-winner@prod")
    assert version.source["study_id"] == study_id, version.source
    assert version.source["candidate"] == winner, version.source
    print(
        f"published smoke-winner@prod = {version.digest[:12]} "
        f"(provenance: {version.source['study_id']})"
    )

    print("PASS: clustered study bit-identical, deduplicated, published")
    return 0


if __name__ == "__main__":
    sys.exit(main())
