#!/usr/bin/env python3
"""CI smoke test: the registry's gated-rollout lifecycle, end to end.

Real processes, real sockets, one shared ``registry.sqlite3``:

1. ``rascad models publish`` a workgroup v1 straight to ``prod``
   (CLI side of the registry).
2. ``rascad models check`` a degraded v2 against ``prod`` — the
   dry-run gate must answer REJECT (exit 1).
3. Start a real ``rascad serve`` subprocess on the same registry
   file and POST the degraded v2 to ``prod`` — the publish gate must
   answer ``409 regression_detected`` with structured details.
4. ``"force": true`` pushes it through, with the override recorded.
5. Roll ``prod`` back over HTTP and confirm v1 holds the tag again.
6. Throughout: ``"model_ref"`` solves and sweeps must be
   byte-identical to the same requests with the spec inlined.

Run from the repository root::

    PYTHONPATH=src python tools/registry_smoke.py
"""

from __future__ import annotations

import json
import sys
import tempfile
from pathlib import Path

from _smoke_common import Fleet, cli, request, subprocess_env

from repro.library import workgroup_model  # noqa: E402
from repro.spec import model_to_spec  # noqa: E402

BLOCK = "Workgroup Server/Operating System"
SWEEP_VALUES = [1e5 + 1.8e4 * i for i in range(50)]


def main() -> int:
    base = Path(tempfile.mkdtemp(prefix="rascad-registry-smoke-"))
    print(f"workdir: {base}")
    registry_db = base / "registry.sqlite3"
    cache_dir = base / "cache"

    good = model_to_spec(workgroup_model())
    bad = model_to_spec(workgroup_model())
    for block in bad["diagram"]["blocks"]:
        if block["name"] == "Operating System":
            block["mtbf_hours"] = 3_000.0
    good_path = base / "wg.json"
    bad_path = base / "wg_bad.json"
    good_path.write_text(json.dumps(good))
    bad_path.write_text(json.dumps(bad))

    env = subprocess_env()

    # 1. CLI publish v1 to prod.
    code = cli(
        "models", "publish", str(good_path), "--name", "smoke",
        "--tag", "prod", "--registry-db", str(registry_db),
        "--cache-dir", str(cache_dir), env=env,
    )
    if code != 0:
        print(f"FAIL: CLI publish exited {code}")
        return 1

    # 2. CLI dry-run gate on the degraded candidate: must REJECT.
    code = cli(
        "models", "check", str(bad_path), "--name", "smoke",
        "--tag", "prod", "--registry-db", str(registry_db),
        "--cache-dir", str(cache_dir), env=env,
    )
    if code != 1:
        print(f"FAIL: check exited {code}, expected the REJECT exit 1")
        return 1
    print("CLI publish + gate dry-run OK")

    # 3-6. The HTTP side, on the same registry file.
    with Fleet(base, env=env) as fleet:
        url = fleet.spawn_server("server", [
            "serve",
            "--registry-db", str(registry_db),
            "--cache-dir", str(cache_dir),
        ])

        # The CLI-published version is visible over HTTP.
        status, body = request(f"{url}/v1/models/smoke")
        assert status == 200, (status, body)
        detail = json.loads(body)["model"]
        v1_digest = detail["tags"]["prod"]
        print(f"server sees smoke@prod = {v1_digest[:12]}")

        # 3. The degraded publish is rejected with structured details.
        status, body = request(f"{url}/v1/models", {
            "name": "smoke", "spec": bad, "tag": "prod",
        })
        envelope = json.loads(body)
        assert status == 409, (status, body)
        assert envelope["error"]["code"] == "regression_detected", envelope
        details = envelope["error"]["details"]
        assert details["baseline_digest"] == v1_digest, details
        assert details["downtime_delta_minutes"] > details[
            "threshold_minutes"
        ], details
        print(
            "gate rejected the rollout: "
            f"{details['downtime_delta_minutes']:+.3f} min/yr"
        )

        # 4. Force pushes it through, recorded.
        status, body = request(f"{url}/v1/models", {
            "name": "smoke", "spec": bad, "tag": "prod", "force": True,
        })
        forced = json.loads(body)
        assert status in (200, 201), (status, body)
        assert forced["gate"]["forced"] is True, forced
        v2_digest = forced["version"]["digest"]
        print(f"forced through: smoke@prod = {v2_digest[:12]}")

        # 5. Rollback restores v1.
        status, body = request(
            f"{url}/v1/models/smoke/tags",
            {"tag": "prod", "rollback": True},
        )
        rolled = json.loads(body)
        assert status == 200, (status, body)
        assert rolled["digest"] == v1_digest, rolled
        assert rolled["rolled_back_from"] == v2_digest, rolled
        print(f"rolled back: smoke@prod = {v1_digest[:12]}")

        # 6. Ref-based solving is byte-identical to inline.
        status_inline, inline = request(f"{url}/v1/solve", {
            "spec": good,
        })
        status_ref, ref = request(f"{url}/v1/solve", {
            "model_ref": "smoke@prod",
        })
        assert status_inline == status_ref == 200
        assert inline == ref, "ref solve differs from inline solve"

        sweep = {"field": "mtbf_hours", "block": BLOCK,
                 "values": SWEEP_VALUES}
        status_inline, inline = request(
            f"{url}/v1/sweep", {**sweep, "spec": good}
        )
        status_ref, ref = request(
            f"{url}/v1/sweep", {**sweep, "model_ref": "smoke@prod"}
        )
        assert status_inline == status_ref == 200
        assert inline == ref, "ref sweep differs from inline sweep"
        points = len(json.loads(inline)["points"])
        assert points == len(SWEEP_VALUES), points

        print(
            "PASS: gated rollout lifecycle OK; ref solve and "
            f"{points}-point ref sweep byte-identical to inline"
        )
        return 0


if __name__ == "__main__":
    sys.exit(main())
