#!/usr/bin/env python3
"""CI smoke test: one HTTP solve produces one complete exported trace.

Exercises the observability pipeline end to end, with a real server
process:

1. Start ``rascad serve`` with ``--trace-dir`` (and ``--trace-detail``)
   on a free port, JSON logging on.
2. Solve a library model over HTTP and read the ``X-Rascad-Trace-Id``
   response header.
3. Assert ``<trace-dir>/spans.jsonl`` holds exactly that trace: a
   single ``service.request`` root, queue/batch stages beneath it,
   engine solve spans beneath those, and per-block detail spans — with
   every parent link resolving inside the trace.
4. Assert ``/debug/traces`` serves the same trace from the in-memory
   ring, and ``rascad trace summary`` renders the directory.

Run from the repository root::

    PYTHONPATH=src python tools/obs_smoke.py
"""

from __future__ import annotations

import json
import re
import signal
import subprocess
import sys
import tempfile
import time
import urllib.request
from pathlib import Path

from _smoke_common import get_json

from repro.obs.export import read_spans  # noqa: E402

STARTUP_TIMEOUT = 60.0


def wait_for_port(log_path: Path, process: subprocess.Popen) -> str:
    """The base URL, parsed from the server's startup line."""
    deadline = time.monotonic() + STARTUP_TIMEOUT
    while time.monotonic() < deadline:
        if process.poll() is not None:
            sys.stdout.write(log_path.read_text())
            raise AssertionError("server exited during startup")
        match = re.search(
            r"listening on (http://\S+)", log_path.read_text()
        )
        if match:
            return match.group(1)
        time.sleep(0.05)
    raise AssertionError("server did not start within 60 s")


def main() -> int:
    base = Path(tempfile.mkdtemp(prefix="rascad-obs-smoke-"))
    trace_dir = base / "traces"
    log_path = base / "serve.log"
    print(f"workdir: {base}")

    with log_path.open("wb") as log:
        server = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                "--port", "0",
                "--no-cache",
                "--trace-dir", str(trace_dir),
                "--trace-detail",
                "--log-json",
            ],
            stdout=log,
            stderr=subprocess.STDOUT,
        )
    try:
        url = wait_for_port(log_path, server)
        print(f"server up at {url}")

        spec = get_json(f"{url}/v1/library/workgroup")
        body = json.dumps({"spec": spec}).encode()
        request = urllib.request.Request(
            f"{url}/v1/solve", data=body,
            headers={"Content-Type": "application/json"},
        )
        with urllib.request.urlopen(request, timeout=60) as response:
            assert response.status == 200, response.status
            trace_id = response.headers.get("X-Rascad-Trace-Id")
            payload = json.loads(response.read())
        assert trace_id, "solve response carried no X-Rascad-Trace-Id"
        assert 0.0 < payload["availability"] <= 1.0
        print(f"solved over HTTP, trace {trace_id}")

        # The same trace is live in the ring behind /debug/traces.
        debug = get_json(f"{url}/debug/traces?trace_id={trace_id}")
        assert debug["spans"], "/debug/traces returned no spans"
    finally:
        server.send_signal(signal.SIGTERM)
        server.wait(timeout=30)

    sys.stdout.write(log_path.read_text())

    spans = read_spans(trace_dir, trace_id=trace_id)
    names = [span["name"] for span in spans]
    by_id = {span["span_id"]: span for span in spans}
    for span in spans:
        parent = span.get("parent_id")
        assert parent is None or parent in by_id, (
            f"span {span['name']} has dangling parent {parent}"
        )

    roots = [s for s in spans if s.get("parent_id") is None]
    assert len(roots) == 1, f"expected one root span, got {roots}"
    assert roots[0]["name"] == "service.request", roots[0]["name"]
    assert roots[0]["trace_id"] == trace_id

    for stage in (
        "service.queue_wait", "service.batch",
        "engine.solve", "engine.block_solve",
    ):
        assert stage in names, f"trace is missing a {stage} span"
    engine_children = [n for n in names if n.startswith("engine.")]
    assert engine_children, "no engine spans beneath the request"

    summary = subprocess.run(
        [
            sys.executable, "-m", "repro",
            "trace", "summary", str(trace_dir),
        ],
        capture_output=True,
        text=True,
        timeout=60,
    )
    assert summary.returncode == 0, summary.stderr
    assert "service.request" in summary.stdout, summary.stdout

    print(
        f"PASS: one solve exported one complete trace "
        f"({len(spans)} spans, root {roots[0]['span_id']}, "
        f"{len(engine_children)} engine spans)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
