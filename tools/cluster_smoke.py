#!/usr/bin/env python3
"""CI smoke test: SIGKILL a cluster worker mid-sweep, merge bit-identically.

Exercises the cluster layer's fault-tolerance guarantee end to end,
with real processes and real sockets:

1. Compute the uninterrupted single-process reference payload for a
   200-point E10000 sweep (the same ``result_digest``-stamped shape a
   jobs run emits).
2. Start a real coordinator subprocess (``rascad cluster
   coordinator``) and two real worker subprocesses (``rascad cluster
   worker``) that register dynamically and heartbeat.
3. POST the sweep to the coordinator and, as soon as the shard table
   shows progress, SIGKILL one worker — no graceful shutdown, the
   hard-crash path.  Its in-flight shard re-queues and the survivor
   finishes the job.
4. Assert the merged payload — including its ``result_digest`` — is
   identical to the reference, and that the coordinator noticed the
   death (the killed worker leaves placement).

Run from the repository root::

    PYTHONPATH=src python tools/cluster_smoke.py
"""

from __future__ import annotations

import signal
import sys
import tempfile
import threading
import time
from pathlib import Path

from _smoke_common import Fleet, free_port, subprocess_env

from repro.analysis import expand_values  # noqa: E402
from repro.cluster import (  # noqa: E402
    CoordinatorClient,
    SweepWorkload,
)
from repro.engine import Engine  # noqa: E402
from repro.jobs import result_digest  # noqa: E402
from repro.library import e10000_model  # noqa: E402
from repro.spec import model_to_spec  # noqa: E402

POINTS = 200
SHARD_SIZE = 4  # 50 shards: plenty of chances to die mid-run
BLOCK = "E10000 Server/Operating System"
FIELD = "mtbf_hours"
SWEEP_TIMEOUT = 300.0
LEASE_TIMEOUT = 4.0


def reference_payload(base: Path, spec: dict, values: list) -> dict:
    """The single-process run: bare engine sweep, jobs-shaped payload."""
    model = e10000_model()
    engine = Engine(jobs=1, cache_dir=base / "ref-cache")
    points = engine.sweep_block_field(model, BLOCK, FIELD, values)
    workload = SweepWorkload(
        spec, FIELD, values, block=BLOCK, model_name=model.name
    )
    payload = workload.aggregate([
        {
            "value": point.value,
            "availability": point.availability,
            "yearly_downtime_minutes": point.yearly_downtime_minutes,
        }
        for point in points
    ])
    payload["result_digest"] = result_digest(payload)
    return payload


def main() -> int:
    base = Path(tempfile.mkdtemp(prefix="rascad-cluster-smoke-"))
    print(f"workdir: {base}")

    spec = model_to_spec(e10000_model())
    values = expand_values([f"1e5:1e6:{POINTS}"])
    reference = reference_payload(base, spec, values)
    print(f"reference digest: {reference['result_digest']}")

    coordinator_port = free_port()
    coordinator_url = f"http://127.0.0.1:{coordinator_port}"

    with Fleet(base, env=subprocess_env()) as fleet:
        fleet.spawn("coordinator", [
            "cluster", "coordinator",
            "--host", "127.0.0.1", "--port", str(coordinator_port),
            "--jobs-db", str(base / "cluster.sqlite3"),
            "--cache-dir", str(base / "coordinator-cache"),
            "--shard-size", str(SHARD_SIZE),
            "--lease-timeout", str(LEASE_TIMEOUT),
            "--steal-after", "2.0",
        ])
        from repro.cluster import wait_until_healthy
        if not wait_until_healthy(coordinator_url, timeout=30.0):
            print("FAIL: coordinator never became healthy")
            return 1

        workers = []
        for index in range(2):
            port = free_port()
            workers.append((f"http://127.0.0.1:{port}", fleet.spawn(
                f"worker-{index}", [
                    "cluster", "worker",
                    "--host", "127.0.0.1", "--port", str(port),
                    "--coordinator", coordinator_url,
                    "--cache-dir", str(base / f"worker-{index}-cache"),
                    "--heartbeat-interval", "0.5",
                ],
            )))
        for url, _ in workers:
            if not wait_until_healthy(url, timeout=30.0):
                print(f"FAIL: worker {url} never became healthy")
                return 1

        client = CoordinatorClient(coordinator_url, timeout=30.0)
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline:
            fleet = client.status()["workers"]
            if sum(1 for row in fleet if row["state"] == "alive") >= 2:
                break
            time.sleep(0.05)
        else:
            print("FAIL: workers never registered with the coordinator")
            return 1
        print(f"fleet up: coordinator {coordinator_url}, 2 workers")

        outcome: dict = {}

        def run_sweep() -> None:
            try:
                outcome["merged"] = client.sweep({
                    "spec": spec,
                    "block": BLOCK,
                    "field": FIELD,
                    "values": values,
                    "timeout_seconds": SWEEP_TIMEOUT,
                }, timeout=SWEEP_TIMEOUT)
            except Exception as error:  # surfaced after the join
                outcome["error"] = error

        sweep_thread = threading.Thread(target=run_sweep)
        sweep_thread.start()

        # Wait for the shard table to show progress, then kill a
        # worker without ceremony while the sweep is in flight.
        victim_url, victim = workers[1]
        total_shards = (POINTS + SHARD_SIZE - 1) // SHARD_SIZE
        deadline = time.monotonic() + 120.0
        progress = None
        while time.monotonic() < deadline:
            if not sweep_thread.is_alive():
                print("FAIL: sweep finished before the kill landed")
                return 1
            active = client.status().get("active", [])
            done = sum(int(entry.get("done", 0)) for entry in active)
            if active and 0 < done < total_shards - SHARD_SIZE:
                progress = done
                break
            time.sleep(0.02)
        else:
            print("FAIL: no shard progress within 120 s")
            return 1
        victim.send_signal(signal.SIGKILL)
        victim.wait()
        print(
            f"SIGKILLed {victim_url} after {progress}/{total_shards} "
            "shards"
        )

        sweep_thread.join(timeout=SWEEP_TIMEOUT)
        if sweep_thread.is_alive():
            print("FAIL: sweep did not complete after the kill")
            return 1
        if "error" in outcome:
            print(f"FAIL: sweep raised: {outcome['error']}")
            return 1
        merged = outcome["merged"]

        assert len(merged["points"]) == POINTS, len(merged["points"])
        assert merged["points"] == reference["points"], (
            "merged points differ from the single-process run"
        )
        assert (
            merged["result_digest"] == reference["result_digest"]
        ), (merged["result_digest"], reference["result_digest"])

        status = client.status()
        totals = status["totals"]
        assert totals["jobs_completed"] == 1, totals
        assert totals["shards_completed"] >= total_shards, totals

        # The coordinator noticed the death: the victim left placement
        # (marked dead by a failed dispatch, or its lease expired).
        victim_state = None
        deadline = time.monotonic() + LEASE_TIMEOUT + 10.0
        while time.monotonic() < deadline:
            fleet = client.status()["workers"]
            victim_state = next(
                (row["state"] for row in fleet
                 if row["url"] == victim_url), None,
            )
            if victim_state in ("dead", "lease_expired"):
                break
            time.sleep(0.1)
        assert victim_state in ("dead", "lease_expired"), victim_state

        print(
            "PASS: kill-one-worker sweep is bit-identical "
            f"(digest {merged['result_digest'][:16]}..., "
            f"victim ended {victim_state}, "
            f"{totals['shards_retried']} shard retries)"
        )
        return 0


if __name__ == "__main__":
    sys.exit(main())
