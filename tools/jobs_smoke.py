#!/usr/bin/env python3
"""CI smoke test: SIGKILL a job worker mid-sweep, resume bit-identically.

Exercises the durability guarantees end to end, with real processes:

1. Run a 200-point E10000 sweep job to completion on a pristine store —
   the uninterrupted reference result.
2. Submit the identical job to a second store and start a real
   ``rascad jobs worker`` subprocess on it.
3. SIGKILL the worker as soon as it has durably checkpointed some
   progress (no graceful shutdown, no atexit — the hard-crash path).
4. Start a fresh worker with a short lease timeout: it reclaims the
   stale lease and resumes from the checkpoint.
5. Assert the resumed result payload — including its
   ``result_digest`` — is byte-identical to the reference, and that
   the resumed worker re-solved *only* the points past the checkpoint
   (via its engine's ``system_solves`` count).

Run from the repository root::

    PYTHONPATH=src python tools/jobs_smoke.py
"""

from __future__ import annotations

import json
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

from _smoke_common import subprocess_env

from repro.analysis import expand_values  # noqa: E402
from repro.engine import Engine  # noqa: E402
from repro.jobs import (  # noqa: E402
    Checkpointer,
    JobSpec,
    JobStore,
    Worker,
    WorkerConfig,
)
from repro.library import e10000_model  # noqa: E402
from repro.spec import model_to_spec  # noqa: E402

POINTS = 200
CHECKPOINT_EVERY = 10
LEASE_TIMEOUT = 2.0


def job_spec() -> JobSpec:
    return JobSpec(
        kind="sweep",
        spec=model_to_spec(e10000_model()),
        params={
            "field": "mtbf_hours",
            "block": "E10000 Server/Operating System",
            "values": expand_values([f"1e5:1e6:{POINTS}"]),
        },
    )


def reference_run(base: Path) -> dict:
    """The uninterrupted run: submit and drain on a pristine store."""
    store = JobStore(base / "ref.sqlite3")
    record, _ = store.submit(job_spec())
    worker = Worker(
        store,
        Engine(jobs=1, cache_dir=base / "ref-cache"),
        Checkpointer(base / "ref-checkpoints"),
        WorkerConfig(once=True, checkpoint_every=CHECKPOINT_EVERY),
    )
    worker.run()
    done = store.get(record.id)
    assert done.state == "succeeded", done.state
    return done.result


def main() -> int:
    base = Path(tempfile.mkdtemp(prefix="rascad-jobs-smoke-"))
    print(f"workdir: {base}")

    reference = reference_run(base)
    print(f"reference digest: {reference['result_digest']}")

    store = JobStore(base / "jobs.sqlite3")
    checkpointer = Checkpointer(base / "checkpoints")
    record, _ = store.submit(job_spec())

    env = subprocess_env()
    worker = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "jobs", "worker",
            "--db", str(store.path),
            "--cache-dir", str(base / "crash-cache"),
            "--checkpoint-every", str(CHECKPOINT_EVERY),
            "--poll", "0.1",
        ],
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.STDOUT,
    )

    # Wait for durable progress, then kill without ceremony.
    ckpt_path = checkpointer.path(record.id)
    deadline = time.monotonic() + 120.0
    while time.monotonic() < deadline:
        if ckpt_path.exists():
            break
        if worker.poll() is not None:
            print("FAIL: worker exited before checkpointing")
            return 1
        time.sleep(0.02)
    else:
        print("FAIL: no checkpoint appeared within 120 s")
        return 1
    worker.send_signal(signal.SIGKILL)
    worker.wait()

    checkpoint = checkpointer.load(record.id)
    assert checkpoint is not None
    completed = len(checkpoint.values)
    print(f"SIGKILLed worker after {completed}/{POINTS} durable points")
    assert 0 < completed < POINTS, completed
    crashed = store.get(record.id)
    assert crashed.state == "running", crashed.state  # lease left behind

    # A fresh worker with a short lease timeout reclaims and resumes.
    resumed = subprocess.run(
        [
            sys.executable, "-m", "repro", "jobs", "worker",
            "--db", str(store.path),
            "--cache-dir", str(base / "resume-cache"),
            "--checkpoint-every", str(CHECKPOINT_EVERY),
            "--lease-timeout", str(LEASE_TIMEOUT),
            "--poll", "0.1",
            "--max-jobs", "1",
        ],
        env=env,
        timeout=300,
    )
    assert resumed.returncode == 0, resumed.returncode

    final = store.get(record.id)
    assert final.state == "succeeded", (final.state, final.error)
    assert final.result == reference, "resumed payload differs"
    assert (
        final.result["result_digest"] == reference["result_digest"]
    ), (final.result["result_digest"], reference["result_digest"])

    # Resume efficiency: the second worker solved only the tail.  Its
    # engine persisted a stats snapshot into its own cache dir.
    stats = json.loads(
        (base / "resume-cache" / "stats.json").read_text()
    )
    tail = POINTS - completed
    solves = stats["system_solves"]
    print(f"resume re-solved {solves} points (tail was {tail})")
    assert solves == tail, (solves, tail)

    print(
        "PASS: resumed run is bit-identical "
        f"(digest {final.result['result_digest'][:16]}..., "
        f"{completed} checkpointed + {tail} re-solved points)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
