"""E3 — Figure 4 and the four redundant model types.

Regenerates Markov Model Type 3 for N=2, K=1 (the chain the paper
draws in Figure 4) and all four recovery/repair combinations, printing
each chain's state inventory and availability.  The paper's qualitative
claim — model complexity grows from Type 1 to Type 4 — is asserted.
"""

import pytest

from repro import BlockParameters, GlobalParameters, generate_block_chain
from repro.markov import steady_state_availability
from repro.units import availability_to_yearly_downtime_minutes

from ._report import emit, emit_table

SCENARIOS = [
    (1, "transparent", "transparent"),
    (2, "transparent", "nontransparent"),
    (3, "nontransparent", "transparent"),
    (4, "nontransparent", "nontransparent"),
]


def parameters(recovery, repair):
    return BlockParameters(
        name="FRU",
        quantity=2,
        min_required=1,
        mtbf_hours=50_000.0,
        transient_fit=10_000.0,
        p_latent_fault=0.05,
        mttdlf_hours=24.0,
        recovery=recovery,
        ar_time_minutes=10.0,
        p_spf=0.02,
        spf_recovery_minutes=30.0,
        repair=repair,
        reintegration_minutes=10.0,
        p_correct_diagnosis=0.95,
    )


def bench_e3_generate_all_four_types(benchmark):
    g = GlobalParameters()

    def run():
        return {
            t: generate_block_chain(parameters(rec, rep), g)
            for t, rec, rep in SCENARIOS
        }

    chains = benchmark(run)

    rows = []
    for t, rec, rep in SCENARIOS:
        chain = chains[t]
        availability = steady_state_availability(chain)
        rows.append([
            f"Type {t}",
            rec,
            rep,
            chain.n_states,
            len(chain.transitions()),
            f"{availability:.8f}",
            f"{availability_to_yearly_downtime_minutes(availability):.3f}",
        ])
    emit_table(
        "E3 (Figure 4 et al.): the four redundant Markov model types "
        "(N=2, K=1)",
        ["model", "recovery", "repair", "states", "arcs",
         "availability", "downtime min/yr"],
        rows,
    )

    type3 = chains[3]
    emit_table(
        "E3 (Figure 4): Markov Model Type 3 transitions",
        ["from", "to", "rate /h", "meaning"],
        [
            [t.source, t.target, f"{t.rate:.4e}", t.label]
            for t in type3.transitions()
        ],
    )

    # Paper: "The complexity of the model increases from type 1 to 4."
    sizes = [chains[t].n_states for t, _, _ in SCENARIOS]
    assert sizes == sorted(sizes)
    # Figure 4's named states all present in the generated Type 3 chain.
    for name in ("Ok", "AR1", "SPF1", "Latent1", "PF1", "TF1", "TF2",
                 "PF2", "ServiceError1"):
        assert name in type3
    # Availability ordering: fully transparent best, fully opaque worst.
    availabilities = {
        t: steady_state_availability(chains[t]) for t, _, _ in SCENARIOS
    }
    assert availabilities[1] == max(availabilities.values())
    assert availabilities[4] == min(availabilities.values())
