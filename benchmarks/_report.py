"""Shared reporting helper for the reproduction benchmarks.

Each benchmark regenerates one of the paper's tables or figures.  The
rows are buffered here and flushed by the ``pytest_terminal_summary``
hook in ``benchmarks/conftest.py`` — after pytest's capture has ended —
so the tables reliably land in ``bench_output.txt`` during the standard
``pytest benchmarks/ --benchmark-only`` run.
"""

from __future__ import annotations

from typing import Iterable, List

#: Buffered report lines, flushed at terminal-summary time.
LINES: List[str] = []


def emit(*lines: str) -> None:
    """Queue report lines for the end-of-run reproduction report."""
    LINES.extend(lines)


def emit_table(title: str, header: Iterable[str], rows: Iterable[Iterable]) -> None:
    """Queue an aligned table with a title banner."""
    header = list(header)
    rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in header]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    emit("")
    emit("=" * 72)
    emit(title)
    emit("=" * 72)
    emit("  ".join(h.ljust(w) for h, w in zip(header, widths)))
    emit("  ".join("-" * w for w in widths))
    for row in rows:
        emit("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))


def flush(write) -> None:
    """Write all buffered lines through ``write`` and clear the buffer."""
    if not LINES:
        return
    write("\n")
    write("#" * 72 + "\n")
    write("# Reproduction report (paper tables & figures regenerated)\n")
    write("#" * 72 + "\n")
    for line in LINES:
        write(line + "\n")
    LINES.clear()
