"""A1 — Ablation: the recovery/repair transparency 2x2.

The paper's core design claim is that transparency of recovery and
repair "are key elements determining the structure of Markov models".
This ablation quantifies that: the whole Data Center model is re-solved
with every redundant block forced into each of the four scenarios, over
two service-level settings, showing how much each transparency axis is
worth in yearly downtime.
"""

import pytest

from repro import datacenter_model, translate
from repro.analysis import with_block_changes, with_global_changes
from repro.units import availability_to_yearly_downtime_minutes

from ._report import emit, emit_table


def force_scenarios(model, recovery, repair):
    """Every redundant block forced to the given scenarios."""
    for _level, path, block in list(model.walk()):
        if block.parameters.is_redundant:
            model = with_block_changes(
                model, path, recovery=recovery, repair=repair
            )
    return model


def bench_a1_transparency_2x2(benchmark):
    def run():
        grid = {}
        for recovery in ("transparent", "nontransparent"):
            for repair in ("transparent", "nontransparent"):
                variant = force_scenarios(
                    datacenter_model(), recovery, repair
                )
                grid[(recovery, repair)] = translate(variant).availability
        return grid

    grid = benchmark.pedantic(run, rounds=3, iterations=1)

    rows = []
    for (recovery, repair), availability in grid.items():
        rows.append([
            recovery, repair,
            f"{availability:.8f}",
            f"{availability_to_yearly_downtime_minutes(availability):.2f}",
        ])
    emit_table(
        "A1: transparency ablation - every redundant block forced "
        "(Data Center System)",
        ["recovery", "repair", "availability", "downtime min/yr"],
        rows,
    )

    best = grid[("transparent", "transparent")]
    worst = grid[("nontransparent", "nontransparent")]
    assert best == max(grid.values())
    assert worst == min(grid.values())

    recovery_cost = (
        availability_to_yearly_downtime_minutes(
            grid[("nontransparent", "transparent")]
        )
        - availability_to_yearly_downtime_minutes(best)
    )
    repair_cost = (
        availability_to_yearly_downtime_minutes(
            grid[("transparent", "nontransparent")]
        )
        - availability_to_yearly_downtime_minutes(best)
    )
    emit(
        "",
        f"cost of nontransparent recovery : {recovery_cost:+.2f} min/yr",
        f"cost of nontransparent repair   : {repair_cost:+.2f} min/yr",
    )
    assert recovery_cost > 0
    assert repair_cost > 0


def test_a1_interaction_with_service_level():
    """Transparency matters more when service is slow (bigger exposure
    window in degraded mode is irrelevant; AR/reintegration downtime is
    per-event, so the gap scales with event rate, not MTTM)."""
    rows = []
    gaps = {}
    for mttm in (4.0, 168.0):
        base = with_global_changes(datacenter_model(), mttm_hours=mttm)
        transparent = translate(
            force_scenarios(base, "transparent", "transparent")
        ).availability
        opaque = translate(
            force_scenarios(base, "nontransparent", "nontransparent")
        ).availability
        gap = (
            availability_to_yearly_downtime_minutes(opaque)
            - availability_to_yearly_downtime_minutes(transparent)
        )
        gaps[mttm] = gap
        rows.append([f"{mttm:.0f}", f"{gap:.2f}"])
    emit_table(
        "A1: transparency gap vs maintenance deferral (MTTM)",
        ["MTTM hours", "2x2 downtime gap min/yr"],
        rows,
    )
    assert all(gap > 0 for gap in gaps.values())
