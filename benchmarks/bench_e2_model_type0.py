"""E2 — Figure 3: Markov Model Type 0 (no redundancy).

Regenerates the Type 0 chain for a single FRU, prints its structure
(states, rewards, transitions — the content of the paper's Figure 3),
and benchmarks generation + solution.
"""

import pytest

from repro import BlockParameters, GlobalParameters, generate_block_chain
from repro.markov import steady_state, steady_state_availability
from repro.units import availability_to_yearly_downtime_minutes

from ._report import emit, emit_table


@pytest.fixture(scope="module")
def parameters():
    return BlockParameters(
        name="FRU",
        quantity=1,
        min_required=1,
        mtbf_hours=100_000.0,
        transient_fit=2_000.0,
        diagnosis_minutes=30.0,
        corrective_minutes=30.0,
        verification_minutes=30.0,
        service_response_hours=4.0,
        p_correct_diagnosis=0.95,
    )


@pytest.fixture(scope="module")
def global_parameters():
    return GlobalParameters()


def bench_e2_generate_and_solve_type0(
    benchmark, parameters, global_parameters
):
    def run():
        chain = generate_block_chain(parameters, global_parameters)
        return chain, steady_state(chain)

    chain, pi = benchmark(run)

    emit_table(
        "E2 (Figure 3): Markov Model Type 0 - states",
        ["state", "reward", "steady-state prob"],
        [
            [s.name, f"{s.reward:g}", f"{pi[s.name]:.6e}"]
            for s in chain
        ],
    )
    emit_table(
        "E2 (Figure 3): Markov Model Type 0 - transitions",
        ["from", "to", "rate /h", "meaning"],
        [
            [t.source, t.target, f"{t.rate:.4e}", t.label]
            for t in chain.transitions()
        ],
    )
    availability = steady_state_availability(chain)
    emit(
        "",
        f"availability  : {availability:.8f}",
        f"downtime      : "
        f"{availability_to_yearly_downtime_minutes(availability):.3f} min/yr",
    )

    # Figure 3 structure: the five states of the paper's diagram.
    assert chain.state_names == [
        "Ok", "Logistic", "Repair", "ServiceError", "Reboot"
    ]
    assert chain.up_states() == ["Ok"]
    assert availability > 0.999
