"""E15 — the registry layer: wire savings of ``model_ref`` solving.

Publishing a model once and solving it by reference replaces the
inline spec document in every subsequent request with a short
``"name@tag"`` string.  This benchmark quantifies that against a real
``rascad serve`` process seeded with the built-in library:

* **Payload bytes** — the E10000 solve and sweep request bodies,
  inline versus ``model_ref``.  The solve ref body must be at least
  90% smaller (it is a constant ~30 bytes regardless of model size);
  the sweep saves the same absolute bytes on top of its values array.
* **Latency** — closed-loop HTTP solve latency for both request
  shapes, plus the one-time cost of resolving a ref into a spec.
* **Identity** — the ref responses must be byte-identical to the
  inline responses; savings that changed answers would not count.

Results land in ``BENCH_e15_registry.json`` at the repository root.
``python benchmarks/bench_e15_registry.py --quick`` runs a reduced
iteration count for CI.
"""

import argparse
import json
import os
import socket
import statistics
import subprocess
import sys
import time
import urllib.request
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.cluster import wait_until_healthy  # noqa: E402
from repro.library import e10000_model  # noqa: E402
from repro.spec import model_to_spec  # noqa: E402

RESULT_PATH = Path(__file__).resolve().parents[1] / "BENCH_e15_registry.json"

REF = "e10000@latest"
BLOCK = "E10000 Server/System Board"
FIELD = "mtbf_hours"
SWEEP_POINTS = 40
ITERATIONS = 60
QUICK_ITERATIONS = 15
REDUCTION_FLOOR = 0.90


def _free_port():
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def _post(url, body):
    """POST pre-encoded ``body`` bytes; returns (elapsed_s, raw_reply)."""
    request = urllib.request.Request(
        url, data=body, headers={"Content-Type": "application/json"}
    )
    start = time.perf_counter()
    with urllib.request.urlopen(request, timeout=120) as response:
        raw = response.read()
    return time.perf_counter() - start, raw


def _latency(url, body, iterations):
    samples = []
    for _ in range(iterations):
        elapsed, _ = _post(url, body)
        samples.append(elapsed * 1000.0)
    return {
        "mean_ms": round(statistics.fmean(samples), 3),
        "median_ms": round(statistics.median(samples), 3),
        "max_ms": round(max(samples), 3),
    }


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="reduced iteration count for CI",
    )
    args = parser.parse_args()
    iterations = QUICK_ITERATIONS if args.quick else ITERATIONS

    spec = model_to_spec(e10000_model())
    values = [2e5 + 2e4 * i for i in range(SWEEP_POINTS)]

    solve_inline = json.dumps({"spec": spec}).encode()
    solve_ref = json.dumps({"model_ref": REF}).encode()
    sweep_base = {"field": FIELD, "block": BLOCK, "values": values}
    sweep_inline = json.dumps({**sweep_base, "spec": spec}).encode()
    sweep_ref = json.dumps({**sweep_base, "model_ref": REF}).encode()

    solve_saved = 1 - len(solve_ref) / len(solve_inline)
    sweep_saved = 1 - len(sweep_ref) / len(sweep_inline)
    print(f"solve body: {len(solve_inline)} B inline, "
          f"{len(solve_ref)} B ref ({solve_saved:.1%} smaller)")
    print(f"sweep body: {len(sweep_inline)} B inline, "
          f"{len(sweep_ref)} B ref ({sweep_saved:.1%} smaller)")
    # The floor applies where the spec is the whole payload; the sweep
    # body also carries the (irreducible) values array in both shapes,
    # so its reduction is reported but bounded only below by the spec
    # savings themselves.
    assert solve_saved >= REDUCTION_FLOOR, solve_saved
    assert len(sweep_inline) - len(sweep_ref) == (
        len(solve_inline) - len(solve_ref)
    )

    env = dict(os.environ)
    env["PYTHONPATH"] = str(Path(__file__).resolve().parents[1] / "src")
    port = _free_port()
    url = f"http://127.0.0.1:{port}"
    server = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--host", "127.0.0.1", "--port", str(port),
            "--no-cache",
        ],
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.STDOUT,
    )
    try:
        if not wait_until_healthy(url, timeout=60.0):
            raise RuntimeError("server never became healthy")

        # Identity first: savings only count at identical answers.
        _, inline_reply = _post(f"{url}/v1/solve", solve_inline)
        resolve_ms, ref_reply = _post(f"{url}/v1/solve", solve_ref)
        assert inline_reply == ref_reply, "ref solve differs from inline"
        _, inline_sweep = _post(f"{url}/v1/sweep", sweep_inline)
        _, ref_sweep = _post(f"{url}/v1/sweep", sweep_ref)
        assert inline_sweep == ref_sweep, "ref sweep differs from inline"
        print(f"ref and inline byte-identical "
              f"(solve + {SWEEP_POINTS}-point sweep)")

        inline_latency = _latency(f"{url}/v1/solve", solve_inline,
                                  iterations)
        ref_latency = _latency(f"{url}/v1/solve", solve_ref, iterations)
        print(f"inline solve: {inline_latency['mean_ms']:8.3f} ms mean "
              f"over {iterations} calls")
        print(f"ref solve   : {ref_latency['mean_ms']:8.3f} ms mean "
              f"over {iterations} calls")
    finally:
        if server.poll() is None:
            server.terminate()
        try:
            server.wait(timeout=10)
        except subprocess.TimeoutExpired:
            server.kill()

    RESULT_PATH.write_text(json.dumps({
        "benchmark": "e15_registry_payload",
        "model_ref": REF,
        "quick": args.quick,
        "iterations": iterations,
        "payload_bytes": {
            "solve_inline": len(solve_inline),
            "solve_ref": len(solve_ref),
            "sweep_inline": len(sweep_inline),
            "sweep_ref": len(sweep_ref),
        },
        "payload_reduction": {
            "solve": round(solve_saved, 4),
            "sweep": round(sweep_saved, 4),
            "floor": REDUCTION_FLOOR,
        },
        "latency": {
            "solve_inline": inline_latency,
            "solve_ref": ref_latency,
            "first_ref_solve_ms": round(resolve_ms * 1000.0, 3),
        },
        "sweep_points": SWEEP_POINTS,
        "byte_identical": True,
    }, indent=2, sort_keys=True) + "\n")
    print(f"wrote {RESULT_PATH}")
    print(f"PASS: model_ref bodies beat the {REDUCTION_FLOOR:.0%} "
          f"reduction floor at byte-identical answers")
    return 0


if __name__ == "__main__":
    sys.exit(main())
