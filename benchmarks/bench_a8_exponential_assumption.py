"""A8 — Ablation: does MG's exponential assumption matter?

MG generates CTMCs — every duration is exponential — while real
reboots are scripted (deterministic) and hands-on repairs lognormal.
This ablation builds the realistic-sojourn semi-Markov twin of each
generated model type (same structure, same means, realistic shapes)
and measures the difference.

The asserted result: **steady-state availability is exactly invariant**
(the ratio formula sees only sojourn means) — RAScad's headline number
does not depend on the exponential assumption at all — while the
mission-time point availability shifts by a small but non-zero amount.
"""

import pytest

from repro import BlockParameters, GlobalParameters, generate_block_chain
from repro.core import exponential_assumption_gap

from ._report import emit, emit_table

SCENARIOS = [
    (1, "transparent", "transparent"),
    (2, "transparent", "nontransparent"),
    (3, "nontransparent", "transparent"),
    (4, "nontransparent", "nontransparent"),
]


def parameters(recovery, repair):
    return BlockParameters(
        name="FRU",
        quantity=2,
        min_required=1,
        mtbf_hours=2_000.0,          # stressed so transients resolve
        transient_fit=2e5,
        p_latent_fault=0.10,
        p_spf=0.05,
        p_correct_diagnosis=0.90,
        recovery=recovery,
        repair=repair,
    )


def bench_a8_exponential_assumption(benchmark):
    g = GlobalParameters()
    chains = {
        t: generate_block_chain(parameters(rec, rep), g)
        for t, rec, rep in SCENARIOS
    }

    def run():
        return {
            t: exponential_assumption_gap(
                chains[t], horizon=100.0, repair_cv=0.5
            )
            for t, _rec, _rep in SCENARIOS
        }

    gaps = benchmark.pedantic(run, rounds=3, iterations=1)

    rows = []
    for t, _rec, _rep in SCENARIOS:
        gap = gaps[t]
        rows.append([
            f"Type {t}",
            f"{gap['steady_exponential']:.10f}",
            f"{abs(gap['steady_exponential'] - gap['steady_variant']):.1e}",
            f"{gap['point_exponential']:.8f}",
            f"{gap['point_variant']:.8f}",
            f"{gap['transient_gap']:.2e}",
        ])
        # Steady state: exactly invariant (means-only).
        assert gap["steady_variant"] == pytest.approx(
            gap["steady_exponential"], rel=1e-9
        )
        # Transient: a real, measurable (but small) shape effect.
        assert 0.0 < gap["transient_gap"] < 1e-2

    emit_table(
        "A8: exponential vs realistic sojourns "
        "(deterministic reboots, lognormal repairs cv=0.5)",
        ["model", "steady-state A (both)", "steady |diff|",
         "A(100h) exponential", "A(100h) realistic", "transient gap"],
        rows,
    )
    emit(
        "",
        "conclusion: RAScad's exponential assumption is exact for",
        "steady-state availability and a second-order effect for",
        "mission-time measures on these models.",
    )
