"""E4 — Section 5: "GMB results match SHARPE and MEADEP on selected
example models".

Six example models of the kinds RAS experts hand-build in GMB are each
solved by three independent paths:

* the production solver (direct linear solve),
* the SHARPE-like independent analytic path (own assembly + least
  squares) — for CTMCs,
* Monte Carlo trajectory simulation (the "measurement tool" role).

The paper reports the tools "match very well"; the reproduction
asserts analytic-path agreement well inside the paper's 0.2% band and
Monte Carlo agreement within its 95% confidence interval.
"""

import pytest

from repro.gmb import MarkovBuilder, SemiMarkovBuilder
from repro.markov import steady_state_availability
from repro.rbd import NetworkRBD
from repro.rbd.network import availability_by_inclusion_exclusion
from repro.semimarkov import (
    Deterministic,
    Erlang,
    Exponential,
    SemiMarkovProcess,
    semi_markov_availability,
    simulate_interval_availability,
)
from repro.validation import sharpe_availability

from ._report import emit, emit_table

PAPER_BAND = 0.002  # the paper's "< 0.2%" relative-error band


def repairable_pair():
    return (
        MarkovBuilder("repairable-pair")
        .up("Ok").down("Down")
        .arc("Ok", "Down", 1e-3).arc("Down", "Ok", 0.25)
        .build()
    )


def k_of_n_repairable():
    """3 units, 2 required, shared repairman."""
    builder = MarkovBuilder("2-of-3").up("U3").up("U2").down("U1")
    builder.arc("U3", "U2", 3 * 2e-4).arc("U2", "U1", 2 * 2e-4)
    builder.arc("U2", "U3", 0.125).arc("U1", "U2", 0.125)
    return builder.build()


def standby_with_switch():
    return (
        MarkovBuilder("standby")
        .up("Primary").up("Spare").down("Both")
        .arc("Primary", "Spare", 5e-4)
        .arc("Spare", "Primary", 0.2)
        .arc("Spare", "Both", 5e-4)
        .arc("Both", "Spare", 0.1)
        .build()
    )


def degraded_multiprocessor():
    return (
        MarkovBuilder("multiproc")
        .up("4cpu").up("3cpu").up("2cpu").down("down")
        .arc("4cpu", "3cpu", 4e-4).arc("3cpu", "2cpu", 3e-4)
        .arc("2cpu", "down", 2e-4)
        .arc("3cpu", "4cpu", 0.05).arc("2cpu", "3cpu", 0.05)
        .arc("down", "2cpu", 0.125)
        .build()
    )


def semi_markov_os():
    return (
        SemiMarkovBuilder("smp-os")
        .up("Running").down("Reboot").down("Manual")
        .arc("Running", "Reboot", 1.0, Exponential.from_mean(1_500.0))
        .arc("Reboot", "Running", 0.9, Deterministic(0.15))
        .arc("Reboot", "Manual", 0.1, Erlang.from_mean(2.0, 4))
        .arc("Manual", "Running", 1.0, Exponential.from_mean(3.0))
        .build()
    )


def bridge_rbd():
    net = NetworkRBD("s", "t")
    net.add_component("s", "a", 0.999)
    net.add_component("s", "b", 0.998)
    net.add_component("a", "t", 0.997)
    net.add_component("b", "t", 0.999)
    net.add_component("a", "b", 0.9995)
    return net


def bench_e4_cross_tool_validation(benchmark):
    ctmcs = [
        repairable_pair(),
        k_of_n_repairable(),
        standby_with_switch(),
        degraded_multiprocessor(),
    ]

    def analytic_pass():
        return [
            (chain.name,
             steady_state_availability(chain),
             sharpe_availability(chain))
            for chain in ctmcs
        ]

    results = benchmark(analytic_pass)

    rows = []
    for name, production, independent in results:
        relative = abs(production - independent) / (1 - production)
        rows.append([
            name, f"{production:.9f}", f"{independent:.9f}",
            f"{relative:.2e}",
        ])
        assert relative < PAPER_BAND

    # Semi-Markov model: analytic ratio formula vs Monte Carlo.
    smp = semi_markov_os()
    analytic = semi_markov_availability(smp)
    mc = simulate_interval_availability(
        smp, horizon=100_000.0, replications=80, seed=42
    )
    rows.append([
        smp.name, f"{analytic:.9f}",
        f"{mc.mean:.9f} (MC)", "in 95% CI" if mc.contains(analytic) else "OUT",
    ])
    assert mc.contains(analytic)

    # Bridge RBD: factoring vs inclusion-exclusion.
    net = bridge_rbd()
    factored = net.availability()
    enumerated = availability_by_inclusion_exclusion(net.graph, "s", "t")
    rows.append([
        "bridge-rbd", f"{factored:.9f}", f"{enumerated:.9f}",
        f"{abs(factored - enumerated):.1e}",
    ])
    assert factored == pytest.approx(enumerated, abs=1e-12)

    emit_table(
        "E4 (Section 5): GMB example models solved by independent tools",
        ["model", "production path", "independent path", "rel. error"],
        rows,
    )
    emit(
        "",
        f"paper's band: relative error < {PAPER_BAND:.1%} - all models pass",
    )
