"""A5 — Extension: uncertainty and risk views of the point estimates.

RAScad reports point estimates; a design decision also needs (a) how
sensitive the estimate is to uncertain component data and (b) what an
*individual* site will actually experience (the realized-downtime
distribution is heavily skewed — most years see almost nothing, an
unlucky year eats a long logistics outage).
"""

import pytest

from repro import translate, workgroup_model
from repro.analysis import UncertainField, propagate_uncertainty
from repro.semimarkov import Lognormal
from repro.units import availability_to_yearly_downtime_minutes
from repro.validation import downtime_distribution

from ._report import emit, emit_table

OS = "Workgroup Server/Operating System"
DISK = "Workgroup Server/Mirrored Disk"


def bench_a5_parameter_uncertainty(benchmark):
    model = workgroup_model()
    uncertain = [
        UncertainField(OS, "mtbf_hours",
                       Lognormal.from_mean_cv(30_000.0, 0.5)),
        UncertainField(DISK, "mtbf_hours",
                       Lognormal.from_mean_cv(150_000.0, 0.3)),
    ]

    def run():
        return propagate_uncertainty(model, uncertain, samples=60, seed=11)

    result = benchmark.pedantic(run, rounds=3, iterations=1)

    point = availability_to_yearly_downtime_minutes(
        translate(model).availability
    )
    emit_table(
        "A5: parameter uncertainty (lognormal MTBF errors, 60 samples)",
        ["quantity", "value"],
        [
            ["point-estimate downtime", f"{point:.1f} min/yr"],
            ["mean availability", f"{result.mean_availability:.6f}"],
            ["downtime P5", f"{result.downtime_p05:.1f} min/yr"],
            ["downtime P50", f"{result.downtime_p50:.1f} min/yr"],
            ["downtime P95", f"{result.downtime_p95:.1f} min/yr"],
            ["P5-P95 band width", f"{result.downtime_iqr90:.1f} min/yr"],
        ],
    )
    assert result.downtime_p05 <= result.downtime_p50 <= result.downtime_p95
    # The band must bracket a meaningful range around the point estimate.
    assert result.downtime_p05 < point < result.downtime_p95


def bench_a5_realized_downtime_distribution(benchmark):
    solution = translate(workgroup_model())

    def run():
        return downtime_distribution(
            solution, window_hours=8760.0, replications=120, seed=5
        )

    distribution = benchmark.pedantic(run, rounds=1, iterations=1)

    expected = availability_to_yearly_downtime_minutes(
        solution.availability
    )
    emit_table(
        "A5: realized downtime over one year (120 simulated sites)",
        ["quantity", "minutes"],
        [
            ["expected (analytic)", f"{expected:.1f}"],
            ["simulated mean", f"{distribution.mean_minutes:.1f}"],
            ["median site (P50)", f"{distribution.p50_minutes:.1f}"],
            ["P90 site", f"{distribution.p90_minutes:.1f}"],
            ["P99 site", f"{distribution.p99_minutes:.1f}"],
            ["worst site", f"{distribution.max_minutes:.1f}"],
        ],
    )
    # Skew: the median site sees far less than the mean; the mean is
    # close to the analytic expectation.
    assert distribution.p50_minutes < distribution.mean_minutes
    assert distribution.mean_minutes == pytest.approx(expected, rel=0.5)
