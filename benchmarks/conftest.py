"""Benchmark-suite hooks: print the reproduction report after the run."""

from __future__ import annotations

from . import _report


def pytest_terminal_summary(terminalreporter) -> None:
    _report.flush(terminalreporter.write)
