"""E14 — the cluster layer: fleet speedup at identical answers.

The cluster's two headline claims, measured with real worker
processes and real sockets:

* **Horizontal speedup** — the same sweep fanned over 1, 2, and 4
  worker processes by an in-process :class:`repro.cluster.Coordinator`
  (static membership, fresh in-memory shard table per fleet, every
  fleet on pristine no-cache workers, so nothing is amortized across
  runs).  On a machine with at least 2 CPUs the 2-worker fleet must
  clear a 1.7x speedup over the 1-worker fleet; on a single-CPU
  machine the ratio is reported but not asserted (there is no
  parallelism to win).
* **Bit-identity** — every fleet's merged payload carries the same
  ``result_digest`` as the single-process engine run, whatever the
  placement did.

Results also land in ``BENCH_e14_cluster.json`` at the repository
root so the scale-out numbers travel with the code.  ``python
benchmarks/bench_e14_cluster.py --quick`` runs a reduced sweep for CI.
"""

import argparse
import json
import os
import socket
import subprocess
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.cluster import (  # noqa: E402
    ClusterConfig,
    Coordinator,
    Membership,
    SweepWorkload,
    wait_until_healthy,
)
from repro.engine import Engine  # noqa: E402
from repro.jobs import result_digest  # noqa: E402
from repro.library import datacenter_model  # noqa: E402
from repro.spec import model_to_spec  # noqa: E402

RESULT_PATH = Path(__file__).resolve().parents[1] / "BENCH_e14_cluster.json"

POINTS = 360
QUICK_POINTS = 120
SHARD_SIZE = 15
BLOCK = "Data Center System/Server Box/System Board"
FIELD = "mtbf_hours"
FLEETS = [1, 2, 4]
QUICK_FLEETS = [1, 2]
SPEEDUP_FLOOR = 1.7


def _values(points):
    start, stop = 1e5, 1e6
    step = (stop - start) / (points - 1)
    return [start + step * i for i in range(points)]


def _free_port():
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def _reference_digest(spec, values):
    """The single-process engine run's digest-stamped payload."""
    model = datacenter_model()
    engine = Engine(jobs=1, cache=False)
    points = engine.sweep_block_field(model, BLOCK, FIELD, values)
    workload = SweepWorkload(
        spec, FIELD, values, block=BLOCK, model_name=model.name
    )
    payload = workload.aggregate([
        {
            "value": point.value,
            "availability": point.availability,
            "yearly_downtime_minutes": point.yearly_downtime_minutes,
        }
        for point in points
    ])
    return result_digest(payload)


def _start_workers(count):
    """``count`` pristine no-cache worker processes, ready to serve."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(Path(__file__).resolve().parents[1] / "src")
    workers = []
    for _ in range(count):
        port = _free_port()
        process = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                "--host", "127.0.0.1", "--port", str(port),
                "--jobs", "1", "--no-cache",
            ],
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.STDOUT,
        )
        workers.append((f"http://127.0.0.1:{port}", process))
    for url, _ in workers:
        if not wait_until_healthy(url, timeout=60.0):
            raise RuntimeError(f"worker {url} never became healthy")
    return workers


def _stop_workers(workers):
    for _, process in workers:
        if process.poll() is None:
            process.terminate()
    for _, process in workers:
        try:
            process.wait(timeout=10)
        except subprocess.TimeoutExpired:
            process.kill()


def _fleet_run(count, spec, values):
    """One timed sweep over a fresh ``count``-worker fleet."""
    workers = _start_workers(count)
    try:
        config = ClusterConfig(
            workers=tuple(url for url, _ in workers),
            shard_size=SHARD_SIZE,
            steal_after=120.0,  # no speculative re-execution in timings
            call_timeout=300.0,
        )
        coordinator = Coordinator(Membership(), config=config)
        workload = SweepWorkload(
            spec, FIELD, values, block=BLOCK,
            model_name="Data Center System",
        )
        start = time.perf_counter()
        merged = coordinator.run_workload(workload, timeout=600.0)
        elapsed = time.perf_counter() - start
        return elapsed, merged
    finally:
        _stop_workers(workers)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="reduced sweep and fleet ladder for CI",
    )
    args = parser.parse_args()

    points = QUICK_POINTS if args.quick else POINTS
    fleets = QUICK_FLEETS if args.quick else FLEETS
    cpus = os.cpu_count() or 1
    spec = model_to_spec(datacenter_model())
    values = _values(points)

    reference = _reference_digest(spec, values)
    print(f"single-process digest: {reference}")
    print(f"{points}-point datacenter sweep, shard size {SHARD_SIZE}, "
          f"{cpus} CPUs")

    rows = []
    for count in fleets:
        elapsed, merged = _fleet_run(count, spec, values)
        digest = merged["result_digest"]
        assert digest == reference, (count, digest, reference)
        assert len(merged["points"]) == points
        rows.append({
            "workers": count,
            "elapsed_seconds": round(elapsed, 3),
            "points_per_sec": round(points / elapsed, 1),
            "result_digest": digest,
        })
        print(f"  {count} worker(s): {elapsed:6.2f} s "
              f"({points / elapsed:7.1f} points/s)  digest ok")

    base = rows[0]["elapsed_seconds"]
    speedups = {
        row["workers"]: round(base / row["elapsed_seconds"], 2)
        for row in rows
    }
    for workers, speedup in speedups.items():
        if workers > 1:
            print(f"  speedup x{workers} workers: {speedup:.2f}")

    # The parallelism claim only holds where parallelism exists.
    if cpus >= 2 and 2 in speedups:
        assert speedups[2] >= SPEEDUP_FLOOR, (
            f"2-worker speedup {speedups[2]:.2f} below "
            f"{SPEEDUP_FLOOR} on a {cpus}-CPU machine"
        )
    elif 2 in speedups:
        print(f"  (single CPU: {SPEEDUP_FLOOR}x floor not asserted)")

    RESULT_PATH.write_text(json.dumps({
        "benchmark": "e14_cluster_speedup",
        "points": points,
        "shard_size": SHARD_SIZE,
        "cpu_count": cpus,
        "quick": args.quick,
        "fleets": rows,
        "speedups": {str(k): v for k, v in speedups.items()},
        "speedup_floor": SPEEDUP_FLOOR,
        "speedup_asserted": cpus >= 2,
        "result_digest": reference,
    }, indent=2, sort_keys=True) + "\n")
    print(f"wrote {RESULT_PATH}")
    print("PASS: every fleet bit-identical to the single-process run")
    return 0


if __name__ == "__main__":
    sys.exit(main())
