"""E1 — Figures 1-2: the Data Center System diagram/block model.

Regenerates the paper's worked example: the two-level hierarchy (four
dark blocks at level 1, the 19-block Server Box at level 2), its
automatic translation to RBDs and Markov chains, and the solved
per-block availability table.
"""

import pytest

from repro import compute_measures, datacenter_model, translate
from repro.analysis import downtime_budget

from ._report import emit, emit_table


@pytest.fixture(scope="module")
def model():
    return datacenter_model()


def test_e1_structure_matches_paper(model):
    assert len(model.root) == 4
    assert all(block.has_subdiagram for block in model.root)
    assert len(model.root.block("Server Box").subdiagram) == 19


def bench_e1_solve_datacenter(benchmark, model):
    solution = benchmark(translate, model)
    measures = compute_measures(solution)

    emit_table(
        "E1 (Figures 1-2): Data Center System - solved hierarchy",
        ["block", "N", "K", "model", "availability", "downtime min/yr"],
        [
            [
                row.path,
                solution.by_path[row.path].effective.quantity,
                solution.by_path[row.path].effective.min_required,
                f"Type {row.model_type}" if row.model_type is not None else "RBD",
                f"{row.availability:.8f}",
                f"{row.yearly_downtime_minutes:.3f}",
            ]
            for row in downtime_budget(solution)
        ],
    )
    emit(
        "",
        f"system availability        : {measures.availability:.8f}",
        f"system downtime            : "
        f"{measures.yearly_downtime_minutes:.2f} min/yr",
        f"interval availability (T)  : {measures.interval_availability:.8f}",
        f"reliability at mission T   : {measures.reliability_at_mission:.4f}",
        f"system MTTF                : {measures.mttf_hours:.0f} h",
    )

    assert 0.99 < solution.availability < 1.0
    # The model has 2 levels and 27 blocks total, per the figures.
    assert model.depth() == 2
    assert model.block_count() == 4 + 19 + 1 + 1 + 1  # level-1 + subdiagrams
