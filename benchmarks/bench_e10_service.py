"""E10 — the model-serving layer under closed-loop load.

Stands up a real :class:`repro.service.Server` on an ephemeral port and
drives it with concurrent closed-loop clients (each client issues its
next request only after the previous one completes).  The workload is
deliberately mixed: half the requests post the *identical* E10000 spec
(exercising content-digest deduplication and the engine's system
cache), half post per-client distinct variants (exercising admission
and micro-batching).  Reported numbers are throughput (req/s), p95
latency, and the dedup ratio — the fraction of solve requests that
never cost an engine solve.  The headline claims: every response is
bit-identical to the CLI path, and the mixed load needs far fewer
engine solves than it has requests.

Results are also recorded in ``BENCH_e10_service.json`` at the
repository root so the serving numbers travel with the code.
"""

import asyncio
import json
import time
from pathlib import Path

from repro.core import translate
from repro.library import e10000_model
from repro.service import Server, ServiceConfig

from ._report import emit_table

RESULT_PATH = Path(__file__).resolve().parents[1] / "BENCH_e10_service.json"

CLIENTS = 8
REQUESTS_PER_CLIENT = 16


async def _request(host, port, method, path, payload=None):
    """One request on a fresh connection; returns (status, json_body)."""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        body = json.dumps(payload).encode() if payload is not None else b""
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: bench\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"\r\n"
        ).encode()
        writer.write(head + body)
        await writer.drain()
        raw = await reader.readuntil(b"\r\n\r\n")
        status = int(raw.split(b" ", 2)[1])
        length = 0
        for line in raw.decode().split("\r\n")[1:]:
            if line.lower().startswith("content-length:"):
                length = int(line.split(":", 1)[1])
        data = await reader.readexactly(length) if length else b""
        return status, json.loads(data) if data else None
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass


def _variant(spec, client):
    """A per-client distinct spec (different reboot time)."""
    changed = json.loads(json.dumps(spec))
    changed.setdefault("globals", {})["reboot_minutes"] = 6.0 + client / 9.0
    return changed


async def _closed_loop(host, port, spec, client, latencies):
    """One client: alternate identical and distinct specs, serially."""
    statuses = []
    for index in range(REQUESTS_PER_CLIENT):
        payload = (
            {"spec": spec}
            if index % 2 == 0
            else {"spec": _variant(spec, client)}
        )
        start = time.perf_counter()
        status, body = await _request(
            host, port, "POST", "/v1/solve", payload
        )
        latencies.append(time.perf_counter() - start)
        statuses.append(status)
        if index % 2 == 0 and status == 200:
            assert body["availability"] == EXPECTED_AVAILABILITY
    return statuses


def _run_load():
    async def go():
        server = Server(
            ServiceConfig(port=0, batch_window=0.005, max_queue=256)
        )
        host, port = await server.start()
        try:
            status, spec = await _request(
                host, port, "GET", "/v1/library/e10000"
            )
            assert status == 200
            latencies = []
            start = time.perf_counter()
            statuses = await asyncio.gather(*(
                _closed_loop(host, port, spec, client, latencies)
                for client in range(CLIENTS)
            ))
            wall = time.perf_counter() - start
            status, metrics = await _request(host, port, "GET", "/metrics")
            assert status == 200
            return statuses, latencies, wall, metrics
        finally:
            await server.shutdown()

    return asyncio.run(go())


EXPECTED_AVAILABILITY = translate(e10000_model()).availability


def bench_e10_service_closed_loop(benchmark):
    statuses, latencies, wall, metrics = benchmark.pedantic(
        _run_load, rounds=3, iterations=1
    )

    flat = [status for client in statuses for status in client]
    total = len(flat)
    assert total == CLIENTS * REQUESTS_PER_CLIENT
    assert all(status == 200 for status in flat), flat

    engine = metrics["engine"]
    solves = engine["system_solves"]
    dedup_hits = engine["counters"].get("service_dedup_hits", 0)
    # The mixed load has 8 distinct variants + 1 shared spec = at most
    # 9 distinct solves; everything else rode a dedup or cache hit.
    assert solves <= CLIENTS + 1
    dedup_ratio = 1.0 - solves / total

    ordered = sorted(latencies)
    p50 = ordered[int(0.50 * (len(ordered) - 1))]
    p95 = ordered[int(0.95 * (len(ordered) - 1))]
    throughput = total / wall

    emit_table(
        "E10: serving layer, closed-loop mixed load "
        f"({CLIENTS} clients x {REQUESTS_PER_CLIENT} requests, E10000)",
        ["metric", "value"],
        [
            ["requests", f"{total} (all 200)"],
            ["throughput", f"{throughput:.1f} req/s"],
            ["latency p50", f"{p50 * 1e3:.1f} ms"],
            ["latency p95", f"{p95 * 1e3:.1f} ms"],
            ["engine solves", f"{solves} of {total} requests"],
            ["dedup ratio", f"{dedup_ratio:.1%}"],
            ["in-flight dedup hits", str(dedup_hits)],
        ],
    )

    RESULT_PATH.write_text(json.dumps({
        "benchmark": "e10_service_closed_loop",
        "clients": CLIENTS,
        "requests_per_client": REQUESTS_PER_CLIENT,
        "requests_total": total,
        "throughput_rps": round(throughput, 2),
        "latency_p50_ms": round(p50 * 1e3, 3),
        "latency_p95_ms": round(p95 * 1e3, 3),
        "engine_solves": solves,
        "dedup_ratio": round(dedup_ratio, 4),
        "inflight_dedup_hits": dedup_hits,
        "availability": EXPECTED_AVAILABILITY,
    }, indent=2, sort_keys=True) + "\n")
