"""E12 — observability overhead on the engine's hot path, measured.

Runs the E9 workload (the 24-point CPU MTBF sweep of the Data Center
model, cold, cache off so every round does identical solve work) under
the default disabled tracer and three traced configurations:

* **ring** — the default traced configuration: request/solve-level
  spans into the in-memory ring buffer (what ``/debug/traces``
  serves).  This is what a traced server or jobs worker runs, and it
  is the configuration the < 3% acceptance bound applies to.
* **ring detail** — ``detail=True`` adds one span per *block* solve
  (``--trace-detail``), multiplying span volume ~25x on this
  workload.  Deep-dive verbosity; reported, not asserted.
* **jsonl detail** — detail verbosity plus a trace directory, every
  span appended to ``spans.jsonl``.  The most expensive mode.

Methodology, learned the hard way on noisy CI hardware (identical-code
runs 95-190 ms apart, multi-second frequency-scaling episodes):

* **Steady state.**  Traced tracers persist across rounds with rings
  pre-filled to capacity, so appends are balanced by evictions, the
  tracked-object population stays flat, and tracing triggers no extra
  GC collections — the regime a long-lived process runs in.  (A cold
  ring's one-time fill transient, bounded by its capacity, briefly
  adds gen-0 collections; that is the price of *enabling* tracing,
  not of running with it.)
* **GC-free timed windows.**  The collector is disabled during timed
  sweeps and run between them, the ``timeit`` rationale: collection
  placement is process-global state that would otherwise land in one
  variant's windows for many rounds at a stretch.
* **A-B-A triplets.**  Each traced sample is bracketed by two
  baseline sweeps and compared against their mean, cancelling linear
  machine-speed drift within the triplet; the reported overhead is
  the median across triplets, robust to the occasional throttling
  episode.  On this hardware the null error of the estimator (A-B-A
  against an identical variant) measures within +/-1%.

Results also land in ``BENCH_e12_obs.json`` at the repository root.
"""

import json
import statistics
import time
from pathlib import Path

from repro import datacenter_model
from repro.engine import Engine
from repro.obs.export import SpanExporter
from repro.obs.trace import Tracer, set_tracer

from ._report import emit_table

RESULT_PATH = Path(__file__).resolve().parents[1] / "BENCH_e12_obs.json"

CPU = "Data Center System/Server Box/CPU Module"
VALUES = [25_000.0 * step for step in range(1, 25)]

#: A-B-A triplets per traced variant (the asserted default-config
#: variant gets the most samples).
TRIPLETS = {"ring": 24, "ring detail": 8, "jsonl detail": 8}

#: The acceptance bound on default-configuration tracing overhead.
MAX_OVERHEAD = 0.03


def _sweep_once() -> float:
    engine = Engine(cache=False)
    model = datacenter_model()
    start = time.perf_counter()
    engine.sweep_block_field(model, CPU, "mtbf_hours", VALUES)
    return time.perf_counter() - start


def _steady_tracer(spans_per_run: int, **kwargs) -> Tracer:
    """A persistent tracer whose ring one warmup sweep fills."""
    exporter = SpanExporter(capacity=max(1, spans_per_run))
    return Tracer(enabled=True, exporter=exporter, **kwargs)


def _measure(tmp_base: Path) -> dict:
    import gc

    # Span inventory on throwaway rings: how many spans each traced
    # configuration emits per sweep (also sizes the steady-state rings).
    spans = {}
    for name, kwargs in (
        ("ring", {}), ("ring detail", {"detail": True}),
    ):
        probe = Tracer(
            enabled=True, exporter=SpanExporter(capacity=65536), **kwargs
        )
        set_tracer(probe)
        _sweep_once()
        spans[name] = len(probe.exporter)
    spans["jsonl detail"] = spans["ring detail"]

    off = Tracer(enabled=False)
    jsonl_exporter = SpanExporter(
        capacity=max(1, spans["jsonl detail"]), trace_dir=tmp_base
    )
    tracers = {
        "ring": _steady_tracer(spans["ring"]),
        "ring detail": _steady_tracer(spans["ring detail"], detail=True),
        "jsonl detail": Tracer(
            enabled=True, exporter=jsonl_exporter, detail=True
        ),
    }

    baselines = []
    ratios = {name: [] for name in tracers}
    try:
        for tracer in tracers.values():  # warmup fills rings
            set_tracer(tracer)
            _sweep_once()
        set_tracer(off)
        _sweep_once()

        gc.disable()
        try:
            for name, tracer in tracers.items():
                for _ in range(TRIPLETS[name]):
                    gc.collect()
                    set_tracer(off)
                    before = _sweep_once()
                    gc.collect()
                    set_tracer(tracer)
                    traced = _sweep_once()
                    gc.collect()
                    set_tracer(off)
                    after = _sweep_once()
                    baseline = (before + after) / 2.0
                    baselines.extend((before, after))
                    ratios[name].append(traced / baseline)
        finally:
            gc.enable()
            gc.collect()
    finally:
        set_tracer(Tracer(enabled=False))
        jsonl_exporter.close()

    return {
        "off_median": statistics.median(baselines),
        "overhead": {
            name: statistics.median(values) - 1.0
            for name, values in ratios.items()
        },
        "spans_per_run": spans,
    }


def bench_e12_obs_overhead(benchmark, tmp_path_factory):
    run = benchmark.pedantic(
        lambda: _measure(tmp_path_factory.mktemp("e12")),
        rounds=1,
        iterations=1,
    )

    overhead = run["overhead"]
    spans = run["spans_per_run"]

    assert spans["ring"] > 0, "tracing-on run recorded no spans"
    assert spans["ring detail"] > spans["ring"], (
        "detail verbosity did not add block-level spans"
    )
    assert overhead["ring"] < MAX_OVERHEAD, (
        f"default-configuration tracing cost {overhead['ring']:.1%} on "
        f"the E9 workload; the budget is {MAX_OVERHEAD:.0%}"
    )

    emit_table(
        "E12: tracing overhead, 24-point CPU MTBF sweep "
        "(median of A-B-A triplets vs disabled tracer)",
        ["variant", "overhead", "spans/run", "triplets"],
        [
            [
                "off (null spans)",
                f"baseline ({run['off_median'] * 1e3:.1f} ms)",
                "0", "-",
            ],
        ] + [
            [
                name,
                f"{overhead[name]:+.1%}",
                str(spans[name]),
                str(TRIPLETS[name]),
            ]
            for name in ("ring", "ring detail", "jsonl detail")
        ],
    )

    RESULT_PATH.write_text(json.dumps({
        "benchmark": "e12_obs_overhead",
        "sweep_points": len(VALUES),
        "median_off_seconds": round(run["off_median"], 6),
        "ring_overhead_frac": round(overhead["ring"], 4),
        "ring_detail_overhead_frac": round(overhead["ring detail"], 4),
        "jsonl_detail_overhead_frac": round(
            overhead["jsonl detail"], 4
        ),
        "spans_per_run": spans["ring"],
        "spans_per_run_detail": spans["ring detail"],
        "triplets": TRIPLETS,
        "max_overhead_frac": MAX_OVERHEAD,
    }, indent=2, sort_keys=True) + "\n")
