"""E8 — Section 4: the full measure list over mission time.

RAScad reports steady-state availability/failure/recovery rates,
interval availability over (0, T), and the reliability-model measures
(MTTF, reliability at T, interval failure rate, hazard rate).  This
benchmark regenerates the whole list for the Data Center model over a
mission-time sweep — the data behind RAScad's "graphical output".
"""

import pytest

from repro import compute_measures, datacenter_model, translate
from repro.markov import (
    failure_frequency,
    hazard_rate,
    recovery_frequency,
)

from ._report import emit, emit_table

MISSIONS = [24.0, 168.0, 720.0, 4380.0, 8760.0]  # day..year


@pytest.fixture(scope="module")
def solution():
    return translate(datacenter_model())


def bench_e8_measure_sweep(benchmark, solution):
    def sweep():
        return [
            compute_measures(
                solution, mission_time_hours=mission, grid_points=17
            )
            for mission in MISSIONS
        ]

    results = benchmark.pedantic(sweep, rounds=3, iterations=1)

    emit_table(
        "E8 (Section 4): measures vs mission time T "
        "(Data Center System)",
        ["T hours", "interval A", "reliability R(T)",
         "interval failure rate /h", "MTTF h"],
        [
            [
                f"{m.mission_time_hours:.0f}",
                f"{m.interval_availability:.8f}",
                f"{m.reliability_at_mission:.6f}",
                f"{m.interval_failure_rate:.3e}",
                f"{m.mttf_hours:.0f}",
            ]
            for m in results
        ],
    )

    reliabilities = [m.reliability_at_mission for m in results]
    # R(T) decreases with mission time; interval availability stays in
    # a tight band around the steady state.
    assert reliabilities == sorted(reliabilities, reverse=True)
    for m in results:
        assert m.availability <= m.interval_availability <= 1.0


def test_e8_block_level_rates(solution):
    """Steady-state failure/recovery rates per chain-backed block."""
    rows = []
    for path in sorted(solution.by_path):
        block = solution.by_path[path]
        if block.chain is None:
            continue
        frequency = failure_frequency(block.chain)
        recovery = recovery_frequency(block.chain)
        assert frequency == pytest.approx(recovery, rel=1e-6)
        rows.append([
            path, f"{frequency * 8760:.4f}", f"{1 / frequency:.0f}"
            if frequency > 0 else "inf",
        ])
    emit_table(
        "E8: per-block steady-state failure rates",
        ["block", "failures/yr", "MTBI h"],
        rows,
    )


def test_e8_interval_failure_and_recovery_rates(solution):
    """The paper's 'interval availability, failure and recovery rates
    for (0, T)' on one representative block."""
    from repro.markov import (
        interval_availability,
        interval_failure_frequency,
        interval_recovery_frequency,
    )

    cpu = solution.block("Data Center System/Server Box/CPU Module")
    rows = []
    for horizon in (24.0, 720.0, 8760.0):
        rows.append([
            f"{horizon:.0f}",
            f"{interval_availability(cpu.chain, horizon):.9f}",
            f"{interval_failure_frequency(cpu.chain, horizon) * 8760:.5f}",
            f"{interval_recovery_frequency(cpu.chain, horizon) * 8760:.5f}",
        ])
    emit_table(
        "E8: interval availability / failure / recovery rates (0, T) "
        "for the CPU Module chain",
        ["T hours", "interval A", "failures/yr over (0,T)",
         "recoveries/yr over (0,T)"],
        rows,
    )
    # Long-horizon rates converge toward the steady-state frequency.
    steady = failure_frequency(cpu.chain) * 8760
    long_run = interval_failure_frequency(cpu.chain, 8760.0) * 8760
    assert long_run == pytest.approx(steady, rel=0.05)


def test_e8_hazard_rate_loop(solution):
    """The paper's 'hazard rate for the time increment in a loop'."""
    cpu = solution.block("Data Center System/Server Box/CPU Module")
    times = [10.0, 100.0, 1_000.0, 5_000.0]
    rows = [
        [f"{t:.0f}", f"{hazard_rate(cpu.chain, t):.3e}"] for t in times
    ]
    emit_table(
        "E8: hazard rate h(t) for the CPU Module chain",
        ["t hours", "hazard /h"],
        rows,
    )
    values = [hazard_rate(cpu.chain, t) for t in times]
    assert all(v > 0 for v in values)
