"""E17 — the telemetry layer: ingest throughput and resume identity.

The estimator's claims are operational, so the benchmark measures
them operationally:

* **Ingest throughput** — events per second, one call per event vs
  batched ``ingest_many``, on a long synthetic field trace; plus the
  idempotent-replay rate (a full duplicate pass must be cheap and
  change nothing).
* **Merge scaling** — the same trace split into per-unit shards and
  merged back must cost little and land on the single-pass digest.
* **Checkpoint-resume identity** — a ``kind="calibration"`` job is
  preempted mid-ingest and resumed by a fresh engine; the resumed
  proposal digest and state digest must equal the uninterrupted
  reference (the SIGKILL guarantee, measured rather than assumed).

Results land in ``BENCH_e17_telemetry.json`` at the repository root.
``python benchmarks/bench_e17_telemetry.py --quick`` shrinks the
trace for CI.
"""

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.engine import Engine  # noqa: E402
from repro.jobs import (  # noqa: E402
    Checkpointer,
    JobSpec,
    JobStore,
    execute_job,
)
from repro.library import e10000_model  # noqa: E402
from repro.spec import model_to_spec  # noqa: E402
from repro.telemetry import (  # noqa: E402
    RateEstimator,
    synthetic_field_events,
)

RESULT_PATH = Path(__file__).resolve().parents[1] / "BENCH_e17_telemetry.json"

BOOT_DISK = "E10000 Server/Boot Disk"
SEED = 3


def trace(quick):
    window = 100_000.0 if quick else 500_000.0
    return window, synthetic_field_events(
        e10000_model(), window_hours=window, seed=SEED,
        mtbf_shifts={BOOT_DISK: 0.01},
    )


def timed_ingest(events, batched):
    estimator = RateEstimator(window_hours=168.0)
    start = time.perf_counter()
    if batched:
        estimator.ingest_many(events)
    else:
        for event in events:
            estimator.ingest(event)
    return estimator, time.perf_counter() - start


def preempted_calibration(window, base):
    """Reference vs killed-and-resumed calibration job digests."""
    spec = JobSpec(
        kind="calibration",
        spec=model_to_spec(e10000_model()),
        params={
            "source": {
                "kind": "synthetic",
                "seed": SEED,
                "window_hours": window,
                "shifts": {BOOT_DISK: 0.01},
            },
            "chunk_events": 64,
        },
    )

    ref_store = JobStore(base / "ref.sqlite3")
    record, _ = ref_store.submit(spec)
    execute_job(
        ref_store.lease("ref"), ref_store,
        Engine(jobs=1, cache_dir=base / "ref-cache"),
        Checkpointer(base / "ref-ckpt"), checkpoint_every=1,
    )
    reference = ref_store.get(record.id).result

    store = JobStore(base / "jobs.sqlite3")
    checkpointer = Checkpointer(base / "ckpt")
    record, _ = store.submit(spec)
    chunks = []
    outcome = execute_job(
        store.lease("w1"), store,
        Engine(jobs=1, cache_dir=base / "w1-cache"),
        checkpointer, checkpoint_every=1,
        should_stop=lambda: len(chunks) >= 2 or chunks.append(None),
    )
    assert outcome == "released", outcome
    killed_after = len(checkpointer.load(record.id).values)

    start = time.perf_counter()
    outcome = execute_job(
        store.lease("w2"), store,
        Engine(jobs=1, cache_dir=base / "w2-cache"),
        checkpointer, checkpoint_every=1,
    )
    resume_seconds = time.perf_counter() - start
    assert outcome == "succeeded", outcome
    resumed = store.get(record.id).result
    return reference, resumed, killed_after, resume_seconds


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true")
    args = parser.parse_args()

    window, events = trace(args.quick)
    count = len(events)

    single, single_seconds = timed_ingest(events, batched=False)
    batched, batched_seconds = timed_ingest(events, batched=True)
    assert batched.state_digest() == single.state_digest()

    # Idempotent replay of the full trace against the warm state.
    start = time.perf_counter()
    accepted, duplicates = batched.ingest_many(events)
    replay_seconds = time.perf_counter() - start
    assert (accepted, duplicates) == (0, count)

    # Per-unit shards merged back to the single-pass state.
    shards = {}
    for event in events:
        shards.setdefault(event.unit, []).append(event)
    shard_estimators = []
    for shard_events in shards.values():
        estimator = RateEstimator(window_hours=168.0)
        estimator.ingest_many(shard_events)
        shard_estimators.append(estimator)
    start = time.perf_counter()
    merged = shard_estimators[0]
    for estimator in shard_estimators[1:]:
        merged = merged.merge(estimator)
    merge_seconds = time.perf_counter() - start
    assert merged.state_digest() == single.state_digest()

    with tempfile.TemporaryDirectory(prefix="bench-e17-") as tmp:
        reference, resumed, killed_after, resume_seconds = (
            preempted_calibration(window, Path(tmp))
        )
    assert resumed == reference, "resumed calibration differs"
    proposal_digest = reference["proposal"]["proposal_digest"]

    payload = {
        "benchmark": "e17_telemetry",
        "quick": bool(args.quick),
        "trace": {
            "window_hours": window,
            "events": count,
            "units": len(shards),
            "state_digest": single.state_digest(),
        },
        "ingest": {
            "single_seconds": round(single_seconds, 4),
            "batched_seconds": round(batched_seconds, 4),
            "single_events_per_second": round(count / single_seconds),
            "batched_events_per_second": round(count / batched_seconds),
            "batched_speedup": round(single_seconds / batched_seconds, 2),
            "replay_seconds": round(replay_seconds, 4),
            "replay_events_per_second": round(count / replay_seconds),
        },
        "merge": {
            "shards": len(shard_estimators),
            "merge_seconds": round(merge_seconds, 4),
            "digest_matches_single_pass": True,  # asserted above
        },
        "resume": {
            "chunks_before_kill": killed_after,
            "resume_seconds": round(resume_seconds, 3),
            "proposal_digest": proposal_digest,
            "state_digest": reference["state_digest"],
            "bit_identical": True,  # asserted above
        },
    }
    RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    print(f"trace                : {count} events over {window:.0f} h "
          f"({len(shards)} units)")
    print(f"ingest single/batched: {count / single_seconds:,.0f} / "
          f"{count / batched_seconds:,.0f} events/s "
          f"(x{single_seconds / batched_seconds:.1f})")
    print(f"idempotent replay    : {count / replay_seconds:,.0f} events/s")
    print(f"merge {len(shard_estimators):>3} shards     : "
          f"{merge_seconds * 1000:.1f} ms, digest matches single pass")
    print(f"calibration resume   : killed after {killed_after} chunks, "
          f"bit-identical (proposal {proposal_digest[:16]}...)")
    print(f"wrote {RESULT_PATH.name}")


if __name__ == "__main__":
    main()
