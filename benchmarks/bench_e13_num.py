"""E13 — the unified numerical kernel layer: sparse wins, grid wins.

Two headline claims of the ``repro.num`` substrate:

* **Representation crossover** — block chains generated for wide
  redundancy (the paper's "larger N and K" regime) are extremely
  sparse (~2.3 transitions per state), so the CSR ``sparse-direct``
  backend overtakes dense LAPACK once the state count clears a few
  hundred.  The ladder sweeps the redundancy quantity and reports the
  per-solve time of both backends on identical operators.
* **Shared-grid uniformization** — a 65-point transient curve through
  :func:`repro.num.transient_grid` shares one ``v_k = p0 P^k`` power
  sequence instead of re-running uniformization per point; the result
  is bit-identical to per-point evaluation and at least 5x faster.

Results also land in ``BENCH_e13_num.json`` at the repository root so
the kernel numbers travel with the code.  ``python
benchmarks/bench_e13_num.py --quick`` runs a reduced ladder for CI.
"""

import argparse
import json
import time
from pathlib import Path

import numpy as np

from repro import BlockParameters, GlobalParameters, generate_block_chain
from repro.num import (
    GeneratorOperator,
    SolverOptions,
    solve_steady,
    transient_distribution,
    transient_grid,
)

RESULT_PATH = Path(__file__).resolve().parents[1] / "BENCH_e13_num.json"

#: Redundancy quantities for the sparse-vs-dense ladder (~7 states per
#: unit of quantity with nontransparent recovery and repair).
LADDER = [32, 64, 128, 256]
QUICK_LADDER = [32, 64]

GRID_QUANTITY = 64
QUICK_GRID_QUANTITY = 32
GRID_POINTS = 65
GRID_HORIZON_HOURS = 64.0


def _wide_redundancy_chain(quantity):
    """An N-of-1 wide-redundancy block chain (the paper's Section 4)."""
    parameters = BlockParameters(
        name="FRU",
        quantity=quantity,
        min_required=1,
        mtbf_hours=50_000.0,
        transient_fit=10_000.0,
        p_latent_fault=0.05,
        p_spf=0.02,
        p_correct_diagnosis=0.95,
        recovery="nontransparent",
        repair="nontransparent",
    )
    return generate_block_chain(parameters, GlobalParameters())


def _time_solve(op, options, repeats=3):
    start = time.perf_counter()
    for _ in range(repeats):
        pi = solve_steady(op, options)
    elapsed = (time.perf_counter() - start) / repeats
    return elapsed, pi


def _representation_ladder(quantities):
    """Dense vs sparse steady-state solve times on identical chains."""
    rows = []
    for quantity in quantities:
        chain = _wide_redundancy_chain(quantity)
        dense_op = GeneratorOperator.from_chain(chain, representation="dense")
        sparse_op = GeneratorOperator.from_chain(
            chain, representation="sparse"
        )
        dense_s, dense_pi = _time_solve(
            dense_op, SolverOptions(steady_method="dense-direct")
        )
        sparse_s, sparse_pi = _time_solve(
            sparse_op,
            SolverOptions(
                steady_method="sparse-direct", representation="sparse"
            ),
        )
        np.testing.assert_allclose(sparse_pi, dense_pi, atol=1e-9)
        rows.append({
            "quantity": quantity,
            "n_states": chain.n_states,
            "nnz": sparse_op.nnz,
            "dense_ms": round(dense_s * 1e3, 3),
            "sparse_ms": round(sparse_s * 1e3, 3),
        })
    return rows


def _grid_section(quantity):
    """Shared-grid vs per-point uniformization on one transient curve."""
    chain = _wide_redundancy_chain(quantity)
    op = GeneratorOperator.from_chain(chain, representation="dense")
    times = np.linspace(0.0, GRID_HORIZON_HOURS, GRID_POINTS).tolist()
    p0 = chain.initial_distribution()

    start = time.perf_counter()
    grid = transient_grid(op, times, p0=p0)
    grid_s = time.perf_counter() - start

    start = time.perf_counter()
    per_point = [transient_distribution(op, t, p0=p0) for t in times]
    per_point_s = time.perf_counter() - start

    bit_identical = all(
        np.array_equal(a, b) for a, b in zip(grid, per_point)
    )
    return {
        "quantity": quantity,
        "n_states": chain.n_states,
        "n_points": GRID_POINTS,
        "horizon_hours": GRID_HORIZON_HOURS,
        "grid_ms": round(grid_s * 1e3, 1),
        "per_point_ms": round(per_point_s * 1e3, 1),
        "speedup": round(per_point_s / grid_s, 2),
        "bit_identical": bit_identical,
    }


def _run(quick=False):
    ladder = _representation_ladder(QUICK_LADDER if quick else LADDER)
    grid = _grid_section(QUICK_GRID_QUANTITY if quick else GRID_QUANTITY)

    # The headline claims, asserted so a regression fails the benchmark.
    largest = ladder[-1]
    assert largest["sparse_ms"] < largest["dense_ms"], (
        f"sparse-direct should win at {largest['n_states']} states"
    )
    assert grid["bit_identical"], "grid evaluation must match per-point"
    assert grid["speedup"] >= 5.0, (
        f"shared-grid speedup {grid['speedup']}x below the 5x floor"
    )

    crossover = next(
        (row["n_states"] for row in ladder
         if row["sparse_ms"] < row["dense_ms"]),
        None,
    )
    return {
        "benchmark": "e13_num_kernels",
        "quick": quick,
        "representation_ladder": ladder,
        "sparse_crossover_n_states": crossover,
        "uniformization_grid": grid,
    }


def _emit(results):
    from ._report import emit_table

    emit_table(
        "E13: sparse vs dense steady-state solve (wide-redundancy chains)",
        ["quantity", "states", "nnz", "dense ms", "sparse ms"],
        [
            [row["quantity"], row["n_states"], row["nnz"],
             f"{row['dense_ms']:.2f}", f"{row['sparse_ms']:.2f}"]
            for row in results["representation_ladder"]
        ],
    )
    grid = results["uniformization_grid"]
    emit_table(
        f"E13: shared-grid uniformization, {grid['n_points']}-point curve "
        f"({grid['n_states']} states)",
        ["metric", "value"],
        [
            ["per-point", f"{grid['per_point_ms']:.0f} ms"],
            ["shared grid", f"{grid['grid_ms']:.0f} ms"],
            ["speedup", f"{grid['speedup']:.1f}x"],
            ["bit-identical", "yes" if grid["bit_identical"] else "NO"],
        ],
    )


def _write(results):
    RESULT_PATH.write_text(
        json.dumps(results, indent=2, sort_keys=True) + "\n"
    )


def bench_e13_num_kernels(benchmark):
    results = benchmark.pedantic(_run, rounds=1, iterations=1)
    _emit(results)
    _write(results)


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="E13 numerical-kernel benchmark"
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="reduced ladder for CI smoke runs",
    )
    args = parser.parse_args(argv)
    results = _run(quick=args.quick)
    if not args.quick:
        # Quick runs are CI smoke checks; only full runs refresh the
        # checked-in result file.
        _write(results)
    print(json.dumps(results, indent=2, sort_keys=True))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
