"""E9 — the evaluation engine's cache, measured.

Runs the same 24-point parametric sweep twice on one engine: once cold
(empty cache — every point solves the varied block and all its
siblings) and once warm (every point comes back from the solve cache).
The reported numbers are the cold and warm wall times, the speedup,
and the block-cache hit rate — the headline claim is simply that the
warm sweep is measurably faster and the hit rate is non-zero.
"""

import time

from repro import datacenter_model
from repro.engine import Engine

from ._report import emit_table

CPU = "Data Center System/Server Box/CPU Module"
#: 24 sweep points — enough work that the cold/warm gap is not noise.
VALUES = [25_000.0 * step for step in range(1, 25)]


def _cold_and_warm():
    engine = Engine()
    model = datacenter_model()
    start = time.perf_counter()
    cold_points = engine.sweep_block_field(
        model, CPU, "mtbf_hours", VALUES
    )
    cold = time.perf_counter() - start
    start = time.perf_counter()
    warm_points = engine.sweep_block_field(
        model, CPU, "mtbf_hours", VALUES
    )
    warm = time.perf_counter() - start
    assert warm_points == cold_points
    return cold, warm, engine.stats_snapshot()


def bench_e9_engine_cold_vs_warm(benchmark):
    cold, warm, stats = benchmark.pedantic(
        _cold_and_warm, rounds=3, iterations=1
    )

    assert warm < cold, "warm sweep must beat the cold sweep"
    assert stats.cache_hit_rate > 0.0
    assert stats.system_cache_hits >= len(VALUES)  # the whole warm pass

    emit_table(
        "E9: engine cache, 24-point CPU MTBF sweep (Data Center model)",
        ["pass", "wall ms", "speedup", "block hit rate"],
        [
            ["cold", f"{cold * 1e3:.1f}", "1.0x", "-"],
            [
                "warm",
                f"{warm * 1e3:.1f}",
                f"{cold / warm:.1f}x",
                f"{stats.cache_hit_rate:.1%}",
            ],
        ],
    )
