"""E5 — Section 5: "for the MG models, the relative errors in yearly
downtime are all less than 0.2%".

The paper compared MG-generated models against models an expert built
by hand in commercial tools.  The reproduction's version of that loop:
for every library model, every MG-generated chain is re-evaluated
through the independent SHARPE-like analytic path, and the *system*
yearly downtime recomputed from those independent block availabilities
is compared to the MG pipeline's.  A Monte Carlo pass (the matrix-free
life-cycle simulator) provides the third, non-analytic opinion.
"""

import pytest

from repro import datacenter_model, e10000_model, translate, workgroup_model
from repro.units import availability_to_yearly_downtime_minutes
from repro.validation import (
    sharpe_availability,
    simulate_system_availability,
)

from ._report import emit, emit_table

PAPER_BAND = 0.002  # "< 0.2%"

MODELS = [
    ("Data Center System", datacenter_model),
    ("E10000 Server", e10000_model),
    ("Workgroup Server", workgroup_model),
]


def independent_system_availability(solution) -> float:
    """System availability with every chain re-solved independently."""

    def visit(block) -> float:
        if block.chain is not None:
            return sharpe_availability(block.chain)
        value = 1.0
        for child in block.children:
            value *= visit(child)
        return value ** block.block.parameters.quantity

    product = 1.0
    for top in solution.blocks:
        product *= visit(top)
    return product


def bench_e5_mg_vs_independent_downtime(benchmark):
    solutions = {name: translate(factory()) for name, factory in MODELS}

    def independent_pass():
        return {
            name: independent_system_availability(solution)
            for name, solution in solutions.items()
        }

    independent = benchmark(independent_pass)

    rows = []
    for name, _factory in MODELS:
        solution = solutions[name]
        mg_downtime = availability_to_yearly_downtime_minutes(
            solution.availability
        )
        ind_downtime = availability_to_yearly_downtime_minutes(
            independent[name]
        )
        relative = abs(mg_downtime - ind_downtime) / mg_downtime
        rows.append([
            name,
            f"{mg_downtime:.4f}",
            f"{ind_downtime:.4f}",
            f"{relative:.2e}",
            "PASS" if relative < PAPER_BAND else "FAIL",
        ])
        assert relative < PAPER_BAND, name

    emit_table(
        "E5 (Section 5): MG yearly downtime vs independent evaluation "
        f"(paper band: < {PAPER_BAND:.1%})",
        ["model", "MG downtime min/yr", "independent min/yr",
         "rel. error", "verdict"],
        rows,
    )


def test_e5_monte_carlo_third_opinion():
    """The matrix-free life-cycle simulator as the third tool."""
    solution = translate(workgroup_model())
    mc = simulate_system_availability(
        solution, horizon=30_000.0, replications=50, seed=7
    )
    emit(
        "",
        "E5 Monte Carlo third opinion (Workgroup Server):",
        f"  analytic availability : {solution.availability:.6f}",
        f"  simulated             : {mc.mean:.6f} "
        f"[{mc.low:.6f}, {mc.high:.6f}]",
        f"  analytic inside 95% CI: {mc.contains(solution.availability)}",
    )
    assert mc.contains(solution.availability)
