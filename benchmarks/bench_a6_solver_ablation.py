"""A6 — Ablation: numerical solution methods on stiff RAS chains.

RAScad solves its generated chains "using numerical methods"; this
ablation justifies the repository's choice of production solver.  RAS
chains are *stiff* — FIT-scale failure rates (1e-9/h) against
minute-scale recovery rates (1e+1/h) — so the candidates are compared
on exactly such chains for accuracy (vs. the subtraction-free GTH
reference) and speed across model sizes.
"""

import time

import numpy as np
import pytest

from repro import BlockParameters, GlobalParameters, generate_block_chain
from repro.markov import (
    solve_steady_state,
    solve_steady_state_gth,
    solve_steady_state_power,
)
from repro.validation.sharpe import sharpe_steady_state

from ._report import emit, emit_table


def stiff_chain(depth: int):
    parameters = BlockParameters(
        name="stiff",
        quantity=depth + 1,
        min_required=1,
        mtbf_hours=5.0e6,          # 200 FIT permanent
        transient_fit=10.0,        # 1e-8/h transient
        p_latent_fault=0.05,
        p_spf=0.01,
        p_correct_diagnosis=0.95,
        ar_time_minutes=5.0,       # 12/h recovery: 9 decades of rates
        recovery="nontransparent",
        repair="nontransparent",
    )
    return generate_block_chain(parameters, GlobalParameters())


def bench_a6_method_comparison(benchmark):
    chains = {depth: stiff_chain(depth) for depth in (1, 4, 16)}

    def run_direct():
        return {
            depth: solve_steady_state(chain)
            for depth, chain in chains.items()
        }

    direct = benchmark(run_direct)

    rows = []
    for depth, chain in chains.items():
        reference = solve_steady_state_gth(chain)

        timings = {}
        errors = {}
        for label, solver in (
            ("direct", solve_steady_state),
            ("gth", solve_steady_state_gth),
            ("power", solve_steady_state_power),
        ):
            start = time.perf_counter()
            pi = solver(chain)
            timings[label] = (time.perf_counter() - start) * 1e3
            errors[label] = float(np.abs(pi - reference).max())
        start = time.perf_counter()
        sharpe = sharpe_steady_state(chain)
        timings["sharpe-path"] = (time.perf_counter() - start) * 1e3
        errors["sharpe-path"] = float(
            np.abs(
                np.array([sharpe[name] for name in chain.state_names])
                - reference
            ).max()
        )

        for label in ("direct", "gth", "power", "sharpe-path"):
            rows.append([
                chain.n_states, label,
                f"{timings[label]:.3f}", f"{errors[label]:.2e}",
            ])

        # Everybody agrees on a 9-decade-stiff chain.
        assert errors["direct"] < 1e-10
        assert errors["power"] < 1e-8
        assert errors["sharpe-path"] < 1e-8
        np.testing.assert_allclose(direct[depth], reference, atol=1e-10)

    emit_table(
        "A6: steady-state solver ablation on 9-decade-stiff chains "
        "(error vs subtraction-free GTH)",
        ["states", "method", "time ms", "max |pi error|"],
        rows,
    )
