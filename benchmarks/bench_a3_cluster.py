"""A3 — Extension: the primary/standby cluster ("work in progress").

Section 2 of the paper: "Model generation for the primary standby and
primary secondary (e.g., cluster) architecture is the work in
progress."  This benchmark exercises the reproduction's implementation
of that extension: the cluster chain across failover-quality settings,
and the design question it answers — when does clustering beat simply
buying a better single node?
"""

import pytest

from repro.library import ClusterParameters, cluster_availability, cluster_chain
from repro.gmb import MarkovBuilder
from repro.markov import mean_time_to_failure, steady_state_availability
from repro.units import availability_to_yearly_downtime_minutes

from ._report import emit, emit_table


def single_node(mtbf_hours: float, repair_hours: float):
    return (
        MarkovBuilder("single-node")
        .up("Up").down("Down")
        .arc("Up", "Down", 1.0 / mtbf_hours)
        .arc("Down", "Up", 1.0 / repair_hours)
        .build()
    )


def bench_a3_cluster_design_space(benchmark):
    settings = [
        ("fast+sure failover", ClusterParameters(
            failover_minutes=1.0, p_failover_success=0.999)),
        ("default", ClusterParameters()),
        ("slow failover", ClusterParameters(
            failover_minutes=15.0, p_failover_success=0.95)),
        ("flaky failover", ClusterParameters(
            failover_minutes=3.0, p_failover_success=0.70)),
    ]

    def run():
        return {
            label: cluster_availability(parameters)
            for label, parameters in settings
        }

    availabilities = benchmark(run)

    rows = []
    for label, parameters in settings:
        availability = availabilities[label]
        chain = cluster_chain(parameters)
        rows.append([
            label,
            f"{parameters.failover_minutes:g}",
            f"{parameters.p_failover_success:g}",
            f"{availability:.8f}",
            f"{availability_to_yearly_downtime_minutes(availability):.2f}",
            f"{mean_time_to_failure(chain):.0f}",
        ])
    emit_table(
        "A3: primary/standby cluster design space",
        ["setting", "Tfo min", "P(fo ok)", "availability",
         "downtime min/yr", "MTTF h"],
        rows,
    )

    assert availabilities["fast+sure failover"] == max(
        availabilities.values()
    )
    assert availabilities["flaky failover"] == min(availabilities.values())


def test_a3_cluster_vs_better_single_node():
    """The crossover the architecture decision hinges on."""
    cluster = cluster_availability(ClusterParameters(
        node_mtbf_hours=10_000.0, node_repair_hours=12.0,
        emergency_repair_hours=8.0,
    ))
    rows = []
    crossover = None
    for factor in (1, 2, 5, 10, 50, 100):
        single = steady_state_availability(
            single_node(10_000.0 * factor, 12.0)
        )
        winner = "cluster" if cluster > single else "single"
        if crossover is None and single > cluster:
            crossover = factor
        rows.append([
            f"{factor}x", f"{single:.8f}", f"{cluster:.8f}", winner,
        ])
    emit_table(
        "A3: cluster of 10k-hour nodes vs a single node with better MTBF",
        ["single-node MTBF factor", "single A", "cluster A", "winner"],
        rows,
    )
    # Shape: the cluster beats a same-grade single node easily, and the
    # single node needs an order of magnitude better hardware to win.
    assert rows[0][3] == "cluster"
    assert crossover is not None and crossover >= 10
