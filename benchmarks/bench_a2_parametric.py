"""A2 — RAScad's parametric analysis capability.

Regenerates the curves a RAS architect reads off RAScad's parametric
plots: system downtime as a function of Pcd, Plf, MTTDLF, Tresp, and
the global MTTM, on the Data Center model.  The asserted shapes are
the monotonicities the engineering semantics demand.
"""

import pytest

from repro import datacenter_model
from repro.analysis import sweep_block_field, sweep_global_field

from ._report import emit, emit_table

CPU = "Data Center System/Server Box/CPU Module"
BOARD = "Data Center System/Server Box/System Board"
# Latent-fault sweeps target the RAID5 array: transparent recovery and
# a weekly surface scan put it in the regime where an undetected bad
# disk creates real double-fault exposure (a latent fault on the CPU
# block merely *defers* its reboot-style AR, which is availability-
# neutral at CPU MTBFs — see test_a2_latent_deferral_is_neutral_on_cpu).
RAID = "Data Center System/Storage 1, RAID5"

SWEEPS = [
    # (label, kind, path, field, values, direction)
    ("Pcd (CPU Module)", "block", CPU, "p_correct_diagnosis",
     [0.80, 0.90, 0.95, 0.99, 1.0], "down"),
    ("Plf (Storage RAID5)", "block", RAID, "p_latent_fault",
     [0.0, 0.05, 0.10, 0.20, 0.40], "up"),
    ("MTTDLF hours (Storage RAID5)", "block", RAID, "mttdlf_hours",
     [6.0, 24.0, 168.0, 720.0], "up"),
    ("Tresp hours (System Board)", "block", BOARD,
     "service_response_hours", [1.0, 4.0, 12.0, 48.0], "up"),
    ("MTTM hours (global)", "global", None, "mttm_hours",
     [4.0, 24.0, 96.0, 336.0], "up"),
]


def bench_a2_parametric_sweeps(benchmark):
    def run_all():
        results = {}
        for label, kind, path, field, values, _direction in SWEEPS:
            model = datacenter_model()
            if kind == "block":
                results[label] = sweep_block_field(
                    model, path, field, values
                )
            else:
                results[label] = sweep_global_field(model, field, values)
        return results

    results = benchmark.pedantic(run_all, rounds=3, iterations=1)

    for label, _kind, _path, _field, _values, direction in SWEEPS:
        points = results[label]
        emit_table(
            f"A2: system downtime vs {label}",
            ["value", "availability", "downtime min/yr"],
            [
                [f"{p.value:g}", f"{p.availability:.8f}",
                 f"{p.yearly_downtime_minutes:.3f}"]
                for p in points
            ],
        )
        downtimes = [p.yearly_downtime_minutes for p in points]
        if direction == "up":
            assert downtimes == sorted(downtimes), label
        else:
            assert downtimes == sorted(downtimes, reverse=True), label


def test_a2_latent_detection_interacts_with_plf():
    """MTTDLF only matters when latent faults exist: at Plf = 0 the
    MTTDLF sweep must be flat."""
    model = datacenter_model()
    from repro.analysis import with_block_changes

    no_latents = with_block_changes(model, RAID, p_latent_fault=0.0)
    flat = sweep_block_field(
        no_latents, RAID, "mttdlf_hours", [6.0, 96.0, 384.0]
    )
    values = [p.availability for p in flat]
    emit(
        "",
        "A2 interaction check: MTTDLF sweep at Plf=0 is flat: "
        f"{[f'{v:.10f}' for v in values]}",
    )
    assert max(values) - min(values) < 1e-12


def test_a2_latent_deferral_is_neutral_on_cpu():
    """Documented subtlety: for a nontransparent-recovery block whose
    double-fault exposure is negligible (CPU, 1M-hour MTBF), a latent
    fault merely defers the same AR outage, so Plf barely moves system
    downtime (and can even *reduce* it by stretching the fault cycle)."""
    points = sweep_block_field(
        datacenter_model(), CPU, "p_latent_fault", [0.0, 0.2, 0.4]
    )
    downtimes = [p.yearly_downtime_minutes for p in points]
    spread = max(downtimes) - min(downtimes)
    emit(
        "",
        f"A2 CPU Plf neutrality: downtime spread over Plf 0..0.4 = "
        f"{spread:.4f} min/yr",
    )
    assert spread < 0.05
