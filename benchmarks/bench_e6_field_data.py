"""E6 — Section 5: field data from two E10000 servers over 15 months.

The reproduction's version of the paper's field validation: two
simulated E10000 sites each log 15 months of outages (synthetic traces
played forward from the model), a MEADEP-style estimator recovers
availability/MTBF/MTTR from each log, and the model prediction is
checked against the measured confidence intervals.  A deliberately
mis-parameterized model is also tested to show the comparison loop can
*reject* a wrong model — the power the paper's validation relies on.
"""

import pytest

from repro import compute_measures, e10000_model, translate
from repro.analysis import with_block_changes
from repro.validation import generate_field_log, laplace_trend_test
from repro.validation.field_data import FIFTEEN_MONTHS_HOURS

from ._report import emit, emit_table

SERVERS = [("server-A", 17), ("server-B", 23)]


@pytest.fixture(scope="module")
def solution():
    return translate(e10000_model())


def bench_e6_two_servers_fifteen_months(benchmark, solution):
    def generate_logs():
        return [
            generate_field_log(solution, server=name, seed=seed)
            for name, seed in SERVERS
        ]

    logs = benchmark.pedantic(generate_logs, rounds=3, iterations=1)

    rows = []
    consistent = 0
    for log in logs:
        estimate = log.estimate()
        inside = estimate.contains_availability(solution.availability)
        consistent += inside
        # MEADEP-style pre-check: a stationary comparison is only valid
        # on a trend-free failure process.
        trend = laplace_trend_test(log.events, log.window_hours)
        rows.append([
            log.server,
            estimate.n_outages,
            f"{estimate.total_downtime_hours:.1f}",
            f"{estimate.availability:.6f}",
            f"[{estimate.availability_low:.6f}, "
            f"{estimate.availability_high:.6f}]",
            f"{estimate.mtbf_hours:.0f}",
            f"{estimate.mttr_hours * 60:.0f}",
            f"{trend.statistic:+.2f}",
            "yes" if inside else "NO",
        ])
        assert not trend.significant_at_95, (
            f"{log.server}: trending failure process invalidates the "
            "stationary comparison"
        )

    emit_table(
        "E6 (Section 5): model vs 15-month field logs, two E10000 servers",
        ["server", "outages", "downtime h", "measured A",
         "95% CI", "MTBF h", "MTTR min", "Laplace u", "model in CI"],
        rows,
    )
    measures = compute_measures(solution)
    emit(
        "",
        f"model prediction: A = {solution.availability:.6f}, "
        f"{measures.yearly_downtime_minutes:.1f} min/yr, "
        f"{measures.failures_per_year:.2f} interruptions/yr",
        f"window: {FIFTEEN_MONTHS_HOURS:.0f} h",
    )

    # Both sites should be statistically consistent with the truth.
    assert consistent == len(SERVERS)


def test_e6_comparison_rejects_wrong_model(solution):
    """Validation power: a 10x-wrong OS model must be detected."""
    wrong = translate(
        with_block_changes(
            e10000_model(), "E10000 Server/Operating System",
            mtbf_hours=4_000.0, transient_fit=120_000.0,
        )
    )
    logs = [
        generate_field_log(solution, server=f"site-{i}", seed=100 + i)
        for i in range(6)
    ]
    hits = sum(
        log.estimate().contains_availability(wrong.availability)
        for log in logs
    )
    emit(
        "",
        "E6 power check: deliberately wrong model "
        f"(A = {wrong.availability:.6f} vs truth "
        f"{solution.availability:.6f})",
        f"  accepted by {hits}/6 simulated sites (should be nearly none)",
    )
    assert hits <= 2
