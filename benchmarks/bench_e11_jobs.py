"""E11 — the durable job subsystem: throughput and resume overhead.

Runs the same sweep job three ways on pristine stores and caches:

* **uninterrupted** — submit, lease, execute to completion; the
  baseline points/sec of checkpointed execution (checkpoint + SQLite
  heartbeat every chunk).
* **engine direct** — the identical points through ``Engine.map``'s
  serial path with no checkpoint/store machinery; the difference to
  the uninterrupted run is the durability overhead.
* **interrupted + resumed** — preempt the job at the halfway
  checkpoint (the SIGTERM path: checkpoint, release), then resume it
  with a *fresh* engine.  The headline claims: the resumed payload is
  bit-identical (same ``result_digest``), only the tail re-solves
  (engine ``system_solves`` = points past the checkpoint), and resume
  overhead stays a small fraction of the saved work.

Results also land in ``BENCH_e11_jobs.json`` at the repository root so
the durability numbers travel with the code.
"""

import json
import time
from pathlib import Path

from repro.engine import Engine
from repro.jobs import Checkpointer, JobSpec, JobStore, execute_job
from repro.library import e10000_model
from repro.spec import model_to_spec

from ._report import emit_table

RESULT_PATH = Path(__file__).resolve().parents[1] / "BENCH_e11_jobs.json"

POINTS = 60
CHECKPOINT_EVERY = 10


def _job_spec():
    start, stop = 1e5, 1e6
    step = (stop - start) / (POINTS - 1)
    return JobSpec(
        kind="sweep",
        spec=model_to_spec(e10000_model()),
        params={
            "field": "mtbf_hours",
            "block": "E10000 Server/Operating System",
            "values": [start + step * i for i in range(POINTS)],
        },
    )


def _uninterrupted(base):
    store = JobStore(base / "ref.sqlite3")
    ckpt = Checkpointer(base / "ref-ckpt")
    engine = Engine(jobs=1, cache_dir=base / "ref-cache")
    record, _ = store.submit(_job_spec())
    leased = store.lease("bench")
    start = time.perf_counter()
    outcome = execute_job(
        leased, store, engine, ckpt, checkpoint_every=CHECKPOINT_EVERY
    )
    elapsed = time.perf_counter() - start
    assert outcome == "succeeded"
    return elapsed, store.get(record.id).result


def _engine_direct(base):
    engine = Engine(jobs=1, cache_dir=base / "direct-cache")
    spec = _job_spec()
    start = time.perf_counter()
    engine.sweep_block_field(
        e10000_model(),
        str(spec.params["block"]),
        str(spec.params["field"]),
        list(spec.params["values"]),
    )
    return time.perf_counter() - start


def _interrupted_then_resumed(base):
    store = JobStore(base / "main.sqlite3")
    ckpt = Checkpointer(base / "main-ckpt")
    engine = Engine(jobs=1, cache_dir=base / "main-cache")
    record, _ = store.submit(_job_spec())
    leased = store.lease("bench-first")

    chunks = []
    target = POINTS // (2 * CHECKPOINT_EVERY)  # stop at the halfway mark

    start = time.perf_counter()
    outcome = execute_job(
        leased, store, engine, ckpt, checkpoint_every=CHECKPOINT_EVERY,
        should_stop=lambda: len(chunks) >= target or chunks.append(None),
    )
    first_leg = time.perf_counter() - start
    assert outcome == "released"
    completed = len(ckpt.load(record.id).values)

    fresh = Engine(jobs=1, cache_dir=base / "resume-cache")
    resumed = store.lease("bench-second")
    start = time.perf_counter()
    outcome = execute_job(
        resumed, store, fresh, ckpt, checkpoint_every=CHECKPOINT_EVERY
    )
    second_leg = time.perf_counter() - start
    assert outcome == "succeeded"

    tail_solves = fresh.stats.snapshot().system_solves
    return (
        first_leg, second_leg, completed, tail_solves,
        store.get(record.id).result,
    )


def _run(tmp_base):
    ref_elapsed, ref_result = _uninterrupted(tmp_base / "a")
    direct_elapsed = _engine_direct(tmp_base / "b")
    (first_leg, second_leg, completed, tail_solves,
     resumed_result) = _interrupted_then_resumed(tmp_base / "c")

    assert resumed_result == ref_result
    assert tail_solves == POINTS - completed
    return {
        "ref_elapsed": ref_elapsed,
        "direct_elapsed": direct_elapsed,
        "first_leg": first_leg,
        "second_leg": second_leg,
        "completed": completed,
        "tail_solves": tail_solves,
        "digest": ref_result["result_digest"],
    }


def bench_e11_jobs_resume(benchmark, tmp_path_factory):
    run = benchmark.pedantic(
        lambda: _run(tmp_path_factory.mktemp("e11")),
        rounds=3,
        iterations=1,
    )

    points_per_sec = POINTS / run["ref_elapsed"]
    durability_overhead = run["ref_elapsed"] / run["direct_elapsed"] - 1.0
    tail = POINTS - run["completed"]
    # Overhead of resuming vs. just having kept going: the second leg
    # solved `tail` points; at the uninterrupted rate those cost
    # tail / points_per_sec seconds.
    resume_overhead = run["second_leg"] - tail / points_per_sec

    emit_table(
        f"E11: durable jobs, {POINTS}-point E10000 sweep "
        f"(checkpoint every {CHECKPOINT_EVERY})",
        ["metric", "value"],
        [
            ["throughput", f"{points_per_sec:.1f} points/s"],
            ["durability overhead",
             f"{durability_overhead:+.1%} vs. bare engine sweep"],
            ["preempted at", f"{run['completed']}/{POINTS} points"],
            ["tail re-solved", f"{run['tail_solves']} points "
             "(= points past the checkpoint)"],
            ["resume overhead", f"{resume_overhead * 1e3:+.1f} ms"],
            ["bit-identical", f"yes ({run['digest'][:16]}...)"],
        ],
    )

    RESULT_PATH.write_text(json.dumps({
        "benchmark": "e11_jobs_resume",
        "points": POINTS,
        "checkpoint_every": CHECKPOINT_EVERY,
        "points_per_sec": round(points_per_sec, 2),
        "durability_overhead_frac": round(durability_overhead, 4),
        "preempted_at_points": run["completed"],
        "tail_resolved_points": run["tail_solves"],
        "resume_overhead_seconds": round(resume_overhead, 4),
        "result_digest": run["digest"],
    }, indent=2, sort_keys=True) + "\n")
