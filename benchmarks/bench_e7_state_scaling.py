"""E7 — Section 4: automatic state generation for larger N and K.

The paper: "For larger N and K values, more states are needed and
these states are all generated automatically in RAScad" and "if
N-K > 1, states TF1, AR1, PF1 and Latent1 will be repeated in the
model."  This benchmark sweeps the redundancy depth, reports the state
and transition counts plus generation/solve time, and asserts the
linear growth the repetition rule implies.
"""

import time

import pytest

from repro import BlockParameters, GlobalParameters, generate_block_chain
from repro.markov import steady_state_availability

from ._report import emit, emit_table

DEPTHS = [1, 2, 4, 8, 16, 32]


def parameters(n, k):
    return BlockParameters(
        name="FRU",
        quantity=n,
        min_required=k,
        mtbf_hours=50_000.0,
        transient_fit=10_000.0,
        p_latent_fault=0.05,
        p_spf=0.02,
        p_correct_diagnosis=0.95,
        recovery="nontransparent",
        repair="nontransparent",
    )


def bench_e7_state_space_scaling(benchmark):
    g = GlobalParameters()

    def generate_all():
        return {
            depth: generate_block_chain(parameters(depth + 1, 1), g)
            for depth in DEPTHS
        }

    chains = benchmark(generate_all)

    rows = []
    counts = []
    for depth in DEPTHS:
        chain = chains[depth]
        start = time.perf_counter()
        availability = steady_state_availability(chain)
        solve_ms = (time.perf_counter() - start) * 1e3
        counts.append(chain.n_states)
        rows.append([
            depth + 1, 1, depth, chain.n_states,
            len(chain.transitions()),
            f"{solve_ms:.2f}",
            f"{availability:.8f}",
        ])

    emit_table(
        "E7 (Section 4): generated state space vs redundancy depth N-K",
        ["N", "K", "depth", "states", "arcs", "solve ms", "availability"],
        rows,
    )

    # Linear growth: constant per-level state increment.
    per_level = [
        (counts[i + 1] - counts[i]) / (DEPTHS[i + 1] - DEPTHS[i])
        for i in range(len(DEPTHS) - 1)
    ]
    emit("", f"states per additional redundancy level: {per_level}")
    assert len(set(per_level)) == 1, "growth must be exactly linear"
    assert counts[-1] < 8 * (DEPTHS[-1] + 2), "bounded by 7 states/level"


def test_e7_wide_k_sweep():
    """K varies at fixed N: state count depends only on N-K."""
    g = GlobalParameters()
    sizes = {}
    for k in (1, 4, 8, 12, 15):
        chain = generate_block_chain(parameters(16, k), g)
        sizes[k] = chain.n_states
    emit("", f"E7 K-sweep at N=16: states by K = {sizes}")
    # Equal depth -> equal size: compare K pairs with matching N-K.
    chain_a = generate_block_chain(parameters(16, 8), g)
    chain_b = generate_block_chain(parameters(24, 16), g)
    assert chain_a.n_states == chain_b.n_states
