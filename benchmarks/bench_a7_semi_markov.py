"""A7 — Ablation: semi-Markov transient evaluation via phase-type
expansion.

GMB exposes semi-Markov modeling but RAScad's solvers are Markovian:
the bridge is two-moment phase-type expansion.  This ablation measures
(a) the accuracy of PH transient availability against ground-truth
Monte Carlo for a deterministic-reboot OS model, and (b) the state-
space cost of the expansion as the fit tightens.
"""

import numpy as np
import pytest

from repro.semimarkov import (
    Deterministic,
    Exponential,
    Lognormal,
    SemiMarkovProcess,
    expand_to_ctmc,
    semi_markov_availability,
    simulate_interval_availability,
    smp_transient_availability,
)
from repro.markov import steady_state_availability

from ._report import emit, emit_table


def os_model() -> SemiMarkovProcess:
    """OS: exponential panics, deterministic 6-min reboot, lognormal
    manual recovery for 5% of panics."""
    process = SemiMarkovProcess("os")
    process.add_state("Running")
    process.add_state("Reboot", reward=0.0)
    process.add_state("Manual", reward=0.0)
    process.add_transition(
        "Running", "Reboot", 1.0, Exponential.from_mean(1_000.0)
    )
    process.add_transition("Reboot", "Running", 0.95, Deterministic(0.1))
    process.add_transition("Reboot", "Manual", 0.05, Deterministic(0.1))
    process.add_transition(
        "Manual", "Running", 1.0, Lognormal.from_mean_cv(2.0, 1.2)
    )
    return process


def bench_a7_phase_type_expansion(benchmark):
    process = os_model()

    def expand_all():
        return {
            stages: expand_to_ctmc(process, max_stages=stages)
            for stages in (4, 16, 64)
        }

    chains = benchmark(expand_all)

    exact_steady = semi_markov_availability(process)
    rows = []
    for stages, chain in chains.items():
        steady = steady_state_availability(chain)
        rows.append([
            stages, chain.n_states,
            f"{steady:.9f}",
            f"{abs(steady - exact_steady):.2e}",
        ])
        # Steady state is exact for any PH fit (means preserved).
        assert steady == pytest.approx(exact_steady, rel=1e-9)
    emit_table(
        "A7: phase-type expansion of the deterministic-reboot OS model",
        ["max stages", "CTMC states", "steady-state A",
         "|error| vs ratio formula"],
        rows,
    )


def test_a7_transient_accuracy_vs_monte_carlo():
    """Interval-averaged PH availability sits inside the MC 95% CI."""
    process = os_model()
    horizon = 500.0
    times = np.linspace(0.0, horizon, 26)
    values = [
        smp_transient_availability(process, float(t), max_stages=16)
        for t in times
    ]
    from scipy.integrate import simpson

    ph_interval = float(simpson(values, x=times)) / horizon
    mc = simulate_interval_availability(
        process, horizon=horizon, replications=400, seed=21
    )
    emit(
        "",
        "A7 transient check (interval availability over 500 h):",
        f"  phase-type (16 stages): {ph_interval:.6f}",
        f"  Monte Carlo           : {mc.mean:.6f} "
        f"[{mc.low:.6f}, {mc.high:.6f}]",
        f"  inside 95% CI         : {mc.contains(ph_interval)}",
    )
    assert mc.contains(ph_interval)
