"""E16 — the studies layer: bit-identity and warm-cache economics.

A study's whole value proposition is that design-space search is
cheap *because* every candidate solve flows through the engine's
content-addressed cache, and safe *because* every execution path —
direct, clustered, killed-and-resumed — produces the byte-identical
Pareto front.  This benchmark measures and asserts both:

* **Bit-identity** — the same grid study is run four ways: single
  process, through a real 2-worker :class:`Coordinator` fan-out
  (engine-backed worker clients), and as a checkpointed study job
  that is preempted mid-search and resumed by a fresh engine.  All
  four ``result_digest`` values must be equal.
* **Warm-cache skip ratio** — re-running the study against the first
  run's solve cache must skip at least **90%** of candidate solves
  (it skips all of them: the study id and every candidate digest are
  content-addressed, so a re-run is pure cache traffic).
* **Throughput** — cold vs warm wall-clock, candidates per second.

Results land in ``BENCH_e16_studies.json`` at the repository root.
``python benchmarks/bench_e16_studies.py --quick`` shrinks the grid
for CI.
"""

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.cluster import ClusterConfig, Coordinator, Membership  # noqa: E402
from repro.cluster.membership import worker_id_for  # noqa: E402
from repro.cluster.workloads import StudyWorkload  # noqa: E402
from repro.engine import Engine  # noqa: E402
from repro.jobs import Checkpointer, JobSpec, JobStore, execute_job  # noqa: E402
from repro.library import workgroup_model  # noqa: E402
from repro.spec import model_to_spec, parse_spec  # noqa: E402
from repro.studies import (  # noqa: E402
    INVALID_AVAILABILITY,
    parse_study,
    run_study,
)

RESULT_PATH = Path(__file__).resolve().parents[1] / "BENCH_e16_studies.json"

FAN = "Workgroup Server/Fan"
PSU = "Workgroup Server/Power Supply"
OS = "Workgroup Server/Operating System"
SKIP_FLOOR = 0.90


def study_document(quick):
    fan = [2, 3] if quick else [2, 3, 4, 5]
    psu = [1, 2] if quick else [1, 2, 3]
    mtbf = [120_000.0] if quick else [120_000.0, 240_000.0]
    return {
        "name": "e16-sizing",
        "base": model_to_spec(workgroup_model()),
        "strategy": "grid",
        "variables": [
            {"path": FAN, "field": "quantity", "values": fan},
            {"path": PSU, "field": "quantity", "values": psu},
            {"path": OS, "field": "mtbf_hours", "values": mtbf},
        ],
    }


def study_for(quick):
    return parse_study(study_document(quick))


class EngineClient:
    """A cluster worker client that solves shards on a local engine."""

    def __init__(self, url, engine):
        self.url = url
        self.worker_id = worker_id_for(url)
        self.engine = engine

    def execute_shard(self, workload, lo, hi, trace_header=None):
        bodies = []
        for _path, payload in workload.calls(lo, hi):
            model = parse_spec(dict(payload["spec"]))
            solution = self.engine.solve(model, "direct")
            bodies.append({
                "model": model.name,
                "availability": solution.availability,
            })
        return bodies


def clustered_run(quick, worker_count):
    """The study evaluated round-by-round through a real Coordinator."""
    urls = [f"http://worker-{i}:1" for i in range(worker_count)]
    config = ClusterConfig(
        workers=tuple(urls), shard_size=2, fanout_threshold=1,
    )
    engine = Engine(jobs=1)
    coordinator = Coordinator(
        Membership(lease_timeout=config.lease_timeout),
        config=config,
        client_factory=lambda url, timeout=None: EngineClient(url, engine),
    )
    state = {"round": 0}

    def evaluate(candidates):
        round_index = state["round"]
        state["round"] += 1
        valid = [
            (position, candidate)
            for position, candidate in enumerate(candidates)
            if candidate.model is not None
        ]
        workload = StudyWorkload(
            "bench-e16", round_index,
            [model_to_spec(c.model) for _p, c in valid],
        )
        merged = coordinator.run_workload(workload, timeout=300)
        availabilities = [INVALID_AVAILABILITY] * len(candidates)
        for (position, _c), availability in zip(
            valid, merged["availabilities"]
        ):
            availabilities[position] = float(availability)
        return availabilities

    start = time.perf_counter()
    result = run_study(study_for(quick), evaluate=evaluate)
    return result, time.perf_counter() - start


def preempted_job_run(quick, base):
    """The study as a job, SIGKILL-style preemption, fresh-engine resume."""
    spec_doc = study_document(quick)
    job = JobSpec(
        kind="study",
        spec=spec_doc["base"],
        params={
            key: value
            for key, value in spec_doc.items()
            if key != "base"
        },
    )
    store = JobStore(base / "jobs.sqlite3")
    checkpointer = Checkpointer(base / "ckpt")
    record, _ = store.submit(job)

    first = Engine(jobs=1, cache_dir=base / "w1-cache")
    chunks = []
    outcome = execute_job(
        store.lease("w1"), store, first, checkpointer,
        checkpoint_every=3,
        should_stop=lambda: len(chunks) >= 1 or chunks.append(None),
    )
    assert outcome == "released", outcome
    solved_before_kill = first.stats.snapshot().system_solves

    # The successor process: fresh engine, no shared cache.
    fresh = Engine(jobs=1, cache_dir=base / "w2-cache")
    outcome = execute_job(
        store.lease("w2"), store, fresh, checkpointer, checkpoint_every=3,
    )
    assert outcome == "succeeded", outcome
    result = store.get(record.id).result
    return result, solved_before_kill, fresh.stats.snapshot().system_solves


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true")
    args = parser.parse_args()

    study = study_for(args.quick)

    # Cold single-process run.
    cold_engine = Engine(jobs=1)
    start = time.perf_counter()
    reference = run_study(study, engine=cold_engine)
    cold_seconds = time.perf_counter() - start
    evaluated = reference["evaluated"]
    cold_solves = cold_engine.stats.snapshot().system_solves

    # Warm re-run against the same cache: the skip-ratio claim.
    warm_engine = Engine(jobs=1, cache=cold_engine.cache)
    start = time.perf_counter()
    warm = run_study(study_for(args.quick), engine=warm_engine)
    warm_seconds = time.perf_counter() - start
    warm_stats = warm_engine.stats.snapshot()
    skipped = 1.0 - (
        warm_stats.system_solves / evaluated if evaluated else 0.0
    )
    assert warm == reference, "warm re-run is not bit-identical"
    assert skipped >= SKIP_FLOOR, (
        f"warm re-run skipped only {skipped:.0%} of {evaluated} solves "
        f"(floor {SKIP_FLOOR:.0%})"
    )

    # 2-worker cluster fan-out.
    clustered, cluster_seconds = clustered_run(args.quick, worker_count=2)
    assert clustered == reference, "clustered study is not bit-identical"

    # Preempt-and-resume job.
    with tempfile.TemporaryDirectory(prefix="bench-e16-") as tmp:
        resumed, before_kill, after_kill = preempted_job_run(
            args.quick, Path(tmp)
        )
    assert resumed == reference, "resumed study is not bit-identical"
    assert after_kill < evaluated, (
        "resume re-solved the whole study instead of the tail"
    )

    digest = reference["result_digest"]
    payload = {
        "benchmark": "e16_studies",
        "quick": bool(args.quick),
        "study": {
            "strategy": "grid",
            "candidates": evaluated,
            "front": reference["front"],
            "winner": reference["winner"],
            "result_digest": digest,
        },
        "bit_identity": {
            "single_process_digest": digest,
            "two_worker_cluster_digest": clustered["result_digest"],
            "preempt_resume_digest": resumed["result_digest"],
            "identical": True,  # asserted above
        },
        "warm_cache": {
            "cold_solves": cold_solves,
            "warm_solves": warm_stats.system_solves,
            "warm_cache_hits": warm_stats.system_cache_hits,
            "skip_ratio": round(skipped, 4),
            "skip_floor": SKIP_FLOOR,
        },
        "resume": {
            "solves_before_kill": before_kill,
            "solves_after_resume": after_kill,
            "total_candidates": evaluated,
        },
        "timing": {
            "cold_seconds": round(cold_seconds, 3),
            "warm_seconds": round(warm_seconds, 3),
            "cluster_seconds": round(cluster_seconds, 3),
            "cold_candidates_per_second": round(
                evaluated / cold_seconds, 1
            ),
            "warmup_speedup": round(cold_seconds / warm_seconds, 1),
        },
    }
    RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    print(f"candidates evaluated : {evaluated}")
    print(f"front / winner       : {reference['front']} / "
          f"{reference['winner']}")
    print(f"digest (all 3 paths) : {digest[:24]}...")
    print(f"warm-cache skip      : {skipped:.0%} "
          f"({warm_stats.system_solves}/{evaluated} re-solved)")
    print(f"resume re-solved     : {after_kill}/{evaluated} "
          f"(killed after {before_kill})")
    print(f"cold {cold_seconds:.2f}s / warm {warm_seconds:.2f}s / "
          f"2-worker {cluster_seconds:.2f}s")
    print(f"wrote {RESULT_PATH.name}")


if __name__ == "__main__":
    main()
