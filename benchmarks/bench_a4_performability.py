"""A4 — Extension: performability (capacity) rewards.

The paper's reward-rate machinery (reward 1 = up, 0 = down) extends
directly to performability in the sense of the literature it cites
(Meyer 1980): reward = delivered capacity fraction.  This benchmark
contrasts availability with expected capacity for the E10000's big
redundant banks, and compares the primary/standby cluster with the
primary/secondary (active-active) extension on both metrics.
"""

import pytest

from repro import BlockParameters, GlobalParameters
from repro.core import capacity_oriented_availability
from repro.library import (
    ClusterParameters,
    cluster_availability,
    secondary_cluster_measures,
)

from ._report import emit, emit_table

BANKS = [
    ("CPU Module (64/60)", BlockParameters(
        name="cpu", quantity=64, min_required=60, mtbf_hours=1_000_000.0,
        recovery="nontransparent", ar_time_minutes=12.0,
        repair="transparent", p_latent_fault=0.02, p_spf=0.003,
    )),
    ("Memory Bank (64/62)", BlockParameters(
        name="mem", quantity=64, min_required=62, mtbf_hours=800_000.0,
        recovery="nontransparent", ar_time_minutes=12.0,
        repair="transparent", p_latent_fault=0.05, p_spf=0.003,
    )),
    ("System Board (16/15)", BlockParameters(
        name="board", quantity=16, min_required=15, mtbf_hours=250_000.0,
        recovery="nontransparent", ar_time_minutes=15.0,
        repair="transparent", p_latent_fault=0.02, p_spf=0.01,
    )),
]


def bench_a4_capacity_vs_availability(benchmark):
    g = GlobalParameters(mttm_hours=24.0)

    def run():
        return {
            label: capacity_oriented_availability(parameters, g)
            for label, parameters in BANKS
        }

    results = benchmark(run)

    rows = []
    for label, _parameters in BANKS:
        r = results[label]
        rows.append([
            label,
            f"{r['availability']:.8f}",
            f"{r['expected_capacity']:.8f}",
            f"{r['capacity_gap'] * 1e6:.2f}",
        ])
    emit_table(
        "A4: availability vs expected delivered capacity "
        "(performability rewards)",
        ["bank", "availability", "expected capacity", "gap (ppm)"],
        rows,
    )

    for label, _parameters in BANKS:
        r = results[label]
        assert r["expected_capacity"] <= r["availability"]
        assert r["capacity_gap"] > 0  # degraded-up time exists


def test_a4_cluster_architectures_both_metrics():
    """Standby vs active-active: availability favours standby, but the
    capacity comparison depends on what the standby node contributes."""
    p = ClusterParameters()
    standby_availability = cluster_availability(p)
    active = secondary_cluster_measures(p, degraded_capacity=0.5)
    rows = [
        ["primary/standby", f"{standby_availability:.8f}",
         "1.0 (single node serves)", "-"],
        ["primary/secondary", f"{active['availability']:.8f}",
         f"{active['expected_capacity']:.8f}",
         f"{active['time_on_one_node']:.2%}"],
    ]
    emit_table(
        "A4: cluster arrangements on both metrics",
        ["architecture", "availability", "expected capacity",
         "time on one node"],
        rows,
    )
    assert standby_availability > active["availability"]
    assert active["expected_capacity"] < active["availability"]
