#!/usr/bin/env python3
"""Beyond the point estimate: capacity, uncertainty, and risk.

Four analyses a point availability number hides:

1. **Performability** — a degraded-but-up server delivers less than
   full capacity (reward = capacity fraction, after Meyer).
2. **Exact rate sensitivities** — which transition rates availability
   actually depends on (analytic d(A)/d(rate), no finite differences).
3. **Parameter uncertainty** — component MTBFs are estimates; propagate
   their error bars to the system number.
4. **Realized downtime distribution** — what an individual site
   experiences in a year (heavily skewed: medians are tiny, tails eat
   the budget).
"""

from repro import BlockParameters, GlobalParameters, translate, workgroup_model
from repro.analysis import UncertainField, propagate_uncertainty
from repro.core import capacity_oriented_availability, generate_block_chain
from repro.markov import all_rate_sensitivities
from repro.semimarkov import Lognormal
from repro.units import availability_to_yearly_downtime_minutes
from repro.validation import downtime_distribution


def performability() -> None:
    print("=" * 72)
    print("1. Availability vs delivered capacity (64-CPU bank, K=60)")
    print("=" * 72)
    bank = BlockParameters(
        name="cpu-bank", quantity=64, min_required=60,
        mtbf_hours=1_000_000.0, recovery="nontransparent",
        ar_time_minutes=12.0, repair="transparent",
        p_latent_fault=0.02, p_spf=0.003,
    )
    for mttm in (4.0, 48.0, 336.0):
        result = capacity_oriented_availability(
            bank, GlobalParameters(mttm_hours=mttm)
        )
        print(f"  MTTM={mttm:5.0f} h: availability {result['availability']:.8f}"
              f"  capacity {result['expected_capacity']:.8f}"
              f"  gap {result['capacity_gap'] * 1e6:7.2f} ppm")
    print("  (deferring repairs parks the system in degraded levels: the")
    print("   availability barely moves, the delivered capacity does)")
    print()


def sensitivities() -> None:
    print("=" * 72)
    print("2. Exact dA/d(rate) ranking for a mirrored disk pair")
    print("=" * 72)
    disk = BlockParameters(
        name="disk", quantity=2, min_required=1, mtbf_hours=150_000.0,
        recovery="transparent", repair="nontransparent",
        reintegration_minutes=15.0, p_latent_fault=0.01,
        mttdlf_hours=336.0, p_spf=0.01, p_correct_diagnosis=0.95,
    )
    chain = generate_block_chain(disk, GlobalParameters())
    for source, target, value in all_rate_sensitivities(chain)[:6]:
        direction = "hurts" if value < 0 else "helps"
        print(f"  {source:>14} -> {target:<16} dA/dq = {value:+.3e}  "
              f"(raising this rate {direction})")
    print()


def uncertainty() -> None:
    print("=" * 72)
    print("3. MTBF uncertainty propagated to system downtime")
    print("=" * 72)
    model = workgroup_model()
    point = availability_to_yearly_downtime_minutes(
        translate(model).availability
    )
    result = propagate_uncertainty(
        model,
        [
            UncertainField("Workgroup Server/Operating System",
                           "mtbf_hours",
                           Lognormal.from_mean_cv(30_000.0, 0.5)),
            UncertainField("Workgroup Server/Mirrored Disk",
                           "mtbf_hours",
                           Lognormal.from_mean_cv(150_000.0, 0.3)),
        ],
        samples=80, seed=7,
    )
    print(f"  point estimate : {point:7.1f} min/yr")
    print(f"  P5  / P50 / P95: {result.downtime_p05:7.1f} / "
          f"{result.downtime_p50:7.1f} / {result.downtime_p95:7.1f} min/yr")
    print()


def realized_risk() -> None:
    print("=" * 72)
    print("4. Realized one-year downtime across simulated sites")
    print("=" * 72)
    solution = translate(workgroup_model())
    distribution = downtime_distribution(
        solution, window_hours=8760.0, replications=150, seed=9
    )
    expected = availability_to_yearly_downtime_minutes(
        solution.availability
    )
    print(f"  analytic expectation : {expected:7.1f} min")
    print(f"  simulated mean       : {distribution.mean_minutes:7.1f} min")
    print(f"  median site          : {distribution.p50_minutes:7.1f} min")
    print(f"  P90 site             : {distribution.p90_minutes:7.1f} min")
    print(f"  P99 site             : {distribution.p99_minutes:7.1f} min")
    print(f"  worst simulated site : {distribution.max_minutes:7.1f} min")
    print()


def main() -> None:
    performability()
    sensitivities()
    uncertainty()
    realized_risk()


if __name__ == "__main__":
    main()
