#!/usr/bin/env python3
"""GMB expert workflow: hand-built models and hierarchy.

RAScad's second module (GMB) gives RAS experts general Markov,
semi-Markov and RBD modeling.  This example builds:

* a hand-drawn Markov chain for a two-node cluster interconnect,
* a semi-Markov model with a *deterministic* reboot (something a plain
  CTMC cannot express),
* a bridge-structure network RBD for a dual-fabric SAN,

then wires them, together with an MG-generated model, into one
hierarchical system — the paper's "combined use of MG models and GMB
models".
"""

from repro import (
    MarkovBuilder,
    SemiMarkovBuilder,
    HierarchicalModel,
    NetworkRBD,
    translate,
    workgroup_model,
)
from repro.markov import mean_time_to_failure, steady_state_availability
from repro.rbd import Leaf, series
from repro.semimarkov import (
    Deterministic,
    Exponential,
    Lognormal,
    semi_markov_availability,
)


def interconnect_chain():
    """Dual interconnect links with a shared switch."""
    return (
        MarkovBuilder("interconnect")
        .up("BothLinks")
        .up("OneLink")
        .down("NoLinks")
        .down("SwitchDead")
        .arc("BothLinks", "OneLink", 2 * 1e-4, label="link fails")
        .arc("OneLink", "NoLinks", 1e-4, label="last link fails")
        .arc("OneLink", "BothLinks", 0.5, label="link repaired")
        .arc("NoLinks", "OneLink", 0.5, label="link repaired")
        .arc("BothLinks", "SwitchDead", 2e-5, label="switch fails")
        .arc("OneLink", "SwitchDead", 2e-5, label="switch fails")
        .arc("SwitchDead", "BothLinks", 0.25, label="switch replaced")
        .build()
    )


def os_semi_markov():
    """An OS with exponential panics, a fixed 6-minute reboot, and
    lognormal manual recovery for the 5% of panics that corrupt state."""
    return (
        SemiMarkovBuilder("os")
        .up("Running")
        .down("Rebooting")
        .down("ManualRecovery")
        .arc("Running", "Rebooting", 1.0, Exponential.from_mean(2_000.0))
        .arc("Rebooting", "Running", 0.95, Deterministic(0.1))
        .arc("Rebooting", "ManualRecovery", 0.05, Deterministic(0.1))
        .arc("ManualRecovery", "Running", 1.0,
             Lognormal.from_mean_cv(mean=2.0, cv=1.2))
        .build()
    )


def san_bridge():
    """Dual-fabric SAN with an inter-switch link (a bridge structure)."""
    net = NetworkRBD("host", "array")
    net.add_component("host", "fabA", 0.9995, name="HBA-A")
    net.add_component("host", "fabB", 0.9995, name="HBA-B")
    net.add_component("fabA", "array", 0.9990, name="path-A")
    net.add_component("fabB", "array", 0.9990, name="path-B")
    net.add_component("fabA", "fabB", 0.9999, name="ISL")
    return net


def main() -> None:
    chain = interconnect_chain()
    print("Markov: cluster interconnect")
    print(f"  availability : {steady_state_availability(chain):.7f}")
    print(f"  MTTF         : {mean_time_to_failure(chain):.0f} hours")
    print()

    smp = os_semi_markov()
    print("Semi-Markov: OS with deterministic reboot")
    print(f"  availability : {semi_markov_availability(smp):.7f}")
    print()

    san = san_bridge()
    print("Network RBD: dual-fabric SAN (bridge structure)")
    print(f"  availability : {san.availability():.7f}")
    print(f"  minimal path sets: {len(san.path_sets())}")
    print()

    # The combined hierarchy: MG output + all three GMB models in series.
    server = translate(workgroup_model())
    system = HierarchicalModel(
        series(
            Leaf("server"),
            Leaf("interconnect"),
            Leaf("os"),
            Leaf("san"),
            name="service",
        ),
        name="end-to-end service",
    )
    system.bind("server", server)      # an MG solution
    system.bind("interconnect", chain)  # a GMB Markov chain
    system.bind("os", smp)             # a GMB semi-Markov chain
    system.bind("san", san.availability())  # a GMB network RBD

    print("Hierarchical composition (MG + GMB):")
    print(f"  end-to-end availability: {system.availability():.7f}")


if __name__ == "__main__":
    main()
