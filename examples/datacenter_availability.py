#!/usr/bin/env python3
"""The paper's worked example: the Data Center System of Figures 1-2.

Walks the full RAScad workflow: show the diagram/block tree, solve the
hierarchy, print the measure table and the downtime budget, export the
generated Markov chain for one block as Graphviz dot, and save the
model as a shareable spec file.
"""

import tempfile
from pathlib import Path

from repro import (
    chain_to_dot,
    compute_measures,
    datacenter_model,
    render_model_tree,
    save_spec,
    translate,
)
from repro.analysis import downtime_budget, state_kind_breakdown
from repro.render import render_chain_table


def main() -> None:
    model = datacenter_model()

    print("=" * 72)
    print("Diagram/block model (paper Figures 1-2)")
    print("=" * 72)
    print(render_model_tree(model))
    print()

    solution = translate(model)
    measures = compute_measures(solution)
    print("=" * 72)
    print("System measures")
    print("=" * 72)
    print(f"steady-state availability : {measures.availability:.7f}")
    print(f"yearly downtime           : "
          f"{measures.yearly_downtime_minutes:.1f} minutes")
    print(f"interruptions per year    : {measures.failures_per_year:.2f}")
    print(f"interval availability (T) : {measures.interval_availability:.7f}")
    print(f"reliability at T          : {measures.reliability_at_mission:.4f}")
    print(f"MTTF                      : {measures.mttf_hours:.0f} hours")
    print()

    print("=" * 72)
    print("Downtime budget (worst blocks first)")
    print("=" * 72)
    for row in downtime_budget(solution)[:8]:
        label = (
            f"Type {row.model_type}" if row.model_type is not None else "RBD"
        )
        print(f"  {row.yearly_downtime_minutes:8.2f} min/yr  "
              f"{row.share:6.1%}  [{label}]  {row.path}")
    print()

    cpu = solution.block("Data Center System/Server Box/CPU Module")
    print("=" * 72)
    print(f"Generated chain for {cpu.name!r} "
          f"(Markov Model Type {cpu.model_type})")
    print("=" * 72)
    print(render_chain_table(cpu.chain, cpu.steady_state))
    print()
    print("state-kind downtime split (min/yr):")
    for kind, minutes in sorted(state_kind_breakdown(cpu).items()):
        print(f"  {kind:<14} {minutes:10.4f}")
    print()

    out_dir = Path(tempfile.mkdtemp(prefix="rascad-"))
    dot_path = out_dir / "cpu_module_type3.dot"
    dot_path.write_text(chain_to_dot(cpu.chain))
    spec_path = out_dir / "datacenter.json"
    save_spec(model, spec_path)
    print(f"dot export : {dot_path}")
    print(f"spec file  : {spec_path}  (shareable, reload with load_spec)")


if __name__ == "__main__":
    main()
