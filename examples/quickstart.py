#!/usr/bin/env python3
"""Quickstart: solve a RAS model in ten lines.

An MG model is an *engineering-language* description — quantities,
MTBFs, service times — and the library turns it into Markov chains and
solves them behind the scenes, exactly like RAScad's Model Generator.
"""

from repro import (
    BlockParameters,
    DiagramBlockModel,
    GlobalParameters,
    MGBlock,
    MGDiagram,
    compute_measures,
    nines,
    translate,
)


def main() -> None:
    # A small server: one board, a mirrored disk pair, an OS instance.
    diagram = MGDiagram(
        "Small Server",
        [
            MGBlock(BlockParameters(
                name="System Board",
                mtbf_hours=250_000.0,
                service_response_hours=4.0,
            )),
            MGBlock(BlockParameters(
                name="Mirrored Disks",
                quantity=2,                # two drives...
                min_required=1,            # ...one is enough
                mtbf_hours=150_000.0,
                recovery="transparent",    # RAID keeps serving
                repair="transparent",      # hot-plug bays
            )),
            MGBlock(BlockParameters(
                name="Operating System",
                mtbf_hours=30_000.0,
                transient_fit=15_000.0,    # panics cleared by reboot
            )),
        ],
    )
    model = DiagramBlockModel(
        diagram, GlobalParameters(reboot_minutes=6.0, mttm_hours=48.0)
    )

    solution = translate(model)            # spec -> chains -> numbers
    measures = compute_measures(solution)

    print(f"availability          : {measures.availability:.6f} "
          f"({nines(measures.availability):.2f} nines)")
    print(f"downtime              : "
          f"{measures.yearly_downtime_minutes:.1f} minutes/year")
    print(f"interruptions         : {measures.failures_per_year:.2f} /year")
    print(f"MTTF                  : {measures.mttf_hours:.0f} hours")
    print(f"reliability (1 year)  : {measures.reliability_at_mission:.4f}")
    print()
    print("per-block availability:")
    for block in solution.blocks:
        print(f"  {block.name:<20} {block.availability:.6f} "
              f"(Markov Model Type {block.model_type})")


if __name__ == "__main__":
    main()
