#!/usr/bin/env python3
"""The collaborative-modeling workflow the paper's web features enable.

RAScad's pitch included "file sharing across networks" for teams of
engineers at different sites.  The file-based equivalent:

1. An architect saves a model as a spec file and shares it.
2. A colleague loads it, proposes a change, and saves a revision.
3. The reviewer diffs the two specs and sees the availability impact.
4. Both candidates are compared side by side.
5. The chosen model passes the full validation protocol before the
   numbers go into a proposal.
"""

import tempfile
from pathlib import Path

from repro import load_spec, save_spec, workgroup_model
from repro.analysis import comparison_table, with_block_changes
from repro.spec import diff_impact, diff_models, format_diff
from repro.validation import validate_model


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="rascad-collab-"))

    # 1. The architect shares the baseline.
    baseline = workgroup_model()
    baseline_path = workdir / "workgroup-v1.json"
    save_spec(baseline, baseline_path)
    print(f"architect shares   : {baseline_path.name}")

    # 2. A colleague proposes upgrading the OS and the service contract.
    proposal = with_block_changes(
        load_spec(baseline_path),
        "Workgroup Server/Operating System",
        mtbf_hours=60_000.0, transient_fit=8_000.0,
    )
    proposal_path = workdir / "workgroup-v2.json"
    save_spec(proposal, proposal_path)
    print(f"colleague proposes : {proposal_path.name}")
    print()

    # 3. Review: what changed, and what does it buy?
    old = load_spec(baseline_path)
    new = load_spec(proposal_path)
    print("spec diff:")
    print(format_diff(diff_models(old, new)))
    impact = diff_impact(old, new)
    print(f"\nimpact: {impact['old_availability']:.6f} -> "
          f"{impact['new_availability']:.6f} "
          f"({impact['downtime_delta_minutes']:+.1f} min/yr)")
    print()

    # 4. Side-by-side comparison table.
    print("comparison:")
    old_named = load_spec(baseline_path)
    new_named = load_spec(proposal_path)
    new_named.name = "Workgroup Server v2"
    print(comparison_table([
        ("Workgroup Server v1", old_named),
        ("Workgroup Server v2", new_named),
    ]))
    print()

    # 5. Validate the winner before quoting numbers.
    report = validate_model(
        new, simulation_replications=30, field_windows=8, seed=3
    )
    print(report.summary())


if __name__ == "__main__":
    main()
