#!/usr/bin/env python3
"""Model-vs-field validation, the paper's Section 5 experiment.

The paper compared RAScad predictions with field data from two large
operational E10000 servers over 15 months.  Here we generate what those
two servers *would have logged* (synthetic traces sampled from the
model playing forward in time), run a MEADEP-style estimation over each
log, and compare measured availability against the model prediction.
"""

from repro import compute_measures, e10000_model, translate
from repro.validation import generate_field_log
from repro.validation.field_data import FIFTEEN_MONTHS_HOURS


def main() -> None:
    model = e10000_model()
    solution = translate(model)
    measures = compute_measures(solution)

    print("Model prediction (E10000-class server)")
    print(f"  steady-state availability : {solution.availability:.6f}")
    print(f"  yearly downtime           : "
          f"{measures.yearly_downtime_minutes:.1f} min")
    print(f"  interruptions per year    : {measures.failures_per_year:.2f}")
    print()
    print(f"Observation window: {FIFTEEN_MONTHS_HOURS:.0f} hours (15 months)")
    print()

    for server, seed in (("server-A", 17), ("server-B", 23)):
        log = generate_field_log(solution, server=server, seed=seed)
        estimate = log.estimate()
        verdict = (
            "CONSISTENT"
            if estimate.contains_availability(solution.availability)
            else "INCONSISTENT"
        )
        print(f"{server}: {estimate.n_outages} outages, "
              f"{estimate.total_downtime_hours:.1f} h down")
        print(f"  measured availability : {estimate.availability:.6f} "
              f"[{estimate.availability_low:.6f}, "
              f"{estimate.availability_high:.6f}]")
        print(f"  measured MTBF / MTTR  : {estimate.mtbf_hours:.0f} h / "
              f"{estimate.mttr_hours:.1f} h")
        print(f"  model within 95% CI   : {verdict}")
        print("  worst outages:")
        worst = sorted(
            log.events, key=lambda e: e.duration_hours, reverse=True
        )[:3]
        for event in worst:
            print(f"    t={event.start_hour:8.1f} h  "
                  f"{event.duration_hours * 60:6.1f} min  "
                  f"cause: {event.cause}")
        print()


if __name__ == "__main__":
    main()
