#!/usr/bin/env python3
"""Design-phase architecture comparison — MG's reason to exist.

The paper: "MG is intended for use to analytically assess and compare
RAS quantities achievable by the computer architectures under design."
This example runs three such studies on the Data Center model:

1. The recovery/repair transparency 2x2 for the CPU module (the four
   Markov model types).
2. A redundancy sweep: how many power supplies are worth buying?
3. Service-contract trade-off: response time vs downtime.
"""

from repro import datacenter_model, translate
from repro.analysis import (
    birnbaum_importance,
    sweep_block_field,
    with_block_changes,
)
from repro.units import availability_to_yearly_downtime_minutes

CPU = "Data Center System/Server Box/CPU Module"
PSU = "Data Center System/Server Box/Power Supply"


def transparency_study() -> None:
    print("=" * 72)
    print("1. CPU module recovery/repair transparency (the 2x2 of types)")
    print("=" * 72)
    base = datacenter_model()
    for recovery in ("transparent", "nontransparent"):
        for repair in ("transparent", "nontransparent"):
            variant = with_block_changes(
                base, CPU, recovery=recovery, repair=repair
            )
            solution = translate(variant)
            downtime = availability_to_yearly_downtime_minutes(
                solution.availability
            )
            cpu_type = solution.block(CPU).model_type
            print(f"  recovery={recovery:<15} repair={repair:<15} "
                  f"-> Type {cpu_type}: {downtime:7.2f} min/yr")
    print()


def redundancy_study() -> None:
    print("=" * 72)
    print("2. Power supplies: quantity N with K=2 required")
    print("=" * 72)
    base = datacenter_model()
    for n in (2, 3, 4, 5):
        variant = with_block_changes(base, PSU, quantity=n, min_required=2)
        solution = translate(variant)
        downtime = availability_to_yearly_downtime_minutes(
            solution.availability
        )
        print(f"  N={n} (K=2): {downtime:7.2f} min/yr system downtime")
    print("  (N=2 means no spare: a PSU failure halts the system)")
    print()


def service_study() -> None:
    print("=" * 72)
    print("3. Service response time for the System Board (Type 0)")
    print("=" * 72)
    board = "Data Center System/Server Box/System Board"
    points = sweep_block_field(
        datacenter_model(), board, "service_response_hours",
        [1.0, 4.0, 8.0, 24.0, 48.0],
    )
    for point in points:
        print(f"  Tresp={point.value:5.0f} h -> "
              f"{point.yearly_downtime_minutes:7.2f} min/yr")
    print()


def importance_study() -> None:
    print("=" * 72)
    print("4. Where to invest: Birnbaum importance (top level)")
    print("=" * 72)
    solution = translate(datacenter_model())
    for row in birnbaum_importance(solution):
        print(f"  {row.name:<22} potential gain "
              f"{row.potential_downtime_minutes:7.2f} min/yr")
    print()


def requirement_study() -> None:
    print("=" * 72)
    print("5. Designing to a requirement")
    print("=" * 72)
    from repro.analysis import check_requirement, solve_parameter_for_target

    model = datacenter_model()
    check = check_requirement(model, target_nines=3.5)
    verdict = "MEETS" if check.meets else "MISSES"
    print(f"  3.5-nines requirement: {verdict} "
          f"(margin {check.margin_minutes:+.1f} min/yr)")

    # How slow may board service response get before 3.4 nines is lost?
    board = "Data Center System/Server Box/System Board"
    target = 1.0 - 10.0**-3.4
    boundary = solve_parameter_for_target(
        model, "service_response_hours", target,
        low=0.5, high=96.0, path=board,
    )
    print(f"  System Board Tresp may grow to {boundary:.1f} h before the "
          "system drops below 3.4 nines")
    print()


def main() -> None:
    transparency_study()
    redundancy_study()
    service_study()
    importance_study()
    requirement_study()


if __name__ == "__main__":
    main()
